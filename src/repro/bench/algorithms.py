"""Uniform drivers for every algorithm in the paper's Table 2.

Two measurement protocols, matching Section 4.1:

- **Amortized** (:func:`run_amortized`): train on a dataset and classify
  every point in it; throughput amortizes training over the
  classifications. This is the paper's end-to-end Figure 7 protocol
  ("the effective throughput for performing tasks such as outlier
  detection").
- **Query-only** (:func:`train_for_queries` + :meth:`TrainedAlgorithm.classify`):
  train once, then measure classification of fresh query points,
  excluding training time (Figures 9-11 and 13-15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines import BinnedKDE, NaiveKDE, RadialKDE, TreeKDE
from repro.baselines.base import DensityEstimator, classify_by_density
from repro.bench.harness import Timer
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.quantile.order_stats import quantile_of_sorted

#: Algorithms runnable under the amortized protocol. "sklearn" is the
#: paper's scikit-learn comparison point: the same Gray & Moore tree
#: approximation as "nocut" but at the looser rtol=0.1 the paper ran
#: sklearn with. "ks" requires d <= 4.
AMORTIZED_ALGORITHMS = ("tkdc", "simple", "sklearn", "rkde", "nocut", "ks")

#: Tolerances the paper used for the two tree-approximation baselines.
_SKLEARN_RTOL = 0.1
_NOCUT_RTOL = 0.01

#: Pilot-sample size for baselines that need a threshold before fitting.
_PILOT_SIZE = 500


@dataclass
class AlgorithmRun:
    """One algorithm's measured performance on one workload."""

    name: str
    n: int
    dim: int
    train_seconds: float
    classify_seconds: float
    items_classified: int
    kernel_evaluations: int
    threshold: float
    labels: np.ndarray

    @property
    def total_seconds(self) -> float:
        return self.train_seconds + self.classify_seconds

    @property
    def amortized_throughput(self) -> float:
        """Items/s including training (the Figure 7 metric)."""
        return self.items_classified / max(self.total_seconds, 1e-12)

    @property
    def query_throughput(self) -> float:
        """Items/s excluding training (the Figure 9-11 metric)."""
        return self.items_classified / max(self.classify_seconds, 1e-12)

    @property
    def kernels_per_item(self) -> float:
        return self.kernel_evaluations / max(self.items_classified, 1)


def pilot_threshold(
    data: np.ndarray,
    p: float,
    pilot_size: int = _PILOT_SIZE,
    seed: int | None = 0,
    kernel_name: str = "gaussian",
    bandwidth_scale: float = 1.0,
) -> float:
    """Cheap exact-density estimate of ``t(p)`` from a query subsample.

    Computes exact densities (under the *full* dataset's KDE) for a
    random subsample of query points and takes their ``p``-quantile —
    the bootstrap-free way baselines obtain a working threshold.
    """
    data = np.atleast_2d(np.asarray(data))
    n = data.shape[0]
    rng = np.random.default_rng(seed)
    sample = data[rng.choice(n, size=min(pilot_size, n), replace=False)]
    naive = NaiveKDE(kernel_name, bandwidth_scale).fit(data)
    densities = naive.density(sample) - naive.kernel.max_value / n
    return quantile_of_sorted(np.sort(densities), p)


def _make_estimator(
    name: str,
    p: float,
    epsilon: float,
    data: np.ndarray,
    seed: int | None,
    kernel_name: str,
    bandwidth_scale: float,
) -> DensityEstimator:
    if name == "simple":
        return NaiveKDE(kernel_name, bandwidth_scale)
    if name == "sklearn":
        return TreeKDE(rtol=_SKLEARN_RTOL, kernel_name=kernel_name,
                       bandwidth_scale=bandwidth_scale)
    if name == "nocut":
        return TreeKDE(rtol=_NOCUT_RTOL, kernel_name=kernel_name,
                       bandwidth_scale=bandwidth_scale)
    if name == "rkde":
        hint = pilot_threshold(data, p, seed=seed, kernel_name=kernel_name,
                               bandwidth_scale=bandwidth_scale)
        return RadialKDE(epsilon=epsilon, threshold_hint=max(hint, 1e-300),
                         kernel_name=kernel_name, bandwidth_scale=bandwidth_scale)
    if name == "ks":
        return BinnedKDE(kernel_name=kernel_name, bandwidth_scale=bandwidth_scale)
    raise ValueError(f"unknown algorithm {name!r}; choose from {AMORTIZED_ALGORITHMS}")


def run_amortized(
    name: str,
    data: np.ndarray,
    p: float = 0.01,
    epsilon: float = 0.01,
    seed: int | None = 0,
    kernel_name: str = "gaussian",
    bandwidth_scale: float = 1.0,
    tkdc_config: TKDCConfig | None = None,
) -> AlgorithmRun:
    """Train on ``data`` and classify every point of it (Figure 7 protocol)."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n, dim = data.shape

    if name == "tkdc":
        config = tkdc_config or TKDCConfig(
            p=p, epsilon=epsilon, seed=seed, kernel=kernel_name,
            bandwidth_scale=bandwidth_scale,
        )
        clf = TKDCClassifier(config)
        with Timer() as timer:
            clf.fit(data)  # fit scores (classifies) every training point
        assert clf.training_labels_ is not None
        return AlgorithmRun(
            name=name, n=n, dim=dim,
            train_seconds=timer.elapsed, classify_seconds=0.0,
            items_classified=n,
            kernel_evaluations=clf.stats.kernel_evaluations,
            threshold=clf.threshold.value,
            labels=clf.training_labels_.astype(np.int64),
        )

    estimator = _make_estimator(name, p, epsilon, data, seed, kernel_name, bandwidth_scale)
    with Timer() as train_timer:
        estimator.fit(data)
    with Timer() as classify_timer:
        densities = np.asarray(estimator.density(data))
        self_contribution = _self_contribution(estimator, n)
        corrected = densities - self_contribution
        threshold = quantile_of_sorted(np.sort(corrected), p)
        labels = (corrected > threshold).astype(np.int64)
    return AlgorithmRun(
        name=name, n=n, dim=dim,
        train_seconds=train_timer.elapsed, classify_seconds=classify_timer.elapsed,
        items_classified=n,
        kernel_evaluations=estimator.kernel_evaluations,
        threshold=threshold,
        labels=labels,
    )


def _self_contribution(estimator: DensityEstimator, n: int) -> float:
    kernel = getattr(estimator, "kernel", None)
    if kernel is None:
        return 0.0
    return kernel.max_value / n


@dataclass
class TrainedAlgorithm:
    """A fitted algorithm ready for query-only throughput measurement."""

    name: str
    train_seconds: float
    threshold: float
    _classify: Callable[[np.ndarray], np.ndarray]
    _evaluations: Callable[[], int]

    def classify(self, queries: np.ndarray) -> AlgorithmRun:
        """Classify ``queries``, timing only the query phase."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        evals_before = self._evaluations()
        with Timer() as timer:
            labels = self._classify(queries)
        return AlgorithmRun(
            name=self.name, n=queries.shape[0], dim=queries.shape[1],
            train_seconds=self.train_seconds, classify_seconds=timer.elapsed,
            items_classified=queries.shape[0],
            kernel_evaluations=self._evaluations() - evals_before,
            threshold=self.threshold,
            labels=np.asarray(labels).astype(np.int64),
        )


def train_for_queries(
    name: str,
    data: np.ndarray,
    p: float = 0.01,
    epsilon: float = 0.01,
    seed: int | None = 0,
    kernel_name: str = "gaussian",
    bandwidth_scale: float = 1.0,
    tkdc_config: TKDCConfig | None = None,
) -> TrainedAlgorithm:
    """Fit an algorithm so repeated query batches can be timed separately.

    tKDC is trained with ``refine_threshold=False`` here: the full
    training-set scoring pass belongs to the amortized protocol, and the
    bootstrap bounds alone already guarantee classification accuracy.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n = data.shape[0]

    if name == "tkdc":
        config = tkdc_config or TKDCConfig(
            p=p, epsilon=epsilon, seed=seed, kernel=kernel_name,
            bandwidth_scale=bandwidth_scale,
            refine_threshold=False, bootstrap_s0=min(2000, n),
        )
        clf = TKDCClassifier(config)
        with Timer() as timer:
            clf.fit(data)
        return TrainedAlgorithm(
            name=name, train_seconds=timer.elapsed, threshold=clf.threshold.value,
            _classify=clf.classify,
            _evaluations=lambda: clf.stats.kernel_evaluations,
        )

    estimator = _make_estimator(name, p, epsilon, data, seed, kernel_name, bandwidth_scale)
    with Timer() as timer:
        estimator.fit(data)
        threshold = pilot_threshold(
            data, p, seed=seed, kernel_name=kernel_name, bandwidth_scale=bandwidth_scale
        )
    return TrainedAlgorithm(
        name=name, train_seconds=timer.elapsed, threshold=threshold,
        _classify=lambda queries: classify_by_density(estimator, queries, threshold),
        _evaluations=lambda: estimator.kernel_evaluations,
    )
