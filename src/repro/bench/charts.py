"""Terminal-rendered charts for the benchmark harness.

The paper's figures are line/bar plots; in a text environment the
closest faithful rendering is a character grid. These helpers draw the
benchmark sweeps (Figures 9-11, 13-15) as scatter/line charts with
optional log axes, and the factor/lesion analyses (Figures 12/16) as
horizontal bar charts — so ``python -m repro run fig9`` reproduces not
just the numbers but the *picture*.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Marker characters assigned to series in declaration order.
MARKERS = "*o+x#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log axis requires positive values, got {value}")
        return math.log10(value)
    return value


def _axis_range(values: list[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:  # avoid zero-width axes
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def _format_tick(value: float, log: bool) -> str:
    actual = 10**value if log else value
    return f"{actual:.3g}"


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render named (xs, ys) series as a character-grid scatter chart.

    Each series gets a marker from :data:`MARKERS`; overlapping points
    show the later series' marker. Axis extremes are labelled with the
    untransformed values.

    >>> chart = ascii_chart({"a": ([1, 10, 100], [1, 2, 3])}, logx=True)
    >>> "a" in chart and "*" in chart
    True
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4 characters")

    points: dict[str, list[tuple[float, float]]] = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r} has mismatched lengths")
        points[name] = [
            (_transform(float(x), logx), _transform(float(y), logy))
            for x, y in zip(xs, ys)
        ]

    all_x = [x for pts in points.values() for x, __ in pts]
    all_y = [y for pts in points.values() for __, y in pts]
    x_lo, x_hi = _axis_range(all_x)
    y_lo, y_hi = _axis_range(all_y)

    grid = [[" "] * width for __ in range(height)]
    for index, (name, pts) in enumerate(points.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in pts:
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_tick = _format_tick(y_hi, logy)
    bottom_tick = _format_tick(y_lo, logy)
    label_width = max(len(top_tick), len(bottom_tick))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_tick.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_tick.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    left = _format_tick(x_lo, logx)
    right = _format_tick(x_hi, logx)
    gap = max(1, width - len(left) - len(right))
    lines.append(" " * (label_width + 2) + left + " " * gap + right)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(points)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    logscale: bool = False,
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars (Figures 12/16 style).

    >>> print(ascii_bar_chart(["a", "b"], [1.0, 2.0]))  # doctest: +SKIP
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("at least one bar is required")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")

    if logscale:
        floor = min(v for v in values if v > 0) if any(v > 0 for v in values) else 1.0
        scaled = [math.log10(max(v, floor) / floor) + 1.0 if v > 0 else 0.0
                  for v in values]
    else:
        scaled = list(values)
    peak = max(scaled) or 1.0

    label_width = max(len(label) for label in labels)
    lines = []
    for label, value, amount in zip(labels, values, scaled):
        bar = "#" * max(1 if value > 0 else 0, round(amount / peak * width))
        lines.append(f"{label.rjust(label_width)} |{bar.ljust(width)} {value:.4g}{unit}")
    return "\n".join(lines)
