"""Hashing-based density estimators (Charikar–Siminelakis HBE).

The tree engines' pruning cost grows as O(n^((d-1)/d)), so d >~ 10
workloads degrade toward exact KDE. This package adds the third engine:
Euclidean-LSH tables bucket the (optionally coreset-compressed,
weighted) training set, and importance-sampled collision draws give
unbiased density estimates with a running confidence interval. The
classifier answers HIGH/LOW as soon as the interval clears the
(eta-widened) threshold band and falls back to the batch tree engine
for everything else, so labels stay certified on the outside-band set.

- :mod:`repro.estimators.lsh` — E2LSH tables, collision probabilities,
  deterministic per-bucket representatives.
- :mod:`repro.estimators.hbe` — the estimator: per-table samples,
  running CI, band decisions, budget accounting.
- :mod:`repro.estimators.select` — the ``engine="auto"`` policy.
"""

from repro.estimators.hbe import HbeBlockDecision, HbeIndex
from repro.estimators.lsh import LshTables, collision_probability
from repro.estimators.select import select_engine

__all__ = [
    "HbeBlockDecision",
    "HbeIndex",
    "LshTables",
    "collision_probability",
    "select_engine",
]
