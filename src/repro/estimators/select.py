"""The ``engine="auto"`` selection policy.

One function, pure, fully testable: given the workload facts — the
dimensionality the model was fitted on, the kernel family, and (when the
serving calibrator has measured one) the observed tree cost per query —
pick a concrete engine and say why. The reason string feeds the
``tkdc_engine_selected_total{engine,reason}`` metric, ``/statz``, and
the fleet manifest, so keep the vocabulary stable:

``configured``
    The config named a concrete engine; auto never overrides it.
``kernel_unsupported``
    The HBE variance story is built on Euclidean-LSH collision
    probabilities tracking a smooth radial kernel; compact-support
    kernels fall back to the tree engines.
``high_dim``
    ``d >= hbe_auto_dim``: tree pruning cost grows as O(n^((d-1)/d)),
    hashing wins outright.
``expansion_rate``
    Low-dimensional but the measured tree traversal is expanding a
    large fraction of the index per query (``expansions_per_query >=
    hbe_auto_expansion_fraction * n``) — pruning is not working on this
    workload, so sample instead.
``low_dim``
    Tree pruning is effective; keep the batch engine.
``degenerate_bandwidth``
    Applied by the classifier *after* this function: the dimension rule
    said hbe, but the fitted threshold sits below the density one
    hash-invisible point can contribute on its own
    (:meth:`repro.estimators.hbe.HbeIndex.low_visibility_bound`), so
    LOW decisions would never certify and sampling would be pure
    overhead on top of the tree fallback. Demoted to ``batch``.
"""

from __future__ import annotations

from repro.core.config import TKDCConfig

__all__ = ["select_engine"]

#: Kernel families the hbe engine will volunteer for under auto
#: selection. (Explicit ``engine="hbe"`` is honoured for any kernel —
#: the estimator is unbiased regardless — but its variance, and hence
#: its decision rate, is only engineered for smooth radial kernels.)
HBE_AUTO_KERNELS = ("gaussian",)


def select_engine(
    dim: int,
    kernel: str,
    config: TKDCConfig,
    expansions_per_query: float | None = None,
    n: int | None = None,
) -> tuple[str, str]:
    """Resolve ``config.engine`` to a concrete engine with a reason.

    Parameters
    ----------
    dim:
        Training dimensionality.
    kernel:
        Kernel family name from the config.
    config:
        The classifier config; only consulted for ``engine`` and the
        ``hbe_auto_*`` thresholds.
    expansions_per_query:
        Mean traversal node expansions per query measured on a probe
        workload (the serving calibrator produces this); ``None`` when
        no measurement exists — fit-time selection then uses the
        dimension rule alone.
    n:
        Indexed point count the measurement ran against (required to
        interpret ``expansions_per_query`` as a fraction of the index).
    """
    if config.engine != "auto":
        return config.engine, "configured"
    if kernel not in HBE_AUTO_KERNELS:
        return "batch", "kernel_unsupported"
    if dim >= config.hbe_auto_dim:
        return "hbe", "high_dim"
    if (
        expansions_per_query is not None
        and n is not None
        and n > 0
        and expansions_per_query >= config.hbe_auto_expansion_fraction * n
    ):
        return "hbe", "expansion_rate"
    return "batch", "low_dim"
