"""Euclidean LSH tables (E2LSH) for hashing-based density estimation.

One table hashes every training point with ``k`` concatenated
projections ``h_i(x) = floor((a_i . x + b_i) / w)`` (``a_i`` standard
normal, ``b_i`` uniform in ``[0, w)``), so two points at Euclidean
distance ``c`` land in the same bucket with probability ``p_1(c)^k``
where ``p_1`` has the closed form of Datar et al.:

    p_1(c) = 1 - 2 Phi(-w/c) - (2c / (sqrt(2 pi) w)) (1 - exp(-w^2 / (2 c^2)))

The estimator (:mod:`repro.estimators.hbe`) divides the kernel value by
exactly this probability, so the same formula must price the samples it
weights — both live here.

Everything random is drawn at **build time** from one seeded generator:
the projections, the offsets, the key-mixing multipliers, and one
weighted *representative* per (table, bucket). Query-time lookups are
pure array reads, so two processes that build from the same points and
seed answer identically — the property the serving fleet's label-parity
guarantee rests on.

Bucket lookup is vectorized: the ``k`` hash codes of a point are mixed
into a single int64 key (random odd multipliers; a key collision between
distinct code tuples has probability ~2^-64 and merely merges two
buckets, which keeps the estimator unbiased), training keys are sorted
once at build, and a query block resolves via one ``searchsorted`` per
table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LshTables",
    "collision_probability",
    "erf",
    "normal_upper_quantile",
    "tune_hash_depth",
]

#: Hash-code mixing modulus guard: codes are clipped into int64 range
#: before mixing (floor of a huge projection cannot overflow silently).
_CODE_CLIP = np.int64(1) << 40


def erf(x: np.ndarray) -> np.ndarray:
    """Vectorized error function (Abramowitz & Stegun 7.1.26).

    Max absolute error ~1.5e-7 — far below the epsilon=0.01 tolerances
    the collision probabilities feed into, and dependency-free (numpy
    has no erf and scipy is not a dependency of this repo).
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-ax * ax))


def normal_upper_quantile(delta: float) -> float:
    """``z`` with ``P(N(0,1) > z) = delta`` via bisection on erf.

    Used once per classify block to size the confidence interval; the
    bisection (~60 iterations on a bracketed monotone function) is
    exact to float precision and avoids a rational-approximation table.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    target = 1.0 - 2.0 * delta  # P(|N| <= z) = erf(z / sqrt(2))
    if target <= 0.0:
        return 0.0
    lo, hi = 0.0, 40.0
    for __ in range(200):
        mid = 0.5 * (lo + hi)
        if math.erf(mid / math.sqrt(2.0)) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12:
            break
    return 0.5 * (lo + hi)


def collision_probability(
    dists: np.ndarray, width: float, depth: int
) -> np.ndarray:
    """``p_1(c)^k`` for Euclidean distances ``c`` (vectorized).

    ``p_1(0) = 1`` by continuity; the formula is monotone decreasing in
    ``c``. The result is floored at a tiny positive value so a division
    by it can never produce inf (a sample that far out contributes a
    kernel value that underflows to zero anyway).
    """
    c = np.asarray(dists, dtype=np.float64)
    p1 = np.ones_like(c)
    positive = c > 0.0
    if np.any(positive):
        cp = c[positive]
        ratio = width / cp
        # Phi(-w/c) = 0.5 * erfc(w / (c sqrt(2)))
        phi = 0.5 * (1.0 - erf(ratio / math.sqrt(2.0)))
        tail = (2.0 * cp / (math.sqrt(2.0 * math.pi) * width)) * (
            1.0 - np.exp(-0.5 * ratio * ratio)
        )
        p1[positive] = np.clip(1.0 - 2.0 * phi - tail, 0.0, 1.0)
    return np.maximum(p1**depth, 1e-300)


def _keys_for_codes(codes: np.ndarray, multipliers: np.ndarray) -> np.ndarray:
    """Mix ``(m, k)`` int64 hash codes into one int64 key per row."""
    clipped = np.clip(codes, -_CODE_CLIP, _CODE_CLIP)
    # Wrapping multiply-add over int64 — deterministic on every platform.
    with np.errstate(over="ignore"):
        return (clipped * multipliers[np.newaxis, :]).sum(
            axis=1, dtype=np.int64
        )


def tune_hash_depth(
    points: np.ndarray,
    weights: np.ndarray,
    width: float,
    rng: np.random.Generator,
    target_occupancy: float = 8.0,
    max_depth: int = 16,
) -> int:
    """Smallest ``k`` whose buckets are small enough to sample from.

    Builds one trial table per candidate depth and measures the
    *query-experienced* bucket mass ``n * sum_b W_b^2 / W^2`` (the
    expected mass of the bucket a weight-proportional random point lands
    in, in units of the mean point weight). The estimator's variance for
    a query dominated by one nearby point scales with exactly this
    occupancy — the importance sampler must pick the near point out of
    its bucket — so tuning it to a small constant keeps the number of
    tables needed for a decision flat across dimensionalities.
    """
    n, dim = points.shape
    total = float(weights.sum())
    for depth in range(1, max_depth + 1):
        projections = rng.normal(size=(depth, dim))
        offsets = rng.uniform(0.0, width, size=depth)
        multipliers = _hash_multipliers(rng, depth)
        codes = np.floor(
            (points @ projections.T + offsets) / width
        ).astype(np.int64)
        keys = _keys_for_codes(codes, multipliers)
        order = np.argsort(keys, kind="stable")
        __, starts = np.unique(keys[order], return_index=True)
        bucket_masses = np.add.reduceat(weights[order], starts)
        occupancy = n * float((bucket_masses**2).sum()) / (total * total)
        if occupancy <= target_occupancy:
            return depth
    return max_depth


def _hash_multipliers(rng: np.random.Generator, depth: int) -> np.ndarray:
    """Random odd int64 multipliers for key mixing."""
    raw = rng.integers(1, 1 << 62, size=depth, dtype=np.int64)
    return raw * 2 + 1


@dataclass
class _Table:
    """One hash table: sorted bucket keys plus per-bucket sample state."""

    projections: np.ndarray  #: (k, d) standard-normal rows
    offsets: np.ndarray  #: (k,) uniform offsets in [0, w)
    multipliers: np.ndarray  #: (k,) odd int64 key mixers
    bucket_keys: np.ndarray  #: sorted unique int64 keys
    bucket_mass: np.ndarray  #: total weight per bucket (aligned)
    representative: np.ndarray  #: training index sampled per bucket


class LshTables:
    """``tables`` independent E2LSH tables over one weighted point set.

    Parameters
    ----------
    points:
        Training points in **bandwidth-scaled space** (the same space
        the kernel's ``value`` expects squared distances in).
    weights:
        Per-point mass, or ``None`` for uniform mass 1.
    width:
        Hash bucket width ``w`` in scaled space.
    depth:
        Concatenation depth ``k``; ``None`` auto-tunes via
        :func:`tune_hash_depth`.
    seed:
        Sole source of randomness. Identical ``(points, weights,
        width, depth, tables, seed)`` give identical tables everywhere.
    """

    def __init__(
        self,
        points: np.ndarray,
        weights: np.ndarray | None,
        tables: int,
        width: float,
        depth: int | None = None,
        seed: int | None = 0,
        target_occupancy: float = 8.0,
    ) -> None:
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] < 1:
            raise ValueError("points must be a non-empty 2-D array")
        if tables < 1:
            raise ValueError(f"tables must be >= 1, got {tables}")
        if width <= 0.0:
            raise ValueError(f"width must be positive, got {width}")
        n = points.shape[0]
        if weights is None:
            weights = np.ones(n, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (n,):
                raise ValueError("weights must align with points")
            if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
                raise ValueError("weights must be finite and non-negative")
        rng = np.random.default_rng(seed)
        self.points = points
        self.weights = weights
        self.total_mass = float(weights.sum())
        if self.total_mass <= 0.0:
            raise ValueError("total point mass must be positive")
        self.width = float(width)
        if depth is None:
            depth = tune_hash_depth(
                points, weights, self.width, rng,
                target_occupancy=target_occupancy,
            )
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self.n_tables = int(tables)
        self._tables = [self._build_table(rng) for __ in range(tables)]

    def _build_table(self, rng: np.random.Generator) -> _Table:
        n, dim = self.points.shape
        projections = rng.normal(size=(self.depth, dim))
        offsets = rng.uniform(0.0, self.width, size=self.depth)
        multipliers = _hash_multipliers(rng, self.depth)
        codes = np.floor(
            (self.points @ projections.T + offsets) / self.width
        ).astype(np.int64)
        keys = _keys_for_codes(codes, multipliers)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        bucket_keys, starts = np.unique(sorted_keys, return_index=True)
        sorted_weights = self.weights[order]
        bucket_mass = np.add.reduceat(sorted_weights, starts)
        ends = np.append(starts[1:], n)
        # One weighted representative per bucket, drawn now so query
        # time is deterministic: picking member j with probability
        # w_j / W_b is exactly the importance-sampling draw the
        # estimator's unbiasedness proof assumes, independently redrawn
        # per table. Vectorized over buckets: one global prefix sum,
        # one searchsorted.
        uniforms = rng.random(bucket_keys.shape[0])
        cumulative = np.cumsum(sorted_weights)
        prefix_start = cumulative[starts] - sorted_weights[starts]
        targets = prefix_start + uniforms * bucket_mass
        picks = np.searchsorted(cumulative, targets, side="right")
        representative = order[np.minimum(picks, ends - 1)]
        return _Table(
            projections=projections,
            offsets=offsets,
            multipliers=multipliers,
            bucket_keys=bucket_keys,
            bucket_mass=bucket_mass,
            representative=representative,
        )

    def lookup(
        self, table_index: int, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve a query block against one table.

        Returns ``(found, representative, bucket_mass)``: a boolean mask
        of queries whose bucket is non-empty, the training index of each
        found query's bucket representative, and that bucket's total
        mass (both compressed to the found rows).
        """
        table = self._tables[table_index]
        codes = np.floor(
            (queries @ table.projections.T + table.offsets) / self.width
        ).astype(np.int64)
        keys = _keys_for_codes(codes, table.multipliers)
        pos = np.searchsorted(table.bucket_keys, keys)
        pos_clipped = np.minimum(pos, table.bucket_keys.shape[0] - 1)
        found = table.bucket_keys[pos_clipped] == keys
        hit = pos_clipped[found]
        return found, table.representative[hit], table.bucket_mass[hit]

    def memory_bytes(self) -> int:
        """Approximate size of the table arrays (capacity planning)."""
        per_table = sum(
            t.bucket_keys.nbytes
            + t.bucket_mass.nbytes
            + t.representative.nbytes
            + t.projections.nbytes
            + t.offsets.nbytes
            for t in self._tables
        )
        return per_table
