"""Hashing-Based Estimator (Charikar–Siminelakis) threshold classification.

Each E2LSH table yields one unbiased density sample per query: if the
query's bucket in table ``t`` holds total mass ``W_B`` and its build-time
representative is training point ``x`` at scaled distance ``c``, then

    Z_t = (W_B / W) * K(c) / p_k(c)

where ``p_k`` is the table's collision probability at distance ``c``
(:func:`repro.estimators.lsh.collision_probability`) and ``W`` the total
training mass. ``E[Z_t] = (1/W) * sum_i w_i K(c_i)`` — exactly the
density the tree engines bound, so the two engines price queries in the
same currency. Samples are independent across tables, so a running
normal confidence interval over the tables consulted so far brackets the
density at level ``1 - delta``.

The classifier uses the interval for *band decisions only*: a query is
answered HIGH as soon as ``ci_lo - eta > t(1+eps)`` and LOW as soon as
``ci_hi + eta < t(1-eps)``. A query whose interval still straddles the
band after every table — which includes every query whose true density
is actually near the band, since those need more precision than the
interval can reach — is handed back undecided, and the caller routes it
through the batch tree engine, whose arithmetic is bit-identical to a
pure-tree run. Certification on the outside-band set is therefore
inherited from the fallback for hard queries and holds at level
``1 - delta`` for the CI-decided easy ones (the same probabilistic
flavour as the uniform coreset certificate).

Budget accounting: each table consulted charges
``config.hbe_sample_cost`` units of the ``max_node_expansions`` anytime
currency, so deadline-derived budgets and the serve calibrator's
expansions-per-second rate stay meaningful for this engine. A query that
exhausts the budget undecided is flagged ``exhausted`` and must surface
as degraded/UNCERTAIN upstream — never a silent best-effort label.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.estimators.lsh import (
    LshTables,
    collision_probability,
    normal_upper_quantile,
)
from repro.kernels.base import Kernel

__all__ = ["HbeBlockDecision", "HbeIndex"]


@dataclass
class HbeBlockDecision:
    """Per-query outcome of one :meth:`HbeIndex.decide_block` pass.

    ``mean``/``ci_lo``/``ci_hi`` estimate the *indexed* density (the
    sketch density under compression) without any eta adjustment —
    callers widen for reporting exactly like the tree path does.
    ``decided`` rows carry a certified-at-level-``1-delta`` label in
    ``high``; undecided rows must either fall back to a tree traversal
    (``exhausted`` False) or surface as degraded (``exhausted`` True:
    the anytime budget cannot pay for another sample, let alone a
    traversal).
    """

    decided: np.ndarray  #: (q,) bool — CI cleared the band
    high: np.ndarray  #: (q,) bool — label for decided rows
    mean: np.ndarray  #: (q,) running density estimate
    ci_lo: np.ndarray  #: (q,) lower confidence limit (>= 0)
    ci_hi: np.ndarray  #: (q,) upper confidence limit
    samples: np.ndarray  #: (q,) int — tables consulted per query
    exhausted: np.ndarray  #: (q,) bool — undecided with no budget left

    @property
    def samples_total(self) -> int:
        """Total table consultations across the block (for budgets/stats)."""
        return int(self.samples.sum())

    @property
    def fallback_rows(self) -> np.ndarray:
        """Row indices that must be re-run through the tree engine."""
        return np.flatnonzero(~self.decided & ~self.exhausted)


class HbeIndex:
    """LSH tables plus the sampling/decision loop for one fitted model.

    Parameters mirror the ``hbe_*`` knobs on
    :class:`~repro.core.config.TKDCConfig`; the classifier builds one
    lazily from its (possibly coreset-compressed) tree points on the
    first hbe classification. Construction is deterministic in ``seed``,
    which is what lets every fleet worker rebuild an identical index
    from the published skeleton instead of shipping the tables.
    """

    def __init__(
        self,
        points: np.ndarray,
        weights: np.ndarray | None,
        kernel: Kernel,
        tables: int = 64,
        width: float = 3.0,
        depth: int | None = None,
        seed: int | None = 0,
        delta: float = 0.01,
        min_samples: int = 16,
        batch_tables: int = 8,
        sample_cost: int = 1,
        margin: float = 4.0,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if batch_tables < 1:
            raise ValueError(f"batch_tables must be >= 1, got {batch_tables}")
        if sample_cost < 1:
            raise ValueError(f"sample_cost must be >= 1, got {sample_cost}")
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1, got {margin}")
        self.kernel = kernel
        self.tables = LshTables(
            points, weights, tables=tables, width=width, depth=depth, seed=seed
        )
        self.delta = float(delta)
        self.min_samples = int(min(min_samples, tables))
        self.batch_tables = int(batch_tables)
        self.sample_cost = int(sample_cost)
        self.margin = float(margin)
        # Two-sided z at level 1 - delta; computed once at build.
        self.z_value = normal_upper_quantile(0.5 * delta)

    @property
    def n_tables(self) -> int:
        return self.tables.n_tables

    def visibility_distance(self, tables_consulted: int | None = None) -> float:
        """Largest scaled distance seen reliably in ``tables_consulted`` tables.

        A training point at distance ``c`` from a query is missed by
        every one of ``m`` independent tables with probability
        ``(1 - p_k(c))^m``; the horizon is the distance where that miss
        probability reaches the index's ``delta`` — past it, the point
        plausibly never surfaces in any sample, at exactly the
        confidence level the CI decisions claim. ``None`` uses the full
        table count (the widest horizon the index can ever reach).
        Found by bisection on the monotone collision probability.
        """
        m = (
            self.n_tables
            if tables_consulted is None
            else max(int(tables_consulted), 1)
        )
        # (1 - p)^m <= delta  <=>  p >= 1 - delta^(1/m)
        target = 1.0 - self.delta ** (1.0 / m)
        if target >= 1.0:
            return 0.0
        lo, hi = 0.0, self.tables.width
        while collision_probability(
            np.array([hi]), self.tables.width, self.tables.depth
        )[0] > target:
            hi *= 2.0
            if hi > 1e6:
                return hi
        for __ in range(80):
            mid = 0.5 * (lo + hi)
            p = collision_probability(
                np.array([mid]), self.tables.width, self.tables.depth
            )[0]
            if p > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def low_visibility_bound(self, tables_consulted: int | None = None) -> float:
        """Density one point *invisible at this sample count* could carry.

        The heaviest training point, sitting just past
        :meth:`visibility_distance`, adds ``w_max * K(c_vis) / W`` to the
        true density while plausibly never appearing in any of the
        tables consulted so far — the sampler's mean and CI are blind to
        it. A LOW decision at ``tables_consulted`` samples is only
        certifiable when this bound is below the lower threshold band;
        the horizon widens (and the bound falls) as more tables are
        consulted, so hard LOWs unlock later in the sampling loop or —
        in degenerate-bandwidth workloads whose density one nearest
        neighbour dominates, e.g. Scott's rule far above ~10 dimensions
        — never, routing them to the tree fallback instead of risking a
        confident mislabel. Cached per sample count — the bound only
        depends on build-time state.
        """
        m = (
            self.n_tables
            if tables_consulted is None
            else max(int(tables_consulted), 1)
        )
        cache = getattr(self, "_low_visibility_bounds", None)
        if cache is None:
            cache = self._low_visibility_bounds = {}
        cached = cache.get(m)
        if cached is None:
            c_vis = self.visibility_distance(m)
            kernel_at = float(
                np.asarray(self.kernel.value(np.array([c_vis * c_vis])))[0]
            )
            w_max = float(self.tables.weights.max())
            cached = cache[m] = w_max * kernel_at / self.tables.total_mass
        return cached

    def sample_table(
        self, table_index: int, queries: np.ndarray
    ) -> np.ndarray:
        """One unbiased density sample per query from one table."""
        samples = np.zeros(queries.shape[0])
        found, rep, mass = self.tables.lookup(table_index, queries)
        if found.any():
            diffs = queries[found] - self.tables.points[rep]
            sq = np.einsum("ij,ij->i", diffs, diffs)
            dists = np.sqrt(sq)
            kernel_values = np.asarray(self.kernel.value(sq), dtype=np.float64)
            p = collision_probability(
                dists, self.tables.width, self.tables.depth
            )
            samples[found] = (
                (mass / self.tables.total_mass) * kernel_values / p
            )
        return samples

    def estimate(self, queries: np.ndarray, tables: int | None = None) -> np.ndarray:
        """Plain mean-over-tables density estimates (testing/diagnostics)."""
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        use = self.n_tables if tables is None else min(tables, self.n_tables)
        total = np.zeros(queries.shape[0])
        for t in range(use):
            total += self.sample_table(t, queries)
        return total / max(use, 1)

    def decide_block(
        self,
        queries: np.ndarray,
        threshold: float,
        epsilon: float,
        eta: float = 0.0,
        budget: int | None = None,
    ) -> HbeBlockDecision:
        """Run the anytime sampling loop over a scaled query block.

        ``queries`` must already be in bandwidth-scaled space (the same
        space the tables were built over). ``budget`` is the per-query
        ``max_node_expansions`` allowance; each table consulted charges
        ``sample_cost`` units of it, and sampling stops early when the
        remaining allowance cannot pay for another table.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        q = queries.shape[0]
        decided = np.zeros(q, dtype=bool)
        high = np.zeros(q, dtype=bool)
        sum_z = np.zeros(q)
        sum_z2 = np.zeros(q)
        count = np.zeros(q, dtype=np.int64)
        if q == 0:
            return HbeBlockDecision(
                decided=decided, high=high, mean=sum_z, ci_lo=sum_z,
                ci_hi=sum_z.copy(), samples=count,
                exhausted=np.zeros(q, dtype=bool),
            )

        band_lo = threshold * (1.0 - epsilon)
        band_hi = threshold * (1.0 + epsilon)
        total_tables = self.n_tables
        if budget is None:
            affordable = total_tables
        else:
            affordable = min(total_tables, max(int(budget) // self.sample_cost, 0))

        active = np.arange(q)
        consulted = 0
        while consulted < affordable and active.size:
            chunk_end = min(consulted + self.batch_tables, affordable)
            block = queries[active]
            for table_index in range(consulted, chunk_end):
                z = self.sample_table(table_index, block)
                sum_z[active] += z
                sum_z2[active] += z * z
            count[active] += chunk_end - consulted
            consulted = chunk_end

            m = count[active].astype(np.float64)
            mean = sum_z[active] / m
            variance = np.maximum(sum_z2[active] / m - mean * mean, 0.0)
            half = self.z_value * np.sqrt(variance / m)
            lo = np.maximum(mean - half, 0.0)
            hi = mean + half
            ripe = count[active] >= self.min_samples
            # Importance-sampled Z values are heavy-tailed: before the
            # rare large samples show up, the empirical variance (and
            # hence the CI) is biased low. Requiring the point estimate
            # to clear the band by ``margin`` on top of the CI test
            # restricts decisions to order-of-magnitude-clear queries —
            # everything genuinely near the band falls back to the tree,
            # which is also what makes outside-band label parity with
            # the tree engines structural rather than lucky.
            decide_high = ripe & (lo - eta > band_hi) & (mean > self.margin * band_hi)
            # A query that never collided has a degenerate [0, 0]
            # interval long before its density is actually measured;
            # an all-zero LOW is only trustworthy once every table has
            # had its chance to produce a collision.
            decide_low = ripe & (hi + eta < band_lo) & (mean * self.margin < band_lo)
            decide_low &= (mean > 0.0) | (count[active] >= total_tables)
            # A LOW is only sound when no single point still plausibly
            # unseen *after this many tables* could clear the band by
            # itself (see low_visibility_bound). The horizon widens with
            # each chunk, so hard LOWs unlock as sampling progresses;
            # workloads spiky enough that they never do route every
            # would-be LOW to the tree fallback instead of risking a
            # confident mislabel.
            decide_low &= self.low_visibility_bound(consulted) <= band_lo - eta
            newly = decide_high | decide_low
            if newly.any():
                rows = active[newly]
                decided[rows] = True
                high[rows] = decide_high[newly]
                active = active[~newly]

        safe = np.maximum(count, 1).astype(np.float64)
        mean_all = sum_z / safe
        var_all = np.maximum(sum_z2 / safe - mean_all * mean_all, 0.0)
        half_all = self.z_value * np.sqrt(var_all / safe)
        ci_lo = np.maximum(mean_all - half_all, 0.0)
        ci_hi = mean_all + half_all
        ci_hi[count == 0] = math.inf

        exhausted = np.zeros(q, dtype=bool)
        if budget is not None:
            remaining = int(budget) - count * self.sample_cost
            # Undecided with nothing left for even one traversal
            # expansion: no honest fallback exists, surface as degraded.
            exhausted = ~decided & (remaining < 1)
        return HbeBlockDecision(
            decided=decided, high=high, mean=mean_all,
            ci_lo=ci_lo, ci_hi=ci_hi, samples=count, exhausted=exhausted,
        )

    def memory_bytes(self) -> int:
        return self.tables.memory_bytes()
