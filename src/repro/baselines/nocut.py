"""The "nocut" baseline: tolerance-only tree KDE (paper Table 2).

This reproduces the Gray & Moore (2003) approximation that scikit-learn's
``KernelDensity`` implements: traverse the k-d tree refining density
bounds, stopping only when the bounds are within a relative tolerance of
each other — i.e. tKDC with the threshold rule and grid disabled. It
produces genuine density *estimates* (not just classifications), which is
exactly why it cannot exploit the classification threshold for pruning.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.core.bounds import _node_bounds
from repro.index.kdtree import KDTree
from repro.kernels.base import Kernel
from repro.kernels.factory import kernel_for_data
from repro.validation import as_finite_matrix


class TreeKDE:
    """Approximate KDE via bound refinement with a tolerance stop.

    Parameters
    ----------
    rtol:
        Relative tolerance: traversal stops when
        ``f_u - f_l <= rtol * f_l`` (scikit-learn semantics; the paper
        runs sklearn with ``rtol = 0.1`` and its own nocut variant with
        0.01).
    atol:
        Optional absolute tolerance added to the stopping test.
    """

    name = "nocut"

    def __init__(
        self,
        rtol: float = 0.01,
        atol: float = 0.0,
        kernel_name: str = "gaussian",
        bandwidth_scale: float = 1.0,
        leaf_size: int = 32,
        split_rule: str = "trimmed_midpoint",
    ) -> None:
        if rtol < 0 or atol < 0:
            raise ValueError("tolerances must be non-negative")
        if rtol == 0 and atol == 0:
            raise ValueError("at least one of rtol/atol must be positive")
        self.rtol = rtol
        self.atol = atol
        self.kernel_name = kernel_name
        self.bandwidth_scale = bandwidth_scale
        self.leaf_size = leaf_size
        self.split_rule = split_rule
        self._kernel: Kernel | None = None
        self._tree: KDTree | None = None
        self._evaluations = 0

    def fit(self, data: np.ndarray) -> "TreeKDE":
        data = as_finite_matrix(data, "training data")
        self._kernel = kernel_for_data(data, self.kernel_name, self.bandwidth_scale)
        self._tree = KDTree(
            self._kernel.scale(data), leaf_size=self.leaf_size, split_rule=self.split_rule
        )
        return self

    @property
    def kernel(self) -> Kernel:
        if self._kernel is None:
            raise RuntimeError("TreeKDE is not fitted; call fit() first")
        return self._kernel

    @property
    def kernel_evaluations(self) -> int:
        return self._evaluations

    def density(self, queries: np.ndarray) -> np.ndarray:
        """Densities within the configured tolerance at each query."""
        if self._tree is None or self._kernel is None:
            raise RuntimeError("TreeKDE is not fitted; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        scaled = self._kernel.scale(queries)
        out = np.empty(queries.shape[0])
        for i in range(queries.shape[0]):
            out[i] = self._density_one(scaled[i])
        return out

    def _density_one(self, query: np.ndarray) -> float:
        tree, kernel = self._tree, self._kernel
        assert tree is not None and kernel is not None
        inv_n = 1.0 / tree.size
        counter = itertools.count()

        lower, upper = _node_bounds(tree.root, query, kernel, inv_n)
        f_lower, f_upper = lower, upper
        frontier = [(-(upper - lower), next(counter), tree.root, lower, upper)]
        while frontier:
            if f_upper - f_lower <= self.rtol * f_lower + self.atol:
                break
            __, __, node, node_lower, node_upper = heapq.heappop(frontier)
            f_lower -= node_lower
            f_upper -= node_upper
            if node.is_leaf:
                exact = kernel.sum_at(tree.leaf_points(node), query) * inv_n
                self._evaluations += node.count
                f_lower += exact
                f_upper += exact
            else:
                for child in node.children():
                    child_lower, child_upper = _node_bounds(child, query, kernel, inv_n)
                    f_lower += child_lower
                    f_upper += child_upper
                    if child_upper - child_lower > 0.0:
                        heapq.heappush(
                            frontier,
                            (-(child_upper - child_lower), next(counter), child,
                             child_lower, child_upper),
                        )
        return 0.5 * (f_lower + f_upper)
