"""The "rkde" baseline: radial-cutoff KDE (paper Table 2, Figure 13).

Performs a range query around each query point and sums kernel
contributions only from the points inside the cutoff radius. Because the
number of in-radius neighbours grows linearly with the dataset size, the
per-query cost stays O(n) — the paper uses this baseline to show that
fixed-radius truncation alone cannot deliver tKDC's asymptotics.

The default radius is "the smallest possible radius with guaranteed
error eps * t based on the points excluded": excluding everything beyond
scaled radius r discards at most K(r^2) of density (all n points sitting
exactly at distance r contribute n * K(r^2) / n), so r solves
``K(r^2) = eps * t``.
"""

from __future__ import annotations

import numpy as np

from repro.index.kdtree import KDTree
from repro.index.traversal import sum_kernel_within_radius
from repro.kernels.base import Kernel
from repro.kernels.factory import kernel_for_data
from repro.validation import as_finite_matrix


def radius_for_guarantee(kernel: Kernel, epsilon: float, threshold: float) -> float:
    """Smallest scaled cutoff radius with truncation error <= eps * t."""
    if epsilon <= 0 or threshold <= 0:
        raise ValueError("epsilon and threshold must be positive")
    return kernel.cutoff_radius(epsilon * threshold)


class RadialKDE:
    """KDE truncated to a fixed radius around each query.

    Parameters
    ----------
    radius_in_bandwidths:
        Cutoff radius in bandwidth-scaled space. When None, the radius is
        derived at fit time from ``epsilon`` and ``threshold_hint`` via
        :func:`radius_for_guarantee`.
    epsilon, threshold_hint:
        Used only when ``radius_in_bandwidths`` is None. The paper sets
        the hint from a cheap pilot estimate; benchmarks pass the tKDC
        bootstrap value.
    """

    name = "rkde"

    def __init__(
        self,
        radius_in_bandwidths: float | None = None,
        epsilon: float = 0.01,
        threshold_hint: float | None = None,
        kernel_name: str = "gaussian",
        bandwidth_scale: float = 1.0,
        leaf_size: int = 32,
        split_rule: str = "trimmed_midpoint",
    ) -> None:
        if radius_in_bandwidths is None and threshold_hint is None:
            raise ValueError(
                "provide either radius_in_bandwidths or a threshold_hint to derive it"
            )
        if radius_in_bandwidths is not None and radius_in_bandwidths < 0:
            raise ValueError(f"radius must be non-negative, got {radius_in_bandwidths}")
        self.radius_in_bandwidths = radius_in_bandwidths
        self.epsilon = epsilon
        self.threshold_hint = threshold_hint
        self.kernel_name = kernel_name
        self.bandwidth_scale = bandwidth_scale
        self.leaf_size = leaf_size
        self.split_rule = split_rule
        self._kernel: Kernel | None = None
        self._tree: KDTree | None = None
        self._radius: float | None = None
        self._evaluations = 0

    def fit(self, data: np.ndarray) -> "RadialKDE":
        data = as_finite_matrix(data, "training data")
        self._kernel = kernel_for_data(data, self.kernel_name, self.bandwidth_scale)
        self._tree = KDTree(
            self._kernel.scale(data), leaf_size=self.leaf_size, split_rule=self.split_rule
        )
        if self.radius_in_bandwidths is not None:
            self._radius = self.radius_in_bandwidths
        else:
            assert self.threshold_hint is not None
            self._radius = radius_for_guarantee(self._kernel, self.epsilon, self.threshold_hint)
        return self

    @property
    def kernel(self) -> Kernel:
        if self._kernel is None:
            raise RuntimeError("RadialKDE is not fitted; call fit() first")
        return self._kernel

    @property
    def radius(self) -> float:
        """The effective scaled cutoff radius (available after fit)."""
        if self._radius is None:
            raise RuntimeError("RadialKDE is not fitted; call fit() first")
        return self._radius

    @property
    def kernel_evaluations(self) -> int:
        return self._evaluations

    def density(self, queries: np.ndarray) -> np.ndarray:
        """Truncated-KDE densities at ``queries``."""
        if self._tree is None or self._kernel is None or self._radius is None:
            raise RuntimeError("RadialKDE is not fitted; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        scaled = self._kernel.scale(queries)
        n = self._tree.size
        out = np.empty(queries.shape[0])
        for i in range(queries.shape[0]):
            total, evaluations = sum_kernel_within_radius(
                self._tree, self._kernel, scaled[i], self._radius
            )
            self._evaluations += evaluations
            out[i] = total / n
        return out
