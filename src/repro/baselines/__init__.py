"""Baseline density estimators from the paper's evaluation (Table 2).

- :class:`~repro.baselines.simple.NaiveKDE` — the "simple" baseline:
  every kernel evaluated explicitly.
- :class:`~repro.baselines.nocut.TreeKDE` — "nocut"/sklearn emulation:
  k-d tree traversal with only a tolerance stopping rule (Gray & Moore).
- :class:`~repro.baselines.rkde.RadialKDE` — "rkde": kernel contributions
  only from points within a cutoff radius.
- :class:`~repro.baselines.binned.BinnedKDE` — "ks" emulation: linear
  binning onto a grid plus FFT convolution, d <= 4.
- :class:`~repro.baselines.gmm.GaussianMixtureKDE` — the parametric
  strawman the paper's introduction argues against (EM-fitted GMM).

All satisfy the :class:`~repro.baselines.base.DensityEstimator` protocol
so benchmarks can drive them interchangeably, and
:func:`~repro.baselines.base.classify_by_density` adapts any of them into
a density classifier for head-to-head comparisons with tKDC.
"""

from repro.baselines.base import (
    DensityEstimator,
    classify_by_density,
    quantile_threshold_of,
)
from repro.baselines.binned import BinnedKDE
from repro.baselines.gmm import GaussianMixtureKDE
from repro.baselines.nocut import TreeKDE
from repro.baselines.rkde import RadialKDE
from repro.baselines.simple import NaiveKDE

__all__ = [
    "DensityEstimator",
    "classify_by_density",
    "quantile_threshold_of",
    "NaiveKDE",
    "TreeKDE",
    "RadialKDE",
    "BinnedKDE",
    "GaussianMixtureKDE",
]
