"""Gaussian mixture model density estimation (EM, diagonal covariances).

The paper's introduction argues *against* parametric density models:
"a mixture model of five Gaussians will be unable to accurately capture
distributions that contain more than five distinct regions of high
density", and mis-specified parametric assumptions "deliver inaccurate
densities" on data like the shuttle measurements. This from-scratch EM
implementation makes that claim reproducible: the accuracy experiments
can score a k-component GMM head-to-head against KDE-based
classification on the multi-modal simulators.

Implementation: standard EM with diagonal covariances, log-sum-exp
responsibilities, variance flooring, and random-point initialization
restarted across a few seeds (best log-likelihood wins).
"""

from __future__ import annotations

import numpy as np

from repro.validation import as_finite_matrix

#: Relative log-likelihood improvement below which EM stops.
_DEFAULT_TOL = 1e-5

#: Variance floor relative to the data's per-dimension variance.
_VARIANCE_FLOOR_FRACTION = 1e-6


class GaussianMixtureKDE:
    """Parametric density estimator: a k-component diagonal GMM.

    Satisfies the same ``DensityEstimator`` protocol as the KDE
    baselines (``fit``, ``density``, ``kernel_evaluations``) so the
    harness can score it interchangeably.

    Parameters
    ----------
    n_components:
        Number of Gaussian components (the brittle knob the paper
        criticizes — there is no non-parametric fallback when it is
        wrong).
    max_iter, tol:
        EM stopping controls.
    n_restarts:
        Independent EM runs; the best final log-likelihood wins.
    seed:
        Seed for initialization.
    """

    name = "gmm"

    def __init__(
        self,
        n_components: int = 5,
        max_iter: int = 200,
        tol: float = _DEFAULT_TOL,
        n_restarts: int = 3,
        seed: int | None = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if n_restarts < 1:
            raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.n_restarts = n_restarts
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._means: np.ndarray | None = None
        self._variances: np.ndarray | None = None
        self.log_likelihood_: float = float("-inf")
        self.iterations_: int = 0
        self._evaluations = 0

    def fit(self, data: np.ndarray) -> "GaussianMixtureKDE":
        """Run EM (with restarts) and keep the best solution."""
        data = as_finite_matrix(data, "training data")
        if data.shape[0] < self.n_components:
            raise ValueError(
                f"need at least {self.n_components} points, got {data.shape[0]}"
            )
        rng = np.random.default_rng(self.seed)
        best = None
        for __ in range(self.n_restarts):
            params, log_likelihood, iterations = self._em_once(data, rng)
            if best is None or log_likelihood > best[1]:
                best = (params, log_likelihood, iterations)
        assert best is not None
        (self._weights, self._means, self._variances) = best[0]
        self.log_likelihood_ = best[1]
        self.iterations_ = best[2]
        return self

    @property
    def kernel_evaluations(self) -> int:
        """Component-density evaluations performed (protocol parity)."""
        return self._evaluations

    def density(self, queries: np.ndarray) -> np.ndarray:
        """Mixture densities at ``queries``."""
        if self._weights is None:
            raise RuntimeError("GaussianMixtureKDE is not fitted; call fit() first")
        queries = as_finite_matrix(queries, "queries")
        log_prob = self._component_log_densities(queries)
        self._evaluations += queries.shape[0] * self.n_components
        log_mix = log_prob + np.log(self._weights)[None, :]
        peak = log_mix.max(axis=1, keepdims=True)
        return np.exp(peak[:, 0]) * np.sum(np.exp(log_mix - peak), axis=1)

    # ------------------------------------------------------------------
    # EM internals
    # ------------------------------------------------------------------

    def _em_once(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray], float, int]:
        n, d = data.shape
        k = self.n_components
        floor = np.maximum(np.var(data, axis=0) * _VARIANCE_FLOOR_FRACTION, 1e-12)

        # Lloyd-style initialization: full-data-variance starts make the
        # first E step nearly uniform and EM collapses into a symmetric
        # local optimum; tight per-cluster starting variances avoid it.
        weights, means, variances = self._kmeans_init(data, k, rng, floor)

        previous = float("-inf")
        iterations = 0
        for iterations in range(1, self.max_iter + 1):
            self._weights, self._means, self._variances = weights, means, variances
            log_prob = self._component_log_densities(data)
            log_mix = log_prob + np.log(weights)[None, :]
            peak = log_mix.max(axis=1, keepdims=True)
            log_norm = peak[:, 0] + np.log(np.sum(np.exp(log_mix - peak), axis=1))
            log_likelihood = float(np.mean(log_norm))

            responsibilities = np.exp(log_mix - log_norm[:, None])
            mass = responsibilities.sum(axis=0) + 1e-12
            weights = mass / n
            means = (responsibilities.T @ data) / mass[:, None]
            spread = (
                responsibilities.T @ (data**2) / mass[:, None] - means**2
            )
            variances = np.maximum(spread, floor)

            if log_likelihood - previous < self.tol * max(abs(previous), 1.0):
                previous = log_likelihood
                break
            previous = log_likelihood

        self._weights, self._means, self._variances = weights, means, variances
        return (weights, means, variances), previous, iterations

    @staticmethod
    def _kmeans_init(
        data: np.ndarray, k: int, rng: np.random.Generator, floor: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """A few Lloyd iterations to seed weights/means/variances."""
        n = data.shape[0]
        means = data[rng.choice(n, size=k, replace=False)].copy()
        assignment = np.zeros(n, dtype=np.int64)
        for __ in range(10):
            sq = ((data[:, None, :] - means[None, :, :]) ** 2).sum(axis=2)
            assignment = np.argmin(sq, axis=1)
            for component in range(k):
                members = data[assignment == component]
                if members.shape[0] == 0:
                    means[component] = data[rng.integers(n)]
                else:
                    means[component] = members.mean(axis=0)
        weights = np.empty(k)
        variances = np.empty((k, data.shape[1]))
        for component in range(k):
            members = data[assignment == component]
            weights[component] = max(members.shape[0], 1) / n
            if members.shape[0] >= 2:
                variances[component] = np.maximum(np.var(members, axis=0), floor)
            else:
                variances[component] = np.maximum(np.var(data, axis=0), floor)
        weights /= weights.sum()
        return weights, means, variances

    def _component_log_densities(self, points: np.ndarray) -> np.ndarray:
        """(m, k) log-densities of each point under each component."""
        assert self._means is not None and self._variances is not None
        diffs = points[:, None, :] - self._means[None, :, :]
        inv_var = 1.0 / self._variances
        quad = np.einsum("mkd,kd->mk", diffs**2, inv_var)
        log_det = np.sum(np.log(self._variances), axis=1)
        d = points.shape[1]
        return -0.5 * (quad + log_det[None, :] + d * np.log(2.0 * np.pi))
