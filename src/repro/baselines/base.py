"""Common protocol and adapters for baseline density estimators.

The paper compares tKDC against *density estimators* (which compute
``f(x)`` and compare it to a threshold afterwards). This module defines
the estimator protocol those baselines implement and the adapter that
turns any of them into a density classifier, so that every algorithm in
the benchmarks solves the identical task.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.result import Label
from repro.quantile.order_stats import quantile_of_sorted


@runtime_checkable
class DensityEstimator(Protocol):
    """Anything that can be fitted to data and report densities."""

    #: Short algorithm name used in benchmark tables (e.g. ``"simple"``).
    name: str

    def fit(self, data: np.ndarray) -> "DensityEstimator":
        """Train the estimator on ``data`` of shape ``(n, d)``."""
        ...

    def density(self, queries: np.ndarray) -> np.ndarray:
        """Estimated probability densities at ``queries``, shape ``(m,)``."""
        ...

    @property
    def kernel_evaluations(self) -> int:
        """Total individual kernel evaluations performed so far."""
        ...


def quantile_threshold_of(
    estimator: DensityEstimator,
    data: np.ndarray,
    p: float,
    self_contribution: float = 0.0,
) -> float:
    """The paper's quantile threshold ``t(p)`` under a given estimator.

    Evaluates the estimator's densities at every training point, subtracts
    the self-contribution correction ``f0`` (Equation 1), and returns the
    ``p``-th order statistic.
    """
    densities = np.asarray(estimator.density(data), dtype=np.float64) - self_contribution
    return quantile_of_sorted(np.sort(densities), p)


def classify_by_density(
    estimator: DensityEstimator, queries: np.ndarray, threshold: float
) -> np.ndarray:
    """Adapt a density estimator into a density classifier.

    Returns an array of :class:`~repro.core.result.Label`: HIGH where the
    estimated density exceeds ``threshold``.
    """
    densities = np.asarray(estimator.density(queries))
    return np.where(densities > threshold, Label.HIGH, Label.LOW)
