"""The "ks" baseline: linear-binning + FFT convolution KDE (Table 2).

Reproduces the algorithmic strategy of the R ``ks`` package (Wand 1994,
Silverman 1982): training points are spread onto a regular grid with
multilinear ("linear binning") weights, the kernel is tabulated on grid
offsets, and the density grid is their FFT convolution. Queries are
answered by multilinear interpolation of the density grid.

Extremely fast in low dimensions but, like ``ks``, limited to d <= 4
(grid cells per dimension shrink combinatorially) and carrying *no*
accuracy guarantee — the bias of coarse bins is what degrades its F1
score in the paper's Figure 8.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.signal import fftconvolve

from repro.kernels.base import Kernel
from repro.kernels.factory import kernel_for_data
from repro.validation import as_finite_matrix

#: ks-like default grid sizes per dimensionality.
DEFAULT_GRID_SIZES = {1: 401, 2: 151, 3: 51, 4: 21}

#: Kernel tail radius (in bandwidths) used for grid padding and the
#: convolution stencil; exp(-16/2) ~ 3e-4 relative truncation.
_TAIL_RADIUS = 4.0


class BinnedKDE:
    """Grid-binned KDE with FFT convolution (d <= 4).

    Parameters
    ----------
    grid_size:
        Grid nodes per dimension; defaults to the ks-like table
        ``{1: 401, 2: 151, 3: 51, 4: 21}``.
    """

    name = "ks"

    def __init__(
        self,
        grid_size: int | None = None,
        kernel_name: str = "gaussian",
        bandwidth_scale: float = 1.0,
    ) -> None:
        if grid_size is not None and grid_size < 2:
            raise ValueError(f"grid_size must be >= 2, got {grid_size}")
        self.grid_size = grid_size
        self.kernel_name = kernel_name
        self.bandwidth_scale = bandwidth_scale
        self._kernel: Kernel | None = None
        self._grid_lo: np.ndarray | None = None
        self._cell: np.ndarray | None = None
        self._density_grid: np.ndarray | None = None
        self._evaluations = 0

    def fit(self, data: np.ndarray) -> "BinnedKDE":
        data = as_finite_matrix(data, "training data")
        d = data.shape[1]
        if d > 4:
            raise ValueError(f"BinnedKDE supports d <= 4 (like the ks package), got d={d}")
        size = self.grid_size or DEFAULT_GRID_SIZES[d]

        self._kernel = kernel_for_data(data, self.kernel_name, self.bandwidth_scale)
        scaled = self._kernel.scale(data)
        tail = min(_TAIL_RADIUS, np.sqrt(self._kernel.support_sq_radius))

        lo = scaled.min(axis=0) - tail
        hi = scaled.max(axis=0) + tail
        self._grid_lo = lo
        self._cell = (hi - lo) / (size - 1)

        counts = self._linear_bin(scaled, size)
        stencil = self._kernel_stencil(tail)
        self._density_grid = fftconvolve(counts, stencil, mode="same") / data.shape[0]
        # FFT round-off can leave tiny negative densities in empty regions.
        np.maximum(self._density_grid, 0.0, out=self._density_grid)
        return self

    @property
    def kernel(self) -> Kernel:
        if self._kernel is None:
            raise RuntimeError("BinnedKDE is not fitted; call fit() first")
        return self._kernel

    @property
    def kernel_evaluations(self) -> int:
        """Kernel-stencil evaluations (binning itself evaluates none)."""
        return self._evaluations

    def density(self, queries: np.ndarray) -> np.ndarray:
        """Interpolated densities; zero outside the padded grid."""
        if self._density_grid is None or self._kernel is None:
            raise RuntimeError("BinnedKDE is not fitted; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        scaled = self._kernel.scale(queries)
        return self._interpolate(scaled)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _linear_bin(self, scaled: np.ndarray, size: int) -> np.ndarray:
        """Spread unit mass per point onto its 2^d surrounding grid nodes."""
        assert self._grid_lo is not None and self._cell is not None
        d = scaled.shape[1]
        pos = (scaled - self._grid_lo) / self._cell
        base = np.floor(pos).astype(np.int64)
        frac = pos - base
        base = np.clip(base, 0, size - 2)

        counts = np.zeros((size,) * d)
        flat = counts.reshape(-1)
        strides = np.array([size**k for k in range(d - 1, -1, -1)], dtype=np.int64)
        for corner in itertools.product((0, 1), repeat=d):
            corner_arr = np.asarray(corner)
            weights = np.prod(
                np.where(corner_arr, frac, 1.0 - frac), axis=1
            )
            flat_idx = (base + corner_arr) @ strides
            np.add.at(flat, flat_idx, weights)
        return counts

    def _kernel_stencil(self, tail: float) -> np.ndarray:
        """Kernel tabulated on grid-offset vectors out to the tail radius."""
        assert self._cell is not None and self._kernel is not None
        d = self._cell.shape[0]
        reach = [max(1, int(np.ceil(tail / w))) for w in self._cell]
        axes = [np.arange(-r, r + 1) * w for r, w in zip(reach, self._cell)]
        mesh = np.meshgrid(*axes, indexing="ij")
        sq = np.zeros(mesh[0].shape)
        for axis in mesh:
            sq += axis * axis
        self._evaluations += sq.size
        return np.asarray(self._kernel.value(sq), dtype=np.float64).reshape(sq.shape)

    def _interpolate(self, scaled_queries: np.ndarray) -> np.ndarray:
        """Multilinear interpolation; zero for out-of-grid queries."""
        assert (
            self._grid_lo is not None
            and self._cell is not None
            and self._density_grid is not None
        )
        grid = self._density_grid
        size = grid.shape[0]
        d = scaled_queries.shape[1]
        pos = (scaled_queries - self._grid_lo) / self._cell
        inside = np.all((pos >= 0) & (pos <= size - 1), axis=1)
        base = np.clip(np.floor(pos).astype(np.int64), 0, size - 2)
        frac = np.clip(pos - base, 0.0, 1.0)

        out = np.zeros(scaled_queries.shape[0])
        flat = grid.reshape(-1)
        strides = np.array([size**k for k in range(d - 1, -1, -1)], dtype=np.int64)
        for corner in itertools.product((0, 1), repeat=d):
            corner_arr = np.asarray(corner)
            weights = np.prod(np.where(corner_arr, frac, 1.0 - frac), axis=1)
            flat_idx = (base + corner_arr) @ strides
            out += weights * flat[flat_idx]
        out[~inside] = 0.0
        return out
