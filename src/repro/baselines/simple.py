"""The "simple" baseline: naive exact KDE (paper Table 2).

Every query accumulates the kernel contribution of every training point.
Exact up to floating point, O(n) per query. This is also the ground-truth
oracle the accuracy experiments (Figure 8) compare against.

The pairwise computation is vectorized over training points and chunked
over queries to bound peak memory; the per-kernel work is identical to
the paper's Java loop, just batched.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.factory import kernel_for_data
from repro.validation import as_finite_matrix

#: Cap on the number of pairwise distances materialized at once.
_MAX_PAIR_BLOCK = 4_000_000


class NaiveKDE:
    """Exact kernel density estimation by explicit summation.

    Parameters
    ----------
    kernel_name:
        Kernel family (``"gaussian"`` or ``"epanechnikov"``).
    bandwidth_scale:
        Scott's-rule scale factor ``b``.
    """

    name = "simple"

    def __init__(
        self,
        kernel_name: str = "gaussian",
        bandwidth_scale: float = 1.0,
        normalize: bool = True,
    ) -> None:
        self.kernel_name = kernel_name
        self.bandwidth_scale = bandwidth_scale
        self.normalize = normalize
        self._kernel: Kernel | None = None
        self._scaled: np.ndarray | None = None
        self._evaluations = 0

    def fit(self, data: np.ndarray) -> "NaiveKDE":
        data = as_finite_matrix(data, "training data")
        self._kernel = kernel_for_data(
            data, self.kernel_name, self.bandwidth_scale, normalize=self.normalize
        )
        self._scaled = self._kernel.scale(data)
        return self

    @property
    def kernel(self) -> Kernel:
        if self._kernel is None:
            raise RuntimeError("NaiveKDE is not fitted; call fit() first")
        return self._kernel

    @property
    def kernel_evaluations(self) -> int:
        return self._evaluations

    def density(self, queries: np.ndarray) -> np.ndarray:
        """Exact densities at ``queries`` (shape ``(m,)`` output)."""
        if self._scaled is None or self._kernel is None:
            raise RuntimeError("NaiveKDE is not fitted; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        scaled_queries = self._kernel.scale(queries)
        n = self._scaled.shape[0]
        m = scaled_queries.shape[0]
        chunk = max(1, _MAX_PAIR_BLOCK // n)
        out = np.empty(m)
        for start in range(0, m, chunk):
            block = scaled_queries[start : start + chunk]
            # (q, n, d) differences collapse to (q, n) squared distances.
            diffs = block[:, None, :] - self._scaled[None, :, :]
            sq = np.einsum("qnd,qnd->qn", diffs, diffs)
            out[start : start + block.shape[0]] = np.sum(self._kernel.value(sq), axis=1) / n
            self._evaluations += block.shape[0] * n
        return out
