"""Zero-copy publication of :class:`FlatTree` arrays over shared memory.

The multi-process serving fleet (``docs/serving.md``) needs every worker
to traverse the same index without holding its own copy of the point
arrays. This module publishes a :class:`~repro.index.flat.FlatTree`'s
backing arrays into named :mod:`multiprocessing.shared_memory` segments
and reconstructs a *read-only* ``FlatTree`` in any other process by
attaching — per-worker memory beyond the mapping is O(1) regardless of
model size, and no point array is ever pickled across the process
boundary.

A published *generation* is described by a small JSON manifest (segment
name, dtype, and shape per array, plus the source model's sha256 and
build info) that is written to disk and handed to workers.
:func:`attach_flat_tree` validates the manifest strictly and fails
loudly (:class:`ShmAttachError`) when a segment has been unlinked out
from under it — the stale-manifest failure mode — or is smaller than the
shapes claim.

Ownership is asymmetric: the *publisher* (the fleet router) owns the
segments and must call :meth:`PublishedTree.unlink` exactly once when a
generation is retired; attachers only :meth:`TreeAttachment.close` to
unmap. CPython's ``multiprocessing.resource_tracker`` assumes
create-and-forget ownership and would unlink any segment a process
merely *attached* when that process exits (bpo-39959) — destroying the
live model plane for the whole fleet the first time one worker restarts.
:func:`_open_segment` therefore bypasses tracker registration on attach
(via ``track=False`` where available, else by masking the tracker's
``register`` hook for the duration of the open).

POSIX shared memory is backed by ``/dev/shm`` on Linux; see
``docs/serving.md`` for the platform caveat and the single-process
fallback.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro.index.flat import FlatTree
from repro.io.atomic import atomic_write_bytes

#: Manifest format marker + version; bumped on incompatible changes so a
#: worker from a different build refuses a manifest it cannot trust.
MANIFEST_MAGIC = "repro-shm-flattree"
MANIFEST_VERSION = 1

#: FlatTree array fields published as segments, in manifest order.
#: ``point_weights`` is optional (absent for unweighted trees).
ARRAY_FIELDS = (
    "points", "lo", "hi", "count", "start", "end",
    "left", "right", "node_weight", "point_weights",
)

_REQUIRED_FIELDS = tuple(f for f in ARRAY_FIELDS if f != "point_weights")

#: Serializes the resource-tracker masking in :func:`_open_segment` so
#: concurrent attaches from handler threads never race on the patch.
_TRACKER_LOCK = threading.Lock()


class ShmManifestError(ValueError):
    """A shared-memory manifest is malformed or from a foreign format."""


class ShmAttachError(RuntimeError):
    """Attaching to a published generation failed.

    The usual cause is a *stale manifest*: the publisher retired the
    generation (unlinking its segments) after the manifest was read, or
    the publishing process died without ever creating them.
    """


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment WITHOUT resource-tracker tracking.

    The tracker would unlink the segment when this process exits,
    destroying it for every other attached process (bpo-39959). Python
    3.13+ exposes ``track=False``; earlier versions need the tracker's
    ``register`` hook masked for the duration of the constructor.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    with _TRACKER_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class SegmentSpec:
    """How to reinterpret one shared segment as a numpy array."""

    segment: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize

    def to_dict(self) -> dict:
        return {
            "segment": self.segment,
            "dtype": self.dtype,
            "shape": list(self.shape),
        }

    @classmethod
    def from_dict(cls, raw: object, field_name: str) -> "SegmentSpec":
        if not isinstance(raw, dict):
            raise ShmManifestError(
                f"segment spec for {field_name!r} must be an object, got {raw!r}"
            )
        try:
            segment = raw["segment"]
            dtype = raw["dtype"]
            shape = tuple(int(extent) for extent in raw["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ShmManifestError(
                f"segment spec for {field_name!r} is malformed: {exc}"
            ) from exc
        if not isinstance(segment, str) or not segment:
            raise ShmManifestError(
                f"segment spec for {field_name!r} has no segment name"
            )
        try:
            np.dtype(dtype)
        except TypeError as exc:
            raise ShmManifestError(
                f"segment spec for {field_name!r} has invalid dtype {dtype!r}"
            ) from exc
        if any(extent < 0 for extent in shape):
            raise ShmManifestError(
                f"segment spec for {field_name!r} has negative shape {shape}"
            )
        return cls(segment=segment, dtype=str(dtype), shape=shape)


@dataclass(frozen=True)
class TreeManifest:
    """Everything a process needs to attach one published generation."""

    generation: str
    segments: dict[str, SegmentSpec]
    model_sha256: str = ""
    build: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "magic": MANIFEST_MAGIC,
            "version": MANIFEST_VERSION,
            "generation": self.generation,
            "model_sha256": self.model_sha256,
            "build": self.build,
            "segments": {
                name: spec.to_dict() for name, spec in self.segments.items()
            },
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, raw: object) -> "TreeManifest":
        if not isinstance(raw, dict):
            raise ShmManifestError(f"manifest must be a JSON object, got {raw!r}")
        if raw.get("magic") != MANIFEST_MAGIC:
            raise ShmManifestError(
                f"not a shared-memory tree manifest (magic={raw.get('magic')!r})"
            )
        if raw.get("version") != MANIFEST_VERSION:
            raise ShmManifestError(
                f"manifest version {raw.get('version')!r} is not the supported "
                f"{MANIFEST_VERSION}; publisher and worker builds disagree"
            )
        generation = raw.get("generation")
        if not isinstance(generation, str) or not generation:
            raise ShmManifestError("manifest has no generation id")
        raw_segments = raw.get("segments")
        if not isinstance(raw_segments, dict):
            raise ShmManifestError("manifest has no segments table")
        segments = {
            name: SegmentSpec.from_dict(spec, name)
            for name, spec in raw_segments.items()
        }
        missing = [f for f in _REQUIRED_FIELDS if f not in segments]
        if missing:
            raise ShmManifestError(
                f"manifest is missing required arrays: {', '.join(missing)}"
            )
        unknown = [f for f in segments if f not in ARRAY_FIELDS]
        if unknown:
            raise ShmManifestError(
                f"manifest names unknown arrays: {', '.join(unknown)}"
            )
        extras = raw.get("extras") or {}
        build = raw.get("build") or {}
        if not isinstance(extras, dict) or not isinstance(build, dict):
            raise ShmManifestError("manifest extras/build must be objects")
        return cls(
            generation=generation,
            segments=segments,
            model_sha256=str(raw.get("model_sha256") or ""),
            build=build,
            extras=extras,
        )

    def save(self, path: Path | str) -> Path:
        """Write the manifest JSON atomically (temp-then-rename)."""
        path = Path(path)
        blob = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        atomic_write_bytes(path, blob.encode("utf-8"))
        return path

    @classmethod
    def load(cls, path: Path | str) -> "TreeManifest":
        path = Path(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ShmAttachError(f"no manifest file at {path}") from None
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShmManifestError(
                f"manifest {path} is unreadable: {type(exc).__name__}: {exc}"
            ) from exc
        return cls.from_dict(raw)


def new_generation_id(tag: str = "tkdc") -> str:
    """A unique, shm-name-safe id for one published generation.

    Includes the publishing pid plus random bytes so concurrent fleets
    (or a fleet restarted after a crash that leaked segments) never
    collide on segment names.
    """
    return f"{tag}-{os.getpid()}-{os.urandom(4).hex()}"


class PublishedTree:
    """Owner handle for one published generation (router side).

    Holds the :class:`~multiprocessing.shared_memory.SharedMemory`
    objects alive. ``close()`` unmaps this process's view; ``unlink()``
    destroys the segments system-wide and must be called exactly once
    when the generation is retired (idempotent; missing segments are
    ignored so crash-recovery double-unlinks are safe).
    """

    def __init__(
        self,
        manifest: TreeManifest,
        segments: dict[str, shared_memory.SharedMemory],
    ) -> None:
        self.manifest = manifest
        self._segments = segments
        self._unlinked = False

    def close(self) -> None:
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exported views alive
                pass

    def unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self.close()


class AttachedTree:
    """Read-only, KDTree-compatible facade over attached segments.

    Provides exactly the tree surface the serving path touches —
    ``flatten()``, ``points``, ``point_weights``, ``size``, ``dim``,
    ``total_weight`` — so an attached model serves through the same
    ``classify_detailed`` batch path as a locally loaded one. Anything
    needing the pointer-based :class:`~repro.index.kdtree.KDTree`
    (refitting, dual-tree classify) fails with a normal
    ``AttributeError`` rather than silently wrong answers.
    """

    def __init__(self, flat: FlatTree) -> None:
        self._flat = flat

    def flatten(self) -> FlatTree:
        return self._flat

    @property
    def points(self) -> np.ndarray:
        return self._flat.points

    @property
    def point_weights(self) -> np.ndarray | None:
        return self._flat.point_weights

    @property
    def size(self) -> int:
        return self._flat.size

    @property
    def dim(self) -> int:
        return self._flat.dim

    @property
    def total_weight(self) -> float:
        return self._flat.total_weight

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttachedTree({self._flat!r})"


class TreeAttachment:
    """Worker-side handle: the attached ``FlatTree`` plus its mappings.

    Keep this object alive as long as any array view derived from it is
    in use; ``close()`` unmaps (never unlinks). A close attempted while
    numpy views are still exported raises ``BufferError`` inside mmap —
    swallowed here, because an unmapped-late segment is a bounded leak
    while an unmapped-early one is a crash.
    """

    def __init__(
        self,
        manifest: TreeManifest,
        flat: FlatTree,
        segments: dict[str, shared_memory.SharedMemory],
    ) -> None:
        self.manifest = manifest
        self.flat = flat
        self.tree = AttachedTree(flat)
        self._segments = segments
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:
                pass


def publish_flat_tree(
    flat: FlatTree,
    generation: str | None = None,
    model_sha256: str = "",
    build: dict | None = None,
    extras: dict | None = None,
) -> PublishedTree:
    """Copy a ``FlatTree``'s arrays into fresh shared segments.

    One segment per array, named ``<generation>-<field>``. The single
    copy here is the last one: every attacher reads these pages
    directly.
    """
    generation = generation if generation is not None else new_generation_id()
    segments: dict[str, shared_memory.SharedMemory] = {}
    specs: dict[str, SegmentSpec] = {}
    try:
        for name in ARRAY_FIELDS:
            array = getattr(flat, name)
            if array is None:
                continue
            array = np.ascontiguousarray(array)
            segment_name = f"{generation}-{name}"
            segment = shared_memory.SharedMemory(
                create=True, size=max(array.nbytes, 1), name=segment_name
            )
            segments[name] = segment
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            specs[name] = SegmentSpec(
                segment=segment_name, dtype=array.dtype.str, shape=array.shape
            )
    except BaseException:
        for segment in segments.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        raise
    manifest = TreeManifest(
        generation=generation,
        segments=specs,
        model_sha256=model_sha256,
        build=dict(build or {}),
        extras=dict(extras or {}),
    )
    return PublishedTree(manifest, segments)


def attach_flat_tree(manifest: TreeManifest | Path | str) -> TreeAttachment:
    """Reconstruct a read-only ``FlatTree`` from a published generation.

    Accepts a manifest object or a path to a manifest file. Raises
    :class:`ShmAttachError` when any named segment no longer exists
    (stale manifest / retired generation) or is smaller than its
    declared shape — never a silent short read.
    """
    if not isinstance(manifest, TreeManifest):
        manifest = TreeManifest.load(manifest)
    segments: dict[str, shared_memory.SharedMemory] = {}
    arrays: dict[str, np.ndarray | None] = {}
    try:
        for name, spec in manifest.segments.items():
            try:
                segment = _open_segment(spec.segment)
            except FileNotFoundError:
                raise ShmAttachError(
                    f"segment {spec.segment!r} for array {name!r} does not "
                    f"exist — generation {manifest.generation!r} was retired "
                    "or never published (stale manifest)"
                ) from None
            segments[name] = segment
            if segment.size < spec.nbytes:
                raise ShmAttachError(
                    f"segment {spec.segment!r} holds {segment.size} bytes but "
                    f"array {name!r} needs {spec.nbytes} — manifest and "
                    "segments are from different generations"
                )
            view = np.ndarray(spec.shape, dtype=spec.dtype, buffer=segment.buf)
            view.flags.writeable = False
            arrays[name] = view
    except BaseException:
        for segment in segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover
                pass
        raise
    flat = FlatTree(
        points=arrays["points"],
        lo=arrays["lo"],
        hi=arrays["hi"],
        count=arrays["count"],
        start=arrays["start"],
        end=arrays["end"],
        left=arrays["left"],
        right=arrays["right"],
        node_weight=arrays["node_weight"],
        point_weights=arrays.get("point_weights"),
    )
    return TreeAttachment(manifest, flat, segments)
