"""Spatial indexing: the k-d tree substrate tKDC traverses.

The tree is a count/bounding-box augmented k-d tree (the paper's Section
3.1, following Gray & Moore 2003 and Deng & Moore's multi-resolution
trees): every node records the exact number of points below it and a
*tight* bounding box of those points, which together bound the node's
total kernel density contribution at any query.
"""

from repro.index.balltree import BallNode, BallTree
from repro.index.boxes import box_kernel_bounds, max_sq_dist, min_sq_dist
from repro.index.flat import FlatTree, flatten_kdtree, pair_box_bounds
from repro.index.knn import k_nearest, k_nearest_all
from repro.index.kdtree import KDTree, Node
from repro.index.splitting import SPLIT_RULES, median_split, trimmed_midpoint_split
from repro.index.traversal import points_within_radius, sum_kernel_within_radius

__all__ = [
    "KDTree",
    "Node",
    "FlatTree",
    "flatten_kdtree",
    "pair_box_bounds",
    "BallTree",
    "BallNode",
    "k_nearest",
    "k_nearest_all",
    "box_kernel_bounds",
    "min_sq_dist",
    "max_sq_dist",
    "median_split",
    "trimmed_midpoint_split",
    "SPLIT_RULES",
    "points_within_radius",
    "sum_kernel_within_radius",
]
