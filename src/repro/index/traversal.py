"""Generic k-d tree traversals: range queries and radial kernel sums.

These are the substrate for the ``rkde`` baseline (paper Table 2 and
Figure 13), which sums kernel contributions only from points within a
fixed radius of the query.
"""

from __future__ import annotations

import numpy as np

from repro.index.boxes import min_sq_dist
from repro.index.kdtree import KDTree
from repro.kernels.base import Kernel


def points_within_radius(tree: KDTree, query: np.ndarray, radius: float) -> np.ndarray:
    """Indices (into the original input) of points within ``radius``.

    Euclidean distance in the tree's coordinate space; the boundary is
    inclusive.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    query = np.asarray(query, dtype=np.float64)
    sq_radius = radius * radius
    hits: list[np.ndarray] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if min_sq_dist(query, node.lo, node.hi) > sq_radius:
            continue
        if node.is_leaf:
            pts = tree.leaf_points(node)
            diffs = pts - query
            sq = np.einsum("ij,ij->i", diffs, diffs)
            inside = sq <= sq_radius
            if np.any(inside):
                hits.append(tree.leaf_indices(node)[inside])
        else:
            left, right = node.children()
            stack.append(left)
            stack.append(right)
    if not hits:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(hits)


def sum_kernel_within_radius(
    tree: KDTree,
    kernel: Kernel,
    query: np.ndarray,
    radius: float,
) -> tuple[float, int]:
    """Total kernel value from points within ``radius`` of ``query``.

    Operates in bandwidth-scaled space (the tree must be built on scaled
    coordinates). Returns ``(total, kernel_evaluations)`` where the total
    is unaveraged (callers divide by the training-set size).
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    query = np.asarray(query, dtype=np.float64)
    sq_radius = radius * radius
    total = 0.0
    evaluations = 0
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if min_sq_dist(query, node.lo, node.hi) > sq_radius:
            continue
        if node.is_leaf:
            pts = tree.leaf_points(node)
            diffs = pts - query
            sq = np.einsum("ij,ij->i", diffs, diffs)
            inside = sq <= sq_radius
            n_inside = int(np.count_nonzero(inside))
            if n_inside:
                total += float(np.sum(kernel.value(sq[inside])))
                evaluations += n_inside
        else:
            left, right = node.children()
            stack.append(left)
            stack.append(right)
    return total, evaluations
