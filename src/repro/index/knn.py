"""k-nearest-neighbour search over the k-d tree.

Substrate for the alternative outlier detectors the paper discusses in
Section 5 (kNN-distance scoring, Local Outlier Factor) and for
neighbour-based bandwidth heuristics. Uses the classic best-first
branch-and-bound: a node is visited only if its box could contain a
point closer than the current k-th best.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.index.boxes import min_sq_dist
from repro.index.kdtree import KDTree


def k_nearest(
    tree: KDTree, query: np.ndarray, k: int, exclude_index: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` nearest indexed points to ``query``.

    Parameters
    ----------
    tree:
        The index (any coordinate space; distances are Euclidean in it).
    query:
        One point, shape ``(d,)``.
    k:
        Number of neighbours; must not exceed the available points.
    exclude_index:
        Original-input index to skip — pass the query's own index when
        querying with a training point so it is not its own neighbour.

    Returns
    -------
    ``(indices, sq_dists)`` sorted by ascending distance; ``indices``
    refer to the tree's original input order.
    """
    available = tree.size - (1 if exclude_index is not None else 0)
    if not 1 <= k <= available:
        raise ValueError(f"k must be in [1, {available}], got {k}")
    query = np.asarray(query, dtype=np.float64)

    # Max-heap of the best k (negated distance, index) seen so far.
    best: list[tuple[float, int]] = []
    counter = itertools.count()
    frontier: list[tuple[float, int, object]] = [
        (min_sq_dist(query, tree.root.lo, tree.root.hi), next(counter), tree.root)
    ]
    while frontier:
        node_dist, __, node = heapq.heappop(frontier)
        if len(best) == k and node_dist > -best[0][0]:
            break  # nothing closer remains anywhere in the frontier
        if node.is_leaf:  # type: ignore[union-attr]
            points = tree.leaf_points(node)  # type: ignore[arg-type]
            indices = tree.leaf_indices(node)  # type: ignore[arg-type]
            diffs = points - query
            sq = np.einsum("ij,ij->i", diffs, diffs)
            for point_index, point_sq in zip(indices, sq):
                if exclude_index is not None and point_index == exclude_index:
                    continue
                if len(best) < k:
                    heapq.heappush(best, (-point_sq, int(point_index)))
                elif point_sq < -best[0][0]:
                    heapq.heapreplace(best, (-point_sq, int(point_index)))
        else:
            for child in node.children():  # type: ignore[union-attr]
                child_dist = min_sq_dist(query, child.lo, child.hi)
                if len(best) < k or child_dist <= -best[0][0]:
                    heapq.heappush(frontier, (child_dist, next(counter), child))

    ordered = sorted((-neg_sq, index) for neg_sq, index in best)
    sq_dists = np.array([sq for sq, __ in ordered])
    indices = np.array([index for __, index in ordered], dtype=np.int64)
    return indices, sq_dists


def k_nearest_all(
    tree: KDTree, k: int, self_exclude: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """k-NN for every indexed point against the rest of the index.

    Returns ``(indices, sq_dists)`` of shapes ``(n, k)`` in the tree's
    original input order. ``self_exclude`` skips each point's own entry
    (the usual convention for outlier scoring).
    """
    n = tree.size
    all_indices = np.empty((n, k), dtype=np.int64)
    all_sq = np.empty((n, k))
    # Iterate in permuted order for locality; write to original slots.
    for slot in range(n):
        original = int(tree.indices[slot])
        neighbour_idx, neighbour_sq = k_nearest(
            tree, tree.points[slot], k,
            exclude_index=original if self_exclude else None,
        )
        all_indices[original] = neighbour_idx
        all_sq[original] = neighbour_sq
    return all_indices, all_sq
