"""Distance computations between query points and axis-aligned boxes.

These implement the paper's Section 3.1 distance bounds: for a node with
bounding box ``[lo, hi]`` the smallest and largest distance vectors
``d_min, d_max`` from a query to any point in the box give, via kernel
monotonicity, upper and lower bounds on the node's density contribution
(Equation 6). All computations operate in bandwidth-scaled space where
the kernel is a radial profile, so only squared Euclidean distances are
needed.
"""

from __future__ import annotations

import numpy as np


def min_sq_dist(query: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Squared distance from ``query`` to the closest point of box [lo, hi].

    Zero when the query lies inside the box.
    """
    below = lo - query
    above = query - hi
    gaps = np.maximum(0.0, np.maximum(below, above))
    return float(gaps @ gaps)


def max_sq_dist(query: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Squared distance from ``query`` to the farthest point of box [lo, hi].

    Per dimension, the farthest coordinate is whichever box edge is
    farther from the query; the farthest box point is their combination
    (always a corner).
    """
    spans = np.maximum(np.abs(query - lo), np.abs(query - hi))
    return float(spans @ spans)


def min_sq_dists(queries: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorized :func:`min_sq_dist` for an ``(m, d)`` batch of queries."""
    gaps = np.maximum(0.0, np.maximum(lo - queries, queries - hi))
    return np.einsum("ij,ij->i", gaps, gaps)


def max_sq_dists(queries: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorized :func:`max_sq_dist` for an ``(m, d)`` batch of queries."""
    spans = np.maximum(np.abs(queries - lo), np.abs(queries - hi))
    return np.einsum("ij,ij->i", spans, spans)


def box_kernel_bounds(
    lo: np.ndarray,
    hi: np.ndarray,
    count: int,
    query: np.ndarray,
    kernel,
    inv_n: float,
) -> tuple[float, float]:
    """(lower, upper) kernel-density contribution of a box of points.

    The fused single-pass form of Equation 6 used by every traversal hot
    path: one numpy sweep computes both the min- and max-distance
    vectors, then two scalar kernel evaluations bound the contribution
    of ``count`` points.
    """
    below = lo - query
    above = query - hi
    gaps = np.maximum(np.maximum(below, above), 0.0)
    spans = np.maximum(np.abs(below), np.abs(above))
    weight = count * inv_n
    upper = weight * kernel.value_scalar(float(gaps @ gaps))
    lower = weight * kernel.value_scalar(float(spans @ spans))
    return lower, upper


def box_min_sq_dist(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> float:
    """Squared distance between the closest points of two boxes.

    Zero when the boxes overlap. Used by the dual-tree batch classifier,
    where a whole query box is bounded against a training box at once.
    """
    gaps = np.maximum(0.0, np.maximum(lo_a - hi_b, lo_b - hi_a))
    return float(gaps @ gaps)


def box_max_sq_dist(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> float:
    """Squared distance between the farthest points of two boxes.

    Per dimension the farthest pair is a corner of each box; the span is
    the larger of the two cross extents.
    """
    spans = np.maximum(np.abs(hi_a - lo_b), np.abs(hi_b - lo_a))
    return float(spans @ spans)


def tight_box(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The exact (tight) bounding box of a non-empty point set."""
    if points.shape[0] == 0:
        raise ValueError("cannot compute the bounding box of an empty point set")
    return points.min(axis=0), points.max(axis=0)
