"""Node splitting rules for k-d tree construction.

The paper (Section 3.7) found that splitting at the *trimmed midpoint*
``(x_(10) + x_(90)) / 2`` — the mean of the 10th and 90th percentiles
along the split axis — outperforms classic median splits for tKDC:
with a Gaussian kernel it matters more to isolate tight spatial regions
quickly than to keep the tree balanced. Both rules are provided, along
with two axis-selection policies (the paper's cycling default and a
widest-extent alternative).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: A split rule maps the coordinate values along the chosen axis to a
#: scalar split value. Points with ``coord < value`` go left.
SplitValueRule = Callable[[np.ndarray], float]


def median_split(coords: np.ndarray) -> float:
    """Classic balanced split at the median coordinate."""
    return float(np.median(coords))


def trimmed_midpoint_split(coords: np.ndarray) -> float:
    """The paper's equi-width split: midpoint of the 10th/90th percentiles."""
    p10, p90 = np.percentile(coords, [10.0, 90.0])
    return float(0.5 * (p10 + p90))


#: Registry used by :class:`repro.index.kdtree.KDTree` and the benchmarks.
SPLIT_RULES: dict[str, SplitValueRule] = {
    "median": median_split,
    "trimmed_midpoint": trimmed_midpoint_split,
}


def cycle_axis(depth: int, dim: int) -> int:
    """The paper's default axis policy: cycle dimensions by tree level."""
    return depth % dim


def widest_axis(lo: np.ndarray, hi: np.ndarray) -> int:
    """Alternative axis policy: split the dimension with the widest extent."""
    return int(np.argmax(hi - lo))
