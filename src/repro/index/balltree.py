"""Ball tree: the alternative spatial index family (paper Section 5).

Gray & Moore's density-bound framework works over any hierarchy that
can bound point-to-node distances; the literature uses both k-d trees
and ball trees ("Other efforts leverage k-d and ball trees to derive
density bounds"). This ball tree mirrors the :class:`~repro.index.kdtree.KDTree`
surface that :func:`repro.core.bounds.bound_density` consumes, so the
index family becomes an ablation knob:

- node region: a ball (centroid + covering radius) instead of a box;
- distance bounds: ``max(0, |q - c| - r)`` and ``|q - c| + r`` — O(d)
  like the box bounds, but typically looser in low dimensions and
  tighter when boxes elongate;
- construction: split along the widest coordinate at the median.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.kernels.base import Kernel

#: Default leaf size (matches the k-d tree default).
DEFAULT_LEAF_SIZE = 32


@dataclass
class BallNode:
    """One ball-tree node: a centroid, covering radius, and point slice."""

    center: np.ndarray
    radius: float
    start: int
    end: int
    depth: int
    left: Optional["BallNode"] = None
    right: Optional["BallNode"] = None

    @property
    def count(self) -> int:
        return self.end - self.start

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def children(self) -> tuple["BallNode", "BallNode"]:
        if self.is_leaf:
            raise ValueError("leaf nodes have no children")
        assert self.left is not None and self.right is not None
        return self.left, self.right


class BallTree:
    """Ball tree over a fixed point set, bound-compatible with KDTree.

    Provides ``size``, ``root``, ``leaf_points``, ``leaf_indices``, and
    ``node_bounds`` — everything the density-bounding traversal needs.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = DEFAULT_LEAF_SIZE) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("cannot build a BallTree over an empty point set")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = points.copy()
        self.indices = np.arange(points.shape[0])
        self.leaf_size = leaf_size
        self.root = self._build(0, points.shape[0], 0)

    @property
    def size(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    def leaf_points(self, node: BallNode) -> np.ndarray:
        return self.points[node.start : node.end]

    def leaf_indices(self, node: BallNode) -> np.ndarray:
        return self.indices[node.start : node.end]

    def iter_nodes(self) -> Iterator[BallNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]

    def leaves(self) -> Iterator[BallNode]:
        return (node for node in self.iter_nodes() if node.is_leaf)

    def node_bounds(
        self, node: BallNode, query: np.ndarray, kernel: Kernel, inv_n: float
    ) -> tuple[float, float]:
        """(lower, upper) kernel-density contribution of the node's ball."""
        offset = query - node.center
        center_dist = float(np.sqrt(offset @ offset))
        near = max(0.0, center_dist - node.radius)
        far = center_dist + node.radius
        weight = node.count * inv_n
        upper = weight * kernel.value_scalar(near * near)
        lower = weight * kernel.value_scalar(far * far)
        return lower, upper

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _make_node(self, start: int, end: int, depth: int) -> BallNode:
        slab = self.points[start:end]
        center = slab.mean(axis=0)
        radius = float(np.sqrt(np.max(np.sum((slab - center) ** 2, axis=1))))
        return BallNode(center=center, radius=radius, start=start, end=end, depth=depth)

    def _build(self, start: int, end: int, depth: int) -> BallNode:
        node = self._make_node(start, end, depth)
        if node.count <= self.leaf_size:
            return node
        slab = self.points[start:end]
        spreads = slab.max(axis=0) - slab.min(axis=0)
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0.0:
            return node  # all points identical: stays a leaf
        coords = slab[:, axis]
        order = np.argsort(coords, kind="stable")
        self.points[start:end] = slab[order]
        self.indices[start:end] = self.indices[start:end][order]
        mid = start + node.count // 2
        node.left = self._build(start, mid, depth + 1)
        node.right = self._build(mid, end, depth + 1)
        return node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BallTree(n={self.size}, d={self.dim}, leaf_size={self.leaf_size})"
