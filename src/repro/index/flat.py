"""Flat structure-of-arrays view of a k-d tree (batch-traversal substrate).

The pointer-based :class:`~repro.index.kdtree.KDTree` is convenient to
build and debug, but walking ``Node`` dataclasses one attribute access
at a time is exactly the interpreter overhead the batched traversal
engine (:mod:`repro.core.batch_bounds`) is built to avoid. A
:class:`FlatTree` stores every per-node quantity the traversal needs in
contiguous numpy arrays indexed by node id, so bounding a whole block of
(query, node) pairs is a handful of vectorized sweeps instead of a
Python loop.

Node ids are assigned in depth-first pre-order: the root is node 0 and
every internal node's children have larger ids. Leaves are marked by a
``left`` child id of ``-1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Child-index sentinel marking a leaf node.
NO_CHILD = -1


@dataclass(frozen=True)
class FlatTree:
    """Structure-of-arrays snapshot of a k-d tree.

    All arrays are indexed by node id (pre-order, root = 0). ``points``
    is the tree's permuted point array, shared (not copied), so a leaf's
    points are the contiguous slice ``points[start[i]:end[i]]``.
    """

    points: np.ndarray  #: (n, d) permuted training points (shared).
    lo: np.ndarray  #: (m, d) per-node tight box lower corners.
    hi: np.ndarray  #: (m, d) per-node tight box upper corners.
    count: np.ndarray  #: (m,) number of points under each node.
    start: np.ndarray  #: (m,) slice starts into ``points``.
    end: np.ndarray  #: (m,) slice ends into ``points``.
    left: np.ndarray  #: (m,) left-child node ids (``NO_CHILD`` = leaf).
    right: np.ndarray  #: (m,) right-child node ids (``NO_CHILD`` = leaf).
    #: (m,) float mass under each node; equals ``count`` for unweighted
    #: trees. Weighted coreset trees (see :mod:`repro.coresets`) store
    #: the per-node weight sums here so the traversal bounds the
    #: weighted KDE ``(1/W) sum w_i K``.
    node_weight: np.ndarray
    #: (n,) permuted per-point weights, or ``None`` for unweighted trees.
    point_weights: np.ndarray | None

    @property
    def n_nodes(self) -> int:
        """Total number of tree nodes."""
        return self.count.shape[0]

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self.points.shape[0]

    @property
    def total_weight(self) -> float:
        """Total point mass ``W`` (equals ``size`` for unweighted trees)."""
        return float(self.node_weight[0])

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1]

    @property
    def is_leaf(self) -> np.ndarray:
        """Boolean leaf mask over node ids."""
        return self.left == NO_CHILD

    def leaf_points(self, node_id: int) -> np.ndarray:
        """The contiguous point slice owned by leaf ``node_id``."""
        return self.points[self.start[node_id] : self.end[node_id]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlatTree(n={self.size}, d={self.dim}, nodes={self.n_nodes})"


def flatten_kdtree(tree) -> FlatTree:
    """Flatten a :class:`~repro.index.kdtree.KDTree` into a :class:`FlatTree`.

    One pass assigns pre-order ids, a second fills the arrays. The
    point array is shared with the source tree (it is never mutated
    after construction).
    """
    nodes = list(tree.iter_nodes())
    ids = {id(node): i for i, node in enumerate(nodes)}
    m = len(nodes)
    d = tree.dim

    lo = np.empty((m, d), dtype=np.float64)
    hi = np.empty((m, d), dtype=np.float64)
    count = np.empty(m, dtype=np.int64)
    start = np.empty(m, dtype=np.int64)
    end = np.empty(m, dtype=np.int64)
    left = np.full(m, NO_CHILD, dtype=np.int64)
    right = np.full(m, NO_CHILD, dtype=np.int64)

    for i, node in enumerate(nodes):
        lo[i] = node.lo
        hi[i] = node.hi
        count[i] = node.count
        start[i] = node.start
        end[i] = node.end
        if not node.is_leaf:
            left[i] = ids[id(node.left)]
            right[i] = ids[id(node.right)]

    point_weights = getattr(tree, "point_weights", None)
    if point_weights is None:
        node_weight = count.astype(np.float64)
    else:
        prefix = np.concatenate(([0.0], np.cumsum(point_weights)))
        node_weight = prefix[end] - prefix[start]

    return FlatTree(
        points=tree.points, lo=lo, hi=hi, count=count,
        start=start, end=end, left=left, right=right,
        node_weight=node_weight, point_weights=point_weights,
    )


def pair_box_bounds(
    flat: FlatTree,
    node_ids: np.ndarray,
    queries: np.ndarray,
    kernel,
    inv_n: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Equation 6 bounds for aligned (query, node) pairs.

    ``node_ids`` has shape ``(p,)`` and ``queries`` shape ``(p, d)``;
    pair ``i`` bounds the density contribution of node ``node_ids[i]``
    at ``queries[i]``. One numpy sweep computes the min- and
    max-distance vectors of every pair (the batched analogue of
    :func:`repro.index.boxes.box_kernel_bounds`), then two vectorized
    kernel profile calls bound all contributions at once.
    """
    below = flat.lo[node_ids] - queries
    above = queries - flat.hi[node_ids]
    gaps = np.maximum(np.maximum(below, above), 0.0)
    spans = np.maximum(np.abs(below), np.abs(above))
    weight = flat.node_weight[node_ids] * inv_n
    upper = weight * kernel.value(np.einsum("ij,ij->i", gaps, gaps))
    lower = weight * kernel.value(np.einsum("ij,ij->i", spans, spans))
    return lower, upper
