"""Count- and bounding-box-augmented k-d tree (paper Section 3.1).

Construction permutes the input points into a contiguous array so that
every node owns a slice ``points[start:end]``; leaves can therefore be
evaluated with a single vectorized kernel call. Every node stores its
exact point count and a tight bounding box, the two quantities the
density-bounding traversal needs (Equation 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.index.boxes import box_kernel_bounds
from repro.index.splitting import SPLIT_RULES, cycle_axis, widest_axis

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.index.flat import FlatTree

#: Default number of points below which a node becomes a leaf.
DEFAULT_LEAF_SIZE = 32


@dataclass
class Node:
    """One k-d tree node: a slice of points, its count, and a tight box."""

    lo: np.ndarray
    hi: np.ndarray
    start: int
    end: int
    depth: int
    split_dim: int = -1
    split_value: float = float("nan")
    left: Optional["Node"] = None
    right: Optional["Node"] = None

    @property
    def count(self) -> int:
        """Number of points under this node."""
        return self.end - self.start

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def children(self) -> tuple["Node", "Node"]:
        """The two children of an internal node."""
        if self.is_leaf:
            raise ValueError("leaf nodes have no children")
        assert self.left is not None and self.right is not None
        return self.left, self.right


@dataclass
class _BuildTask:
    """Pending construction work: materialize children for ``node``."""

    node: Node
    depth: int = field(default=0)


class KDTree:
    """k-d tree over a fixed point set.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``. A copy is made and permuted in place;
        the original array is not modified.
    leaf_size:
        Maximum number of points in a leaf.
    split_rule:
        ``"trimmed_midpoint"`` (the paper's equi-width rule, default) or
        ``"median"``.
    axis_rule:
        ``"cycle"`` (the paper's default: rotate through dimensions per
        level) or ``"widest"`` (split the widest box extent).
    weights:
        Optional strictly positive per-point weights of shape ``(n,)``.
        When given, the densities bounded over this tree are the
        *weighted* KDE ``f(x) = (1/W) sum_i w_i K(x - x_i)`` with
        ``W = sum_i w_i`` — the form coreset compression produces
        (:mod:`repro.coresets`). ``None`` (default) is the ordinary
        unweighted tree with identical numerics to before.
    """

    def __init__(
        self,
        points: np.ndarray,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        split_rule: str = "trimmed_midpoint",
        axis_rule: str = "cycle",
        weights: np.ndarray | None = None,
    ) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("cannot build a KDTree over an empty point set")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if split_rule not in SPLIT_RULES:
            raise ValueError(
                f"unknown split_rule {split_rule!r}; choose from {sorted(SPLIT_RULES)}"
            )
        if axis_rule not in ("cycle", "widest"):
            raise ValueError(f"unknown axis_rule {axis_rule!r}; choose 'cycle' or 'widest'")

        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64).reshape(-1)
            if weights.shape[0] != points.shape[0]:
                raise ValueError(
                    f"weights length {weights.shape[0]} does not match "
                    f"point count {points.shape[0]}"
                )
            if not np.all(weights > 0):
                raise ValueError("all point weights must be strictly positive")

        self.points = points.copy()
        self.indices = np.arange(points.shape[0])
        self.point_weights = None if weights is None else weights.copy()
        self.leaf_size = leaf_size
        self.split_rule = split_rule
        self.axis_rule = axis_rule
        self._split_value = SPLIT_RULES[split_rule]
        self._flat: "FlatTree | None" = None
        self.root = self._build()
        # Prefix sums over the permuted weights: any node's mass is an
        # O(1) slice difference, so ``Node`` itself stays weight-free.
        self._weight_prefix = (
            None
            if self.point_weights is None
            else np.concatenate(([0.0], np.cumsum(self.point_weights)))
        )

    @property
    def size(self) -> int:
        """Number of indexed points."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1]

    @property
    def total_weight(self) -> float:
        """Total point mass ``W`` (equals ``size`` for unweighted trees)."""
        if self._weight_prefix is None:
            return float(self.size)
        return float(self._weight_prefix[-1])

    def node_weight(self, node: Node) -> float:
        """Mass under ``node`` (equals ``node.count`` when unweighted)."""
        if self._weight_prefix is None:
            return float(node.count)
        return float(self._weight_prefix[node.end] - self._weight_prefix[node.start])

    def leaf_points(self, node: Node) -> np.ndarray:
        """The contiguous point slice owned by ``node``."""
        return self.points[node.start : node.end]

    def leaf_indices(self, node: Node) -> np.ndarray:
        """Original input indices of the points owned by ``node``."""
        return self.indices[node.start : node.end]

    def node_indices(self, node: Node) -> np.ndarray:
        """Original input indices of every point under ``node``.

        Works for internal nodes as well as leaves (each node owns a
        contiguous slice of the permuted point array).
        """
        return self.indices[node.start : node.end]

    def node_bounds(self, node: Node, query, kernel, inv_n: float) -> tuple[float, float]:
        """(lower, upper) density contribution of ``node`` at ``query``.

        The index-family hook the density-bounding traversal dispatches
        through (the ball tree provides its own); boxes use the fused
        Equation 6 helper. Weighted trees substitute the node's mass for
        its count (``inv_n`` is then ``1 / total_weight``).
        """
        weight = node.count if self._weight_prefix is None else self.node_weight(node)
        return box_kernel_bounds(node.lo, node.hi, weight, query, kernel, inv_n)

    def flatten(self) -> "FlatTree":
        """The structure-of-arrays view consumed by the batch engine.

        Built lazily on first use and cached — the tree is immutable
        after construction, so the snapshot never goes stale. See
        :mod:`repro.index.flat`.
        """
        if self._flat is None:
            from repro.index.flat import flatten_kdtree

            self._flat = flatten_kdtree(self)
        return self._flat

    def iter_nodes(self) -> Iterator[Node]:
        """Yield every node in depth-first (pre-order) order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]

    def leaves(self) -> Iterator[Node]:
        """Yield every leaf node."""
        return (node for node in self.iter_nodes() if node.is_leaf)

    def depth(self) -> int:
        """Maximum leaf depth (root has depth 0)."""
        return max(node.depth for node in self.leaves())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _make_node(self, start: int, end: int, depth: int) -> Node:
        slab = self.points[start:end]
        return Node(lo=slab.min(axis=0), hi=slab.max(axis=0), start=start, end=end, depth=depth)

    def _build(self) -> Node:
        root = self._make_node(0, self.size, depth=0)
        pending = [_BuildTask(root, depth=0)]
        while pending:
            task = pending.pop()
            node = task.node
            if node.count <= self.leaf_size:
                continue
            split = self._choose_split(node, task.depth)
            if split is None:
                continue  # all points identical: stays a leaf
            axis, value, mid = split
            node.split_dim = axis
            node.split_value = value
            node.left = self._make_node(node.start, mid, node.depth + 1)
            node.right = self._make_node(mid, node.end, node.depth + 1)
            pending.append(_BuildTask(node.left, task.depth + 1))
            pending.append(_BuildTask(node.right, task.depth + 1))
        return root

    def _choose_split(self, node: Node, depth: int) -> tuple[int, float, int] | None:
        """Pick a (axis, value, partition point) that splits ``node``.

        Tries the configured axis first, then every other axis, falling
        back from the configured split value to the median when a value
        fails to separate the points. Returns ``None`` only when every
        point in the node is identical.
        """
        dim = self.dim
        if self.axis_rule == "cycle":
            first = cycle_axis(depth, dim)
        else:
            first = widest_axis(node.lo, node.hi)
        for offset in range(dim):
            axis = (first + offset) % dim
            if node.hi[axis] <= node.lo[axis]:
                continue  # degenerate extent on this axis
            coords = self.points[node.start : node.end, axis]
            for rule in (self._split_value, SPLIT_RULES["median"]):
                value = rule(coords)
                mid = self._partition(node.start, node.end, axis, value)
                if node.start < mid < node.end:
                    return axis, value, mid
            # Last resort on this axis: split strictly below the max so
            # both sides are non-empty even under extreme skew.
            value = float(node.hi[axis])
            mid = self._partition(node.start, node.end, axis, value)
            if node.start < mid < node.end:
                return axis, value, mid
        return None

    def _partition(self, start: int, end: int, axis: int, value: float) -> int:
        """Permute ``points[start:end]`` so coords < value come first.

        Returns the boundary index. Keeps ``points`` and ``indices``
        permutations in sync.
        """
        goes_left = self.points[start:end, axis] < value
        # O(m) two-block permutation: both blocks keep their original
        # relative order, exactly like the stable argsort this replaces
        # but without the O(m log m) sort.
        order = np.concatenate(
            (np.flatnonzero(goes_left), np.flatnonzero(~goes_left))
        )
        self.points[start:end] = self.points[start:end][order]
        self.indices[start:end] = self.indices[start:end][order]
        if self.point_weights is not None:
            self.point_weights[start:end] = self.point_weights[start:end][order]
        return start + int(np.count_nonzero(goes_left))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KDTree(n={self.size}, d={self.dim}, leaf_size={self.leaf_size}, "
            f"split={self.split_rule!r})"
        )
