"""Command-line interface: run any paper experiment or a quick demo.

Usage examples::

    python -m repro list
    python -m repro run fig7 --n 4000
    python -m repro run fig9 --seed 1 --save
    python -m repro demo
    python -m repro explain queries.csv --model model.tkdc
    python -m repro metrics-dump --model model.tkdc --queries queries.csv
    python -m repro bench run --suite smoke
    python -m repro bench report smoke-a smoke-b --format table
"""

from __future__ import annotations

import argparse
import inspect
import sys

import numpy as np

from repro.bench.charts import ascii_bar_chart, ascii_chart
from repro.bench.experiments import EXPERIMENTS
from repro.bench.reporting import save_results


def _add_run_parser(subparsers: argparse._SubParsersAction) -> None:
    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--n", type=int, default=None, help="override workload size")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--p", type=float, default=None, help="override quantile p")
    run.add_argument("--save", action="store_true", help="save rows under results/")
    run.add_argument("--svg", action="store_true",
                     help="also write the figure as results/<name>.svg")


def _add_fit_parser(subparsers: argparse._SubParsersAction) -> None:
    fit = subparsers.add_parser(
        "fit", help="train a classifier on a CSV dataset and save the model"
    )
    fit.add_argument("data", help="CSV file of training points (rows = points)")
    fit.add_argument("--model", required=True, help="output model path (.tkdc)")
    fit.add_argument("--p", type=float, default=0.01)
    fit.add_argument("--epsilon", type=float, default=0.01)
    fit.add_argument("--kernel", default="gaussian")
    fit.add_argument("--bandwidth-scale", type=float, default=1.0)
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument("--header", action="store_true", help="CSV has a header row")
    fit.add_argument("--coreset", choices=["uniform", "merge-reduce"], default=None,
                     help="compress the training set with this coreset "
                          "construction before indexing")
    fit.add_argument("--coreset-fraction", type=float, default=0.05,
                     help="target coreset size as a fraction of n "
                          "(with --coreset; default 0.05)")


def _add_classify_parser(subparsers: argparse._SubParsersAction) -> None:
    classify = subparsers.add_parser(
        "classify", help="classify a CSV of query points with a saved model"
    )
    classify.add_argument("queries", help="CSV file of query points")
    classify.add_argument("--model", required=True, help="model saved by 'tkdc fit'")
    classify.add_argument("--output", default=None,
                          help="write labels CSV here (default: stdout)")
    classify.add_argument("--header", action="store_true", help="CSV has a header row")
    classify.add_argument("--densities", action="store_true",
                          help="also compute eps-precise density estimates")
    classify.add_argument("--max-expansions", type=int, default=None,
                          help="anytime budget: per-query cap on traversal node "
                               "expansions; capped queries return best-effort "
                               "labels flagged as degraded")
    classify.add_argument("--on-invalid", choices=["raise", "flag"], default=None,
                          help="non-finite query rows: reject the whole batch "
                               "('raise', the model default) or label them "
                               "UNCERTAIN ('flag')")


def _add_serve_parser(subparsers: argparse._SubParsersAction) -> None:
    serve = subparsers.add_parser(
        "serve",
        help="run a saved model as a resilient long-running HTTP daemon",
        description="Serve a .tkdc model over HTTP with admission control, "
                    "deadline-aware budgets, a circuit breaker, and verified "
                    "hot reload (see docs/serving.md).",
    )
    serve.add_argument("--model", required=True, help="model saved by 'tkdc fit'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7317,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--max-concurrency", type=int, default=4,
                       help="requests classifying simultaneously")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="waiting slots beyond --max-concurrency; "
                            "arrivals past that are shed with a 429")
    serve.add_argument("--default-deadline-ms", type=float, default=1000.0,
                       help="deadline granted to requests that name none")
    serve.add_argument("--max-rows", type=int, default=4096,
                       help="per-request query-row ceiling (413 beyond)")
    serve.add_argument("--watchdog-grace", type=float, default=2.0,
                       help="seconds past the deadline before a wedged "
                            "handler is abandoned with a 503")
    serve.add_argument("--breaker-threshold", type=float, default=0.5,
                       help="failure rate (errors + exact-O(n) fallbacks) "
                            "that opens the circuit breaker")
    serve.add_argument("--breaker-cooldown", type=float, default=5.0,
                       help="seconds the breaker stays open before "
                            "half-open recovery probes")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds SIGTERM waits for in-flight requests")
    serve.add_argument("--workers", type=int, default=1,
                       help="serving processes: 1 (default) is the in-process "
                            "daemon; N>1 pre-forks N workers behind a router "
                            "sharing the model over shared memory "
                            "(Linux; see docs/serving.md)")
    serve.add_argument("--streaming", action="store_true",
                       help="enable POST /ingest with drift-triggered "
                            "background refit and verified hot swap "
                            "(see docs/streaming.md)")
    serve.add_argument("--wal-dir", default=None,
                       help="directory for the ingest write-ahead log; "
                            "makes /ingest durable and enables crash "
                            "recovery (requires --streaming)")
    serve.add_argument("--fsync-policy", default="always",
                       choices=("always", "interval", "off"),
                       help="WAL durability point: 'always' fsyncs before "
                            "each ack, 'interval' batches fsyncs, 'off' "
                            "trusts the page cache")
    serve.add_argument("--fsync-interval", type=float, default=0.05,
                       help="seconds between fsyncs under "
                            "--fsync-policy=interval")
    serve.add_argument("--adaptive-window", action="store_true",
                       help="derive the drift-check window from the "
                            "observed ingest cadence (EWMA) instead of "
                            "the fixed --drift-window")
    serve.add_argument("--drift-delta", type=float, default=0.01,
                       help="per-check false-trigger level of the drift CI")
    serve.add_argument("--drift-window", type=int, default=256,
                       help="fresh points per drift check")
    serve.add_argument("--drift-hysteresis", type=int, default=2,
                       help="consecutive violating checks before a refit")
    serve.add_argument("--drift-check-interval", type=float, default=1.0,
                       help="seconds between background drift checks")
    serve.add_argument("--min-refit-interval", type=float, default=30.0,
                       help="seconds between drift-triggered refits")
    serve.add_argument("--refit-deadline", type=float, default=120.0,
                       help="per-attempt deadline of the supervised refit")
    serve.add_argument("--refit-sample-cap", type=int, default=20000,
                       help="max training rows materialized per refit")
    serve.add_argument("--sketch-capacity", type=int, default=4096,
                       help="weighted points kept by the stream sketch")


def _add_serve_worker_parser(subparsers: argparse._SubParsersAction) -> None:
    worker = subparsers.add_parser(
        "serve-worker",
        help=argparse.SUPPRESS,
        description="INTERNAL: one fleet worker process, spawned by "
                    "'tkdc serve --workers N'. Attaches the shared-memory "
                    "model plane named by --manifest and serves on an "
                    "ephemeral port announced on stdout.",
    )
    worker.add_argument("--manifest", required=True,
                        help="shared-memory model-plane manifest (JSON)")
    worker.add_argument("--config-json", default="",
                        help="ServeConfig field overrides as a JSON object")
    worker.add_argument("--worker-index", type=int, default=0)


def _add_explain_parser(subparsers: argparse._SubParsersAction) -> None:
    explain = subparsers.add_parser(
        "explain",
        help="per-query pruning audit: why each query got its label",
        description="Classify a CSV of query points with tracing enabled "
                    "and render, per query, the (f_l, f_u) bound trajectory "
                    "against the threshold band and the rule that terminated "
                    "the traversal (see docs/observability.md).",
    )
    explain.add_argument("queries", help="CSV file of query points")
    explain.add_argument("--model", required=True, help="model saved by 'tkdc fit'")
    explain.add_argument("--engine",
                         choices=["batch", "per-query", "hbe", "auto"],
                         default=None,
                         help="traversal engine (default: the model's choice)")
    explain.add_argument("--limit", type=int, default=10,
                         help="queries rendered in full (0 = all)")
    explain.add_argument("--max-steps", type=int, default=12,
                         help="trajectory steps shown per query before elision")
    explain.add_argument("--header", action="store_true", help="CSV has a header row")
    explain.add_argument("--jsonl", default=None,
                         help="also write every trace as JSONL to this path "
                              "(size-bounded sink)")


def _add_metrics_dump_parser(subparsers: argparse._SubParsersAction) -> None:
    dump = subparsers.add_parser(
        "metrics-dump",
        help="print the process-global metrics registry as Prometheus text",
        description="Without arguments, prints the registered metric families "
                    "(zeros in a fresh process). With --model and --queries, "
                    "classifies that workload first so the dump carries real "
                    "traversal counters and histograms.",
    )
    dump.add_argument("--model", default=None, help="model saved by 'tkdc fit'")
    dump.add_argument("--queries", default=None,
                      help="CSV of query points to classify before dumping")
    dump.add_argument("--engine",
                      choices=["batch", "per-query", "hbe", "auto"],
                      default=None)
    dump.add_argument("--header", action="store_true", help="CSV has a header row")


def _add_diagnose_parser(subparsers: argparse._SubParsersAction) -> None:
    diagnose = subparsers.add_parser(
        "diagnose", help="per-query cost profile of a saved model on a CSV workload"
    )
    diagnose.add_argument("queries", help="CSV file of query points")
    diagnose.add_argument("--model", required=True, help="model saved by 'tkdc fit'")
    diagnose.add_argument("--header", action="store_true", help="CSV has a header row")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tkdc",
        description="tKDC reproduction: thresholded kernel density classification",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    subparsers.add_parser("demo", help="run the 60-second quickstart demo")
    _add_run_parser(subparsers)
    _add_fit_parser(subparsers)
    _add_classify_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_serve_worker_parser(subparsers)
    _add_diagnose_parser(subparsers)
    _add_explain_parser(subparsers)
    _add_metrics_dump_parser(subparsers)
    # The bench tree lives with the orchestrator package it drives.
    from repro.orchestrator.cli import add_bench_parser

    add_bench_parser(subparsers)
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, fn in EXPERIMENTS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:20s} {summary}")
        return 0
    if args.command == "demo":
        _demo()
        return 0
    if args.command == "fit":
        return _fit(args)
    if args.command == "classify":
        return _classify(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "serve-worker":
        return _serve_worker(args)
    if args.command == "diagnose":
        return _diagnose(args)
    if args.command == "explain":
        return _explain(args)
    if args.command == "metrics-dump":
        return _metrics_dump(args)
    if args.command == "bench":
        from repro.orchestrator.cli import run_bench

        return run_bench(args)
    return _run(args)


def _serve(args: argparse.Namespace) -> int:
    import logging

    from repro.serve import ServeConfig
    from repro.serve.daemon import serve

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        default_deadline=args.default_deadline_ms / 1000.0,
        max_rows=args.max_rows,
        watchdog_grace=args.watchdog_grace,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        drain_timeout=args.drain_timeout,
        workers=args.workers,
    )
    stream_settings = None
    if args.streaming:
        from repro.streaming import StreamSettings

        stream_settings = StreamSettings(
            drift_delta=args.drift_delta,
            monitor_window=args.drift_window,
            hysteresis=args.drift_hysteresis,
            check_interval=args.drift_check_interval,
            min_refit_interval=args.min_refit_interval,
            refit_deadline=args.refit_deadline,
            refit_sample_cap=args.refit_sample_cap,
            sketch_capacity=args.sketch_capacity,
            fsync_policy=args.fsync_policy,
            fsync_interval=args.fsync_interval,
            adaptive_window=args.adaptive_window,
        )
    return serve(
        args.model, config,
        streaming=args.streaming, stream_settings=stream_settings,
        wal_dir=args.wal_dir,
    )


def _serve_worker(args: argparse.Namespace) -> int:
    import logging

    from repro.serve.worker import main as worker_main

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s worker %(name)s %(levelname)s %(message)s",
    )
    return worker_main(args)


def _explain(args: argparse.Namespace) -> int:
    from repro.io.datasets import import_csv
    from repro.io.models import load_model

    clf = load_model(args.model)
    queries = import_csv(args.queries, has_header=args.header)
    limit = args.limit if args.limit > 0 else queries.shape[0]
    if args.jsonl is None:
        print(clf.explain(queries, engine=args.engine,
                          limit=limit, max_steps=args.max_steps))
        return 0

    # With --jsonl, classify once and feed both the sink and the
    # rendering from the same recorder.
    from repro.obs.explain import explain_traces
    from repro.obs.trace import TraceSink

    __, recorder = clf.trace_classify(queries, engine=args.engine)
    with TraceSink(args.jsonl) as sink:
        sink.write_all(recorder.traces())
    threshold = clf.threshold.value
    band = (
        threshold * (1.0 - clf.config.epsilon),
        threshold * (1.0 + clf.config.epsilon),
    )
    print(explain_traces(recorder.traces(), thresholds=band,
                         limit=limit, max_steps=args.max_steps))
    print(f"wrote {len(recorder)} traces to {args.jsonl}", file=sys.stderr)
    return 0


def _metrics_dump(args: argparse.Namespace) -> int:
    import repro.obs.metrics  # noqa: F401  (registers the shared families)
    from repro.obs.registry import REGISTRY, render_prometheus

    if (args.model is None) != (args.queries is None):
        print("metrics-dump: --model and --queries go together",
              file=sys.stderr)
        return 2
    if args.model is not None:
        from repro.io.datasets import import_csv
        from repro.io.models import load_model

        clf = load_model(args.model)
        clf.classify(import_csv(args.queries, has_header=args.header),
                     engine=args.engine)
    sys.stdout.write(render_prometheus(REGISTRY))
    return 0


def _diagnose(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import profile_queries
    from repro.io.datasets import import_csv
    from repro.io.models import load_model

    clf = load_model(args.model)
    queries = import_csv(args.queries, has_header=args.header)
    profile = profile_queries(clf, queries)
    print(profile.summary())
    print(f"(training set size for reference: {clf.tree.size} kernels "
          "per exact query)")
    return 0


def _fit(args: argparse.Namespace) -> int:
    from repro import TKDCClassifier, TKDCConfig
    from repro.io.datasets import import_csv
    from repro.io.models import save_model

    data = import_csv(args.data, has_header=args.header)
    config = TKDCConfig(
        p=args.p, epsilon=args.epsilon, kernel=args.kernel,
        bandwidth_scale=args.bandwidth_scale, seed=args.seed,
        coreset=args.coreset, coreset_fraction=args.coreset_fraction,
    )
    clf = TKDCClassifier(config).fit(data)
    path = save_model(args.model, clf)
    low = int(np.count_nonzero(np.asarray(clf.training_labels_) == 0))
    print(f"fitted on {data.shape[0]} points (d={data.shape[1]}); "
          f"threshold t({args.p}) = {clf.threshold.value:.6g}; "
          f"{low} training points below threshold")
    if clf.coreset_ is not None:
        mode = "certified" if clf.certified else "best-effort"
        print(f"coreset: {clf.coreset_.method}, k={clf.coreset_.k} of "
              f"n={clf.coreset_.n} ({clf.coreset_.compression:.1%}), "
              f"eta={clf.eta:.4g} ({mode})")
    print(f"model saved to {path}")
    return 0


def _classify(args: argparse.Namespace) -> int:
    from repro.io.datasets import import_csv
    from repro.io.models import load_model

    clf = load_model(args.model)
    overrides: dict[str, object] = {}
    if args.max_expansions is not None:
        overrides["max_node_expansions"] = args.max_expansions
    if args.on_invalid is not None:
        overrides["query_policy"] = args.on_invalid
    if overrides:
        clf.config = clf.config.with_updates(**overrides)
    queries = import_csv(args.queries, has_header=args.header)
    result = clf.classify_detailed(queries)
    labels = np.array([int(label) for label in result.resolved_labels()])
    # The degraded column appears only when something actually degraded
    # (budget stop, guard fallback, or flagged-invalid input row).
    columns = ["label"]
    if args.densities:
        columns.append("density")
        densities = clf.estimate_density(queries)
    if result.any_degraded:
        columns.append("degraded")
    lines = [",".join(columns)] if len(columns) > 1 else ["label"]
    for i, label in enumerate(labels):
        row = [str(label)]
        if args.densities:
            row.append(f"{densities[i]:.8g}")
        if result.any_degraded:
            row.append(str(int(result.degraded[i])))
        lines.append(",".join(row))
    output = "\n".join(lines) + "\n"
    summary = f"({int(np.sum(labels == 0))} LOW"
    if result.any_degraded:
        summary += (f", {result.n_degraded} degraded, "
                    f"{int(np.count_nonzero(result.uncertain))} UNCERTAIN")
    summary += ")"
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(output)
        print(f"wrote {queries.shape[0]} labels to {args.output} {summary}")
    else:
        print(output, end="")
        if result.any_degraded:
            print(f"# {summary}", file=sys.stderr)
    return 0


def _run(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        fn = EXPERIMENTS[name]
        kwargs: dict[str, object] = {"seed": args.seed, "verbose": True}
        signature = inspect.signature(fn)
        if args.n is not None and "n" in signature.parameters:
            kwargs["n"] = args.n
        if args.p is not None and "p" in signature.parameters:
            kwargs["p"] = args.p
        rows = fn(**kwargs)  # type: ignore[arg-type]
        chart = _render_chart(name, rows)
        if chart:
            print()
            print(chart)
        if args.save:
            path = save_results(name, rows)
            print(f"saved {len(rows)} rows to {path}")
        if getattr(args, "svg", False):
            svg_path = _render_svg(name, rows)
            if svg_path:
                print(f"saved figure to {svg_path}")
    return 0


def _render_svg(name: str, rows: list[dict]) -> str | None:
    """Write the experiment's figure as results/<name>.svg when charted."""
    from repro.bench.svg import bar_chart_svg, line_chart_svg, save_svg

    if name in ("fig9", "fig10"):
        series = _sweep_series(rows, "n", "queries_per_s",
                               skip=lambda row: row["n"] == 0)
        svg = line_chart_svg(series, title=f"{name}: queries/s vs n",
                             x_label="n", y_label="queries/s",
                             logx=True, logy=True)
    elif name in ("fig11", "fig14"):
        series = _sweep_series(rows, "d", "queries_per_s")
        svg = line_chart_svg(series, title=f"{name}: queries/s vs dimension",
                             x_label="d", y_label="queries/s",
                             logx=True, logy=True)
    elif name == "fig13":
        series = _sweep_series(
            rows, "radius", "queries_per_s",
            skip=lambda row: not np.isfinite(float(row["radius"])),
        )
        svg = line_chart_svg(series, title="fig13: queries/s vs rkde radius",
                             x_label="radius (bandwidths)", y_label="queries/s",
                             logy=True)
    elif name == "fig15":
        series = _sweep_series(
            rows, "p", "queries_per_s",
            skip=lambda row: not np.isfinite(float(row["p"])),
        )
        svg = line_chart_svg(series, title="fig15: queries/s vs quantile p",
                             x_label="p", y_label="queries/s", logy=True)
    elif name in ("fig12", "fig16"):
        svg = bar_chart_svg(
            [str(row["variant"]) for row in rows],
            [float(row["points_per_s"]) for row in rows],
            title=f"{name}: throughput by variant", value_label=" pts/s",
            logscale=True,
        )
    elif name == "fig7":
        svg = bar_chart_svg(
            [f"{row['dataset']}-d{row['d']}/{row['algorithm']}" for row in rows],
            [float(row["throughput"]) for row in rows],
            title="fig7: amortized throughput", value_label=" pts/s",
            logscale=True,
        )
    else:
        return None
    return str(save_svg(f"results/{name}.svg", svg))


def _render_chart(name: str, rows: list[dict]) -> str | None:
    """Draw the experiment's figure as a terminal chart where one exists."""
    if name in ("fig9", "fig10"):
        series = _sweep_series(rows, "n", "queries_per_s",
                               skip=lambda row: row["n"] == 0)
        return ascii_chart(series, logx=True, logy=True,
                           title=f"{name}: queries/s vs n (log-log)")
    if name in ("fig11", "fig14"):
        series = _sweep_series(rows, "d", "queries_per_s")
        return ascii_chart(series, logx=True, logy=True,
                           title=f"{name}: queries/s vs dimension (log-log)")
    if name == "fig13":
        series = _sweep_series(
            rows, "radius", "queries_per_s",
            skip=lambda row: not np.isfinite(float(row["radius"])),
        )
        return ascii_chart(series, logy=True, title="fig13: queries/s vs rkde radius")
    if name == "fig15":
        series = _sweep_series(
            rows, "p", "queries_per_s",
            skip=lambda row: not np.isfinite(float(row["p"])),
        )
        return ascii_chart(series, logy=True, title="fig15: queries/s vs quantile p")
    if name in ("fig12", "fig16"):
        labels = [str(row["variant"]) for row in rows]
        values = [float(row["points_per_s"]) for row in rows]
        return (
            f"{name}: throughput by optimization variant (log bars)\n"
            + ascii_bar_chart(labels, values, logscale=True, unit=" pts/s")
        )
    if name == "fig7":
        labels = [f"{row['dataset']}-d{row['d']}/{row['algorithm']}" for row in rows]
        values = [float(row["throughput"]) for row in rows]
        return (
            "fig7: amortized throughput (log bars)\n"
            + ascii_bar_chart(labels, values, logscale=True, unit=" pts/s")
        )
    return None


def _sweep_series(
    rows: list[dict], x_key: str, y_key: str, skip=None
) -> dict[str, tuple[list[float], list[float]]]:
    """Group sweep rows into per-algorithm (xs, ys) series."""
    series: dict[str, tuple[list[float], list[float]]] = {}
    for row in rows:
        name = str(row.get("algorithm", "series"))
        if name.endswith("loglog_slope"):
            continue
        if skip is not None and skip(row):
            continue
        xs, ys = series.setdefault(name, ([], []))
        xs.append(float(row[x_key]))
        ys.append(float(row[y_key]))
    return series


def _demo() -> None:
    """Train tKDC on a bimodal sample and print the classified region."""
    from repro import TKDCClassifier, TKDCConfig
    from repro.analysis.contours import classification_mask, render_ascii
    from repro.datasets.generators import make_iris_like

    data = make_iris_like(4000, seed=0)
    clf = TKDCClassifier(TKDCConfig(p=0.2, seed=0)).fit(data)
    print(f"threshold t(p=0.2) = {clf.threshold.value:.4g}")
    print(f"kernel evaluations/query = {clf.stats.kernels_per_query:.1f} "
          f"(of {data.shape[0]} training points)")
    xlim = (float(data[:, 0].min()) - 0.3, float(data[:, 0].max()) + 0.3)
    ylim = (float(data[:, 1].min()) - 0.3, float(data[:, 1].max()) + 0.3)
    __, __, mask = classification_mask(clf.classify, xlim, ylim, 48, 24)
    print(render_ascii(mask))
    low = int(np.count_nonzero(np.asarray(clf.training_labels_) == 0))
    print(f"{low}/{data.shape[0]} training points classified LOW (target p=0.2)")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
