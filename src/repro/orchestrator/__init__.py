"""Experiment orchestrator: spec-driven trials, crash-resume, reports.

The benchmark scripts under ``benchmarks/`` each measure one workload
and overwrite one ``BENCH_*.json`` snapshot. This package is the layer
above them — the machinery that makes performance evidence
*longitudinal*:

- :mod:`repro.orchestrator.spec` — a declarative
  :class:`~repro.orchestrator.spec.ExperimentSpec` expands a scenario
  grid (dataset × n × d × engine × coreset × fault plan × seed) into
  deterministic, individually-seeded
  :class:`~repro.orchestrator.spec.Trial`\\ s, with named built-in
  suites (``smoke``, ``engines``, ``coreset``, ``full``);
- :mod:`repro.orchestrator.runner` — the one-code-path trial runner
  shared with the bench gate's smoke measurement;
- :mod:`repro.orchestrator.scheduler` — runs trials through the
  supervised-pool machinery with per-trial deadlines and crash
  isolation, journaling every trial so ``tkdc bench run --resume``
  after a ``kill -9`` completes exactly the missing trials;
- :mod:`repro.orchestrator.store` — an append-only on-disk results
  store under ``.repro-bench/``, every record keyed by build identity,
  trial seed, and config hash;
- :mod:`repro.orchestrator.report` — compares two named experiments
  with bootstrap confidence intervals and Mann–Whitney U significance
  tests, rendered as a console table, csv/json, or a static HTML page.

CLI entry points: ``tkdc bench run | report | list`` (see
``docs/benchmarking.md``).
"""

from repro.orchestrator.spec import ExperimentSpec, Trial, SUITES
from repro.orchestrator.store import ResultsStore
from repro.orchestrator.scheduler import RunSummary, SchedulerPolicy, TrialScheduler
from repro.orchestrator.report import ExperimentComparison, format_output, render_html

__all__ = [
    "ExperimentComparison",
    "ExperimentSpec",
    "ResultsStore",
    "RunSummary",
    "SchedulerPolicy",
    "SUITES",
    "Trial",
    "TrialScheduler",
    "format_output",
    "render_html",
]
