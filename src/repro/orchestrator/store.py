"""The results store: append-only trial records keyed by build identity.

Layout (under ``.repro-bench/`` at the repo root by default)::

    .repro-bench/
      experiments/<name>/
        spec.json       # the spec as first run (resume validates its hash)
        journal.log     # the scheduler's trial journal (resume authority)
        results.jsonl   # one record per completed/failed trial

Every record carries the ``build_info()`` identity already stamped into
every ``BENCH_*.json`` report, the trial's explicit seed, its config
hash, and the runner's wall/kernel/expansion metrics — which is what
lets ``tkdc bench report`` compare two experiments (or two builds of
the same suite) and lets the bench gate trust a store row only when its
build matches HEAD.

Appends go through :func:`repro.io.atomic.atomic_write_text` as a
read-merge-rewrite: records are merged *by trial id* (a re-run replaces
its predecessor, never duplicates it) and readers observe either the
old complete file or the new complete file, never a torn line. At
orchestrator scale — thousands of sub-kilobyte records, one rewrite per
scheduler round — the O(n) rewrite is noise next to a single trial's
fit; the journal, not this file, is the high-rate append path.
"""

from __future__ import annotations

import json
import platform
import re
import time
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.io.atomic import atomic_write_text
from repro.obs.buildinfo import build_info

#: Default store root, relative to the working directory (the repo root
#: in every documented flow).
DEFAULT_STORE_ROOT = Path(".repro-bench")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class StoreError(RuntimeError):
    """A results-store file is missing or damaged."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"bad experiment name {name!r}: use letters, digits, . _ -"
        )
    return name


def trial_record(
    experiment: str,
    trial: Mapping,
    status: str,
    metrics: Mapping | None = None,
    error: str | None = None,
) -> dict:
    """Assemble one store record from a trial and its outcome."""
    record = {
        "experiment": experiment,
        "trial_id": trial["trial_id"],
        "config_hash": trial["config_hash"],
        "scenario_key": trial["scenario_key"],
        "seed": trial["seed"],
        "config": {
            key: trial[key]
            for key in (
                "dataset", "n", "n_queries", "dim", "engine", "jobs",
                "coreset", "coreset_fraction", "fault_plan", "p", "epsilon",
            )
        },
        "status": status,
        "build": build_info(),
        "machine": platform.machine(),
        "recorded_at": time.time(),
    }
    if metrics is not None:
        record["metrics"] = dict(metrics)
    if error is not None:
        record["error"] = error
    return record


class ResultsStore:
    """On-disk store of experiment specs and trial records."""

    def __init__(self, root: Path | str = DEFAULT_STORE_ROOT) -> None:
        self.root = Path(root)

    # -- layout ------------------------------------------------------

    def experiment_dir(self, name: str) -> Path:
        return self.root / "experiments" / _check_name(name)

    def journal_path(self, name: str) -> Path:
        return self.experiment_dir(name) / "journal.log"

    def spec_path(self, name: str) -> Path:
        return self.experiment_dir(name) / "spec.json"

    def results_path(self, name: str) -> Path:
        return self.experiment_dir(name) / "results.jsonl"

    # -- specs -------------------------------------------------------

    def write_spec(self, name: str, spec_payload: Mapping) -> Path:
        return atomic_write_text(
            self.spec_path(name), json.dumps(spec_payload, indent=2) + "\n"
        )

    def read_spec(self, name: str) -> dict:
        path = self.spec_path(name)
        if not path.exists():
            raise StoreError(
                f"experiment {name!r} has no spec at {path} — was it ever run?"
            )
        return json.loads(path.read_text())

    # -- records -----------------------------------------------------

    def records(self, name: str) -> list[dict]:
        """Every stored record of one experiment (may be empty)."""
        path = self.results_path(name)
        if not path.exists():
            return []
        records = []
        for line_no, line in enumerate(path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                raise StoreError(
                    f"{path}:{line_no}: damaged record ({exc}) — the store "
                    "is written atomically, so this file was edited or the "
                    "filesystem lied; delete the experiment directory and "
                    "re-run"
                ) from exc
        return records

    def append_records(self, name: str, new_records: Iterable[Mapping]) -> Path:
        """Merge records in by trial id and rewrite atomically."""
        merged: dict[str, dict] = {
            record["trial_id"]: record for record in self.records(name)
        }
        for record in new_records:
            merged[record["trial_id"]] = dict(record)
        lines = [
            json.dumps(record, sort_keys=True) for record in merged.values()
        ]
        return atomic_write_text(
            self.results_path(name), "\n".join(lines) + "\n"
        )

    # -- queries -----------------------------------------------------

    def experiments(self) -> list[dict]:
        """Summaries of every experiment in the store, newest first."""
        base = self.root / "experiments"
        if not base.is_dir():
            return []
        summaries = []
        for directory in sorted(base.iterdir()):
            if not directory.is_dir():
                continue
            name = directory.name
            records = self.records(name) if self.results_path(name).exists() else []
            done = [r for r in records if r.get("status") == "done"]
            failed = [r for r in records if r.get("status") == "failed"]
            newest = max(
                (float(r.get("recorded_at", 0.0)) for r in records),
                default=0.0,
            )
            builds = sorted({
                r.get("build", {}).get("git", "unknown") for r in records
            })
            summaries.append({
                "experiment": name,
                "n_done": len(done),
                "n_failed": len(failed),
                "builds": builds,
                "recorded_at": newest,
                "has_spec": self.spec_path(name).exists(),
            })
        summaries.sort(key=lambda s: s["recorded_at"], reverse=True)
        return summaries

    def latest_experiment(
        self, matches: Callable[[list[dict]], bool] | None = None
    ) -> str | None:
        """Name of the newest experiment (optionally: whose records
        satisfy ``matches``); ``None`` when the store has none."""
        for summary in self.experiments():
            name = summary["experiment"]
            if matches is None or matches(self.records(name)):
                return name
        return None
