"""``tkdc bench``: the orchestrator's command-line surface.

Three subcommands over the experiment store:

- ``tkdc bench run`` — expand a suite or spec file into trials and run
  them under supervision; ``--resume <experiment>`` finishes a killed
  run by replaying its journal and re-running exactly the missing or
  failed trials.
- ``tkdc bench report`` — compare two named experiments scenario by
  scenario (bootstrap CI + Mann–Whitney U), as a console table, csv,
  json, or a self-contained HTML page.
- ``tkdc bench list`` — what the store holds, newest first.

Kept separate from :mod:`repro.cli` so importing the main CLI never
pays for numpy-heavy orchestrator modules until a bench command
actually runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.orchestrator.journal import JournalError
from repro.orchestrator.report import (
    DEFAULT_METRIC,
    ExperimentComparison,
    ReportError,
    format_output,
    render_html,
)
from repro.orchestrator.scheduler import (
    SchedulerError,
    SchedulerPolicy,
    TrialScheduler,
)
from repro.orchestrator.spec import SUITES, ExperimentSpec
from repro.orchestrator.store import DEFAULT_STORE_ROOT, ResultsStore, StoreError


def add_bench_parser(subparsers: argparse._SubParsersAction) -> None:
    """Attach the ``bench`` subcommand tree to the main CLI parser."""
    bench = subparsers.add_parser(
        "bench",
        help="spec-driven benchmark experiments: run, resume, compare",
        description="Experiment orchestrator: runs declarative trial grids "
                    "under crash isolation with journaled resume, stores "
                    "build-stamped results, and renders comparative reports "
                    "(see docs/benchmarking.md).",
    )
    commands = bench.add_subparsers(dest="bench_command", required=True)

    run = commands.add_parser(
        "run", help="run a suite or spec file (or resume a killed run)"
    )
    source = run.add_mutually_exclusive_group()
    source.add_argument("--suite", choices=sorted(SUITES),
                        help="a built-in suite")
    source.add_argument("--spec", metavar="FILE",
                        help="a .json or .toml experiment spec file")
    source.add_argument("--resume", metavar="EXPERIMENT",
                        help="finish a killed/failed run: re-runs exactly "
                             "the trials without a done record in the "
                             "experiment's journal")
    run.add_argument("--experiment", default=None,
                     help="store this run under this name "
                          "(default: the suite/spec name)")
    run.add_argument("--store", default=str(DEFAULT_STORE_ROOT),
                     help="results store root (default: .repro-bench)")
    run.add_argument("--jobs", type=int, default=1,
                     help="concurrent trial processes")
    run.add_argument("--deadline", type=float, default=600.0,
                     help="per-trial wall deadline in seconds")
    run.add_argument("--max-retries", type=int, default=1,
                     help="re-dispatches after a trial worker crash/stall")

    report = commands.add_parser(
        "report", help="compare two named experiments scenario by scenario"
    )
    report.add_argument("baseline", help="baseline experiment name (the 'a' side)")
    report.add_argument("candidate", help="candidate experiment name (the 'b' side)")
    report.add_argument("--store", default=str(DEFAULT_STORE_ROOT))
    report.add_argument("--metric", default=DEFAULT_METRIC,
                        help="metric to compare (higher is better; "
                             f"default: {DEFAULT_METRIC})")
    report.add_argument("--format", choices=("table", "csv", "json"),
                        default="table", dest="fmt")
    report.add_argument("--alpha", type=float, default=0.05,
                        help="significance level for the verdict column")
    report.add_argument("--html", metavar="PATH", default=None,
                        help="also write a self-contained HTML report here")

    listing = commands.add_parser(
        "list", help="list the experiments the store holds"
    )
    listing.add_argument("--store", default=str(DEFAULT_STORE_ROOT))


def run_bench(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``tkdc bench ...`` invocation."""
    try:
        if args.bench_command == "run":
            return _bench_run(args)
        if args.bench_command == "report":
            return _bench_report(args)
        return _bench_list(args)
    except (SchedulerError, StoreError, ReportError, JournalError) as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2


def _bench_run(args: argparse.Namespace) -> int:
    store = ResultsStore(Path(args.store))
    policy = SchedulerPolicy(
        jobs=args.jobs, deadline=args.deadline, max_retries=args.max_retries,
    )
    scheduler = TrialScheduler(store, policy)
    if args.resume:
        summary = scheduler.resume(args.resume)
    else:
        if args.suite:
            spec = SUITES[args.suite]
        elif args.spec:
            spec = ExperimentSpec.from_file(args.spec)
        else:
            print("bench run: choose one of --suite, --spec, or --resume",
                  file=sys.stderr)
            return 2
        summary = scheduler.run(spec, args.experiment)
    return 0 if summary.complete else 1


def _bench_report(args: argparse.Namespace) -> int:
    store = ResultsStore(Path(args.store))
    comparison = ExperimentComparison(
        store, args.baseline, args.candidate,
        metric=args.metric, alpha=args.alpha,
    )
    print(format_output(
        comparison.rows, fmt=args.fmt,
        title=f"{args.candidate} vs {args.baseline} on {args.metric}"
              if args.fmt == "table" else None,
    ), end="" if args.fmt != "table" else "\n")
    if args.fmt == "table":
        summary = comparison.summary
        print(
            f"\n{summary['n_scenarios']} scenarios: "
            f"{summary['n_faster']} faster, {summary['n_slower']} slower, "
            f"{summary['n_inconclusive']} inconclusive "
            f"(alpha={summary['alpha']}); geomean speedup "
            f"{summary['geomean_speedup']:.3f}x\n"
            f"baseline build {summary['build_a'].get('git', '?')} | "
            f"candidate build {summary['build_b'].get('git', '?')}"
        )
        for experiment, keys in summary["unmatched"].items():
            if keys:
                print(f"only in {experiment}: {', '.join(keys)}")
    if args.html:
        from repro.io.atomic import atomic_write_text

        path = atomic_write_text(Path(args.html), render_html(comparison))
        print(f"wrote HTML report to {path}", file=sys.stderr)
    return 0


def _bench_list(args: argparse.Namespace) -> int:
    store = ResultsStore(Path(args.store))
    summaries = store.experiments()
    if not summaries:
        print(f"no experiments under {store.root}")
        return 0
    rows = [
        {
            "experiment": s["experiment"],
            "done": s["n_done"],
            "failed": s["n_failed"],
            "builds": ",".join(s["builds"]) or "-",
        }
        for s in summaries
    ]
    print(format_output(rows, columns=("experiment", "done", "failed", "builds")))
    return 0
