"""Experiment specs: a declarative scenario grid, expanded to trials.

An :class:`ExperimentSpec` names an experiment and the axes of its
scenario grid; :meth:`ExperimentSpec.expand` multiplies the axes out
into an ordered list of :class:`Trial`\\ s. Expansion is deterministic:
the same spec always yields the same trials in the same order, each
carrying an explicit seed and a content-derived ``trial_id`` — which is
what lets the scheduler resume a killed run by set difference and lets
the results store dedupe re-runs by identity.

Specs come from three places, all producing the same object:

- a named built-in suite (:data:`SUITES`): ``smoke``, ``engines``,
  ``coreset``, ``full``;
- a JSON or TOML file (:func:`ExperimentSpec.from_file`);
- Python code (the migrated ``benchmarks/bench_*.py`` wrappers).

Grid axes and sugar
-------------------
``workloads`` is the primary axis: ``(dataset, n, n_queries)`` triples,
because per-dataset sizing is the norm (hep at d=27 costs ~50x a gauss
query, so it gets a smaller block). When a file spec gives ``datasets``
/ ``ns`` / ``n_queries`` instead, the product is taken as sugar.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Mapping

from repro.datasets.registry import DATASETS
from repro.robustness.faults import FaultPlan

#: Engines a trial may name (mirrors ``TKDCConfig.engine`` plus the
#: explicit per-query reference traversal).
ENGINES = ("per-query", "batch", "hbe", "auto")

#: Named deterministic fault plans a spec may put on the grid. Each maps
#: to a :class:`~repro.robustness.faults.FaultPlan` run under
#: ``guard_policy="repair"`` — the orchestrator measures the *guarded*
#: cost of surviving the fault, not the crash.
FAULT_PLANS: dict[str, FaultPlan] = {
    "bound-nan": FaultPlan(corrupt_bound_nodes=(3, 17), corrupt_bound_mode="nan"),
    "bound-invert": FaultPlan(corrupt_bound_nodes=(2, 9), corrupt_bound_mode="invert"),
    "leaf-underflow": FaultPlan(underflow_leaves=(1, 5)),
}


@dataclass(frozen=True)
class Trial:
    """One fully-resolved scenario: everything a measurement needs.

    ``trial_id`` (a content hash of every field below) is the identity
    the journal, the store, and resume logic all key on; ``seed`` is the
    only randomness source the runner may use — data draw, fit, and
    query block are all derived from it.
    """

    experiment: str
    dataset: str
    n: int
    n_queries: int
    dim: int | None = None
    engine: str = "batch"
    jobs: int = 1
    coreset: str | None = None
    coreset_fraction: float = 1.0
    fault_plan: str | None = None
    p: float = 0.01
    epsilon: float = 0.01
    record_labels: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; choose from {sorted(DATASETS)}"
            )
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; choose from {ENGINES}")
        if self.fault_plan is not None and self.fault_plan not in FAULT_PLANS:
            raise ValueError(
                f"unknown fault plan {self.fault_plan!r}; "
                f"choose from {sorted(FAULT_PLANS)}"
            )
        if self.n < 2 or self.n_queries < 1:
            raise ValueError("n must be >= 2 and n_queries >= 1")
        if not 0.0 < self.coreset_fraction <= 1.0:
            raise ValueError(
                f"coreset_fraction must be in (0, 1], got {self.coreset_fraction}"
            )

    @property
    def scenario(self) -> dict:
        """The trial's config minus its seed — the axis the report
        groups on (seeds within one scenario are its repetitions)."""
        config = asdict(self)
        for key in ("experiment", "seed", "record_labels"):
            config.pop(key)
        return config

    @property
    def scenario_key(self) -> str:
        """Compact human-readable scenario label for tables/charts."""
        parts = [self.dataset, f"n={self.n}"]
        if self.dim is not None:
            parts.append(f"d={self.dim}")
        parts.append(self.engine)
        if self.jobs != 1:
            parts.append(f"j{self.jobs}")
        if self.coreset is not None:
            parts.append(f"{self.coreset}@{self.coreset_fraction:.0%}")
        if self.fault_plan is not None:
            parts.append(f"fault={self.fault_plan}")
        return "/".join(parts)

    @property
    def config_hash(self) -> str:
        """Hash of the scenario config (seed excluded)."""
        return _digest(self.scenario)

    @property
    def trial_id(self) -> str:
        """Content identity: scenario config *plus* seed."""
        return _digest({**self.scenario, "seed": self.seed})

    def to_record(self) -> dict:
        """JSON-safe dict carrying the derived identities too."""
        return {
            **asdict(self),
            "trial_id": self.trial_id,
            "config_hash": self.config_hash,
            "scenario_key": self.scenario_key,
        }

    @classmethod
    def from_record(cls, record: Mapping) -> "Trial":
        fields = {
            key: record[key]
            for key in (
                "experiment", "dataset", "n", "n_queries", "dim", "engine",
                "jobs", "coreset", "coreset_fraction", "fault_plan", "p",
                "epsilon", "record_labels", "seed",
            )
            if key in record
        }
        return cls(**fields)


def _digest(payload: Mapping) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _normalize_coreset(entry) -> tuple[str | None, float]:
    """Accept ``None``, ``"uniform:0.05"``, or ``{"method","fraction"}``."""
    if entry is None or entry == "none":
        return None, 1.0
    if isinstance(entry, str):
        method, __, fraction = entry.partition(":")
        return method, float(fraction) if fraction else 0.05
    if isinstance(entry, Mapping):
        return entry["method"], float(entry.get("fraction", 0.05))
    method, fraction = entry  # (method, fraction) pair
    return method, float(fraction)


@dataclass(frozen=True)
class ExperimentSpec:
    """The declarative scenario grid of one named experiment."""

    name: str
    workloads: tuple[tuple[str, int, int], ...]
    dims: tuple[int | None, ...] = (None,)
    engines: tuple[str, ...] = ("batch",)
    jobs: tuple[int, ...] = (1,)
    coresets: tuple[tuple[str | None, float], ...] = ((None, 1.0),)
    fault_plans: tuple[str | None, ...] = (None,)
    seeds: tuple[int, ...] = (0,)
    p: float = 0.01
    epsilon: float = 0.01
    record_labels: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an experiment spec needs a name")
        if not self.workloads:
            raise ValueError("an experiment spec needs at least one workload")
        if not self.seeds:
            raise ValueError("an experiment spec needs at least one seed")

    def expand(self, experiment: str | None = None) -> list[Trial]:
        """The full ordered trial list (deterministic given the spec)."""
        experiment = experiment or self.name
        trials: list[Trial] = []
        for (dataset, n, n_queries), dim, engine, jobs, coreset, fault, seed in (
            itertools.product(
                self.workloads, self.dims, self.engines, self.jobs,
                self.coresets, self.fault_plans, self.seeds,
            )
        ):
            method, fraction = coreset
            trials.append(Trial(
                experiment=experiment,
                dataset=dataset, n=int(n), n_queries=int(n_queries),
                dim=dim, engine=engine, jobs=int(jobs),
                coreset=method, coreset_fraction=fraction,
                fault_plan=fault, p=self.p, epsilon=self.epsilon,
                record_labels=self.record_labels, seed=int(seed),
            ))
        return trials

    @property
    def n_trials(self) -> int:
        return len(self.expand())

    @property
    def spec_hash(self) -> str:
        """Identity of the grid itself — resume refuses a changed spec."""
        return _digest(self.to_dict())

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["workloads"] = [list(w) for w in self.workloads]
        payload["coresets"] = [list(c) for c in self.coresets]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentSpec":
        data = dict(payload)
        if "workloads" in data:
            workloads = tuple(
                (str(d), int(n), int(q)) for d, n, q in data.pop("workloads")
            )
        else:
            # datasets/ns/n_queries sugar: take the product.
            datasets = data.pop("datasets")
            ns = data.pop("ns")
            n_queries = int(data.pop("n_queries", 256))
            workloads = tuple(
                (str(d), int(n), n_queries)
                for d, n in itertools.product(datasets, ns)
            )
        coresets = tuple(
            _normalize_coreset(entry) for entry in data.pop("coresets", (None,))
        )
        known = {
            "name", "dims", "engines", "jobs", "fault_plans", "seeds",
            "p", "epsilon", "record_labels", "description",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        for key in ("dims", "engines", "jobs", "fault_plans", "seeds"):
            if key in data:
                data[key] = tuple(data[key])
        return cls(workloads=workloads, coresets=coresets, **data)

    @classmethod
    def from_file(cls, path: Path | str) -> "ExperimentSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix == ".toml":
            import tomllib

            payload = tomllib.loads(text)
        else:
            payload = json.loads(text)
        if "name" not in payload:
            payload["name"] = path.stem
        return cls.from_dict(payload)


def _suite_smoke() -> ExperimentSpec:
    """CI-sized suite matching the bench gate's smoke scenarios, so a
    smoke run's store records can back ``bench-gate --from-store``."""
    return ExperimentSpec(
        name="smoke",
        description="gate-compatible smoke grid: engines x coreset, seconds-scale",
        workloads=(("gauss", 8_000, 256),),
        engines=("per-query", "batch"),
        coresets=((None, 1.0), ("uniform", 0.05)),
        seeds=(0, 1),
    )


def _suite_engines() -> ExperimentSpec:
    return ExperimentSpec(
        name="engines",
        description="all four engines across a low-d and a high-d workload",
        workloads=(("gauss", 20_000, 512), ("hep", 20_000, 128)),
        engines=("per-query", "batch", "hbe", "auto"),
        seeds=(0, 1, 2),
    )


def _suite_coreset() -> ExperimentSpec:
    return ExperimentSpec(
        name="coreset",
        description="coreset constructions x fractions vs uncompressed",
        workloads=(("gauss", 20_000, 512), ("hep", 20_000, 128)),
        engines=("batch",),
        coresets=(
            (None, 1.0),
            ("uniform", 0.01), ("uniform", 0.05), ("uniform", 0.20),
            ("merge-reduce", 0.05),
        ),
        record_labels=True,
        seeds=(0, 1, 2),
    )


def _suite_full() -> ExperimentSpec:
    return ExperimentSpec(
        name="full",
        description="the ROADMAP matrix: every dataset x engines x coreset "
                    "x fault plans (hours at full size)",
        workloads=tuple(
            (name, 20_000, 256 if DATASETS[name].dim <= 30 else 64)
            for name in sorted(DATASETS)
        ),
        engines=("per-query", "batch", "hbe", "auto"),
        coresets=((None, 1.0), ("uniform", 0.05)),
        fault_plans=(None, "bound-nan", "leaf-underflow"),
        seeds=(0, 1, 2),
    )


#: Built-in suites: ``tkdc bench run --suite <name>``.
SUITES: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (_suite_smoke(), _suite_engines(), _suite_coreset(), _suite_full())
}
