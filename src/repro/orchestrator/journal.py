"""The trial journal: a checksummed write-ahead log of trial status.

The scheduler appends one CRC-guarded JSON line per event — experiment
header, ``start``, ``done`` (with metrics), ``failed`` — and fsyncs
before moving on, so after a ``kill -9`` the journal is the authority
on exactly which trials completed. Resume is then a set difference:
every trial whose ``done`` record survived is skipped, everything else
(never started, started-but-unterminated, failed) re-runs.

This reuses the *idiom* of :mod:`repro.streaming.wal` — checksummed
records, torn-tail-only tolerance, a flock that dies with the process —
not the module itself: the WAL's binary framing, segment rotation and
snapshot compaction earn their complexity at ingest rates; a journal
that writes a handful of records per trial does not. Line framing is
``<crc32 hex8> <json>\\n``; a record interrupted mid-write is detected
by CRC or parse failure *on the final line only* and dropped (the trial
it described simply re-runs). Damage anywhere earlier is corruption,
refused loudly with :class:`JournalCorruptionError`.
"""

from __future__ import annotations

import fcntl
import json
import os
import weakref
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.atomic import fsync_directory

#: Journals open in this process; forked children must drop their
#: inherited copies (see :func:`_close_journals_after_fork`).
_LIVE_JOURNALS: "weakref.WeakSet[TrialJournal]" = weakref.WeakSet()


def _close_journals_after_fork() -> None:
    """Close inherited journal handles in a freshly-forked child.

    flock lives on the *open file description*, which a fork shares: if
    pool workers kept their inherited copy, SIGKILLing the scheduler
    would leave orphaned workers holding the experiment's lock and
    ``--resume`` would be refused forever. Dropping the child's copy at
    fork keeps the lock's lifetime exactly the scheduler process's.
    """
    for journal in list(_LIVE_JOURNALS):
        journal.close_inherited()


os.register_at_fork(after_in_child=_close_journals_after_fork)


class JournalError(RuntimeError):
    """Base class for journal failures."""


class JournalCorruptionError(JournalError):
    """Damage before the final record — replaying would lie."""


class JournalLockedError(JournalError):
    """Another live scheduler holds this experiment's journal."""


@dataclass
class JournalState:
    """What a journal replay established about an experiment."""

    header: dict | None = None
    done: dict[str, dict] = field(default_factory=dict)  #: trial_id -> done record
    failed: dict[str, dict] = field(default_factory=dict)
    started: set[str] = field(default_factory=set)
    torn_records: int = 0
    n_records: int = 0

    @property
    def spec_hash(self) -> str | None:
        return None if self.header is None else self.header.get("spec_hash")


def _frame(record: dict) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n".encode()


def _parse_line(line: bytes) -> dict | None:
    """Decode one framed line; ``None`` when the line is damaged."""
    if not line.endswith(b"\n") or len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
        body = line[9:-1]
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def _tail_repair_offset(raw: bytes) -> int:
    """Byte count to keep: everything up to the last intact record.

    Drops a write cut mid-line (no trailing newline) and, after that, a
    final complete-looking line with a damaged CRC — exactly the two
    torn-tail shapes a crash can leave. Damage further in is *not*
    repaired here; replay raises :class:`JournalCorruptionError`.
    """
    end = len(raw)
    last_newline = raw.rfind(b"\n")
    if last_newline + 1 != end:
        end = last_newline + 1
    if end:
        previous = raw.rfind(b"\n", 0, end - 1)
        if _parse_line(raw[previous + 1:end]) is None:
            end = previous + 1
    return end


def read_journal(path: Path | str) -> tuple[list[dict], int]:
    """Replay a journal file; returns ``(records, torn_records)``.

    Only the final line may be damaged (a write cut by a crash); it is
    dropped and counted. A bad line with valid lines after it means the
    file was corrupted in place — refused loudly.
    """
    path = Path(path)
    records: list[dict] = []
    torn = 0
    raw = path.read_bytes()
    if not raw:
        return records, torn
    lines = raw.split(b"\n")
    trailing = lines.pop()  # b"" when the file ends with a newline
    for index, line in enumerate(lines):
        record = _parse_line(line + b"\n")
        if record is None:
            if index == len(lines) - 1 and not trailing:
                torn += 1  # final complete-looking line failed its CRC
                break
            raise JournalCorruptionError(
                f"{path}: damaged record at line {index + 1} with valid "
                "records after it — refusing to replay a lying journal"
            )
        records.append(record)
    if trailing:
        torn += 1  # bytes past the last newline: a write cut mid-line
    return records, torn


def load_state(path: Path | str) -> JournalState:
    """Fold a journal's records into the resume-relevant state."""
    state = JournalState()
    records, state.torn_records = read_journal(path)
    state.n_records = len(records)
    for record in records:
        kind = record.get("type")
        if kind == "experiment":
            state.header = record
        elif kind == "start":
            state.started.add(record["trial_id"])
        elif kind == "done":
            state.done[record["trial_id"]] = record
            state.failed.pop(record["trial_id"], None)
        elif kind == "failed":
            state.failed[record["trial_id"]] = record
    return state


class TrialJournal:
    """Appender with crash-grade durability and single-writer locking.

    The flock is advisory and dies with the process — exactly the
    footprint of a SIGKILL — so a resumed scheduler can always acquire
    it, while two *live* schedulers on one experiment cannot.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        created = not self.path.exists()
        self._handle = open(self.path, "ab")
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            self._handle.close()
            raise JournalLockedError(
                f"{self.path}: another scheduler holds this experiment's "
                "journal (finish or kill it first)"
            ) from exc
        if created:
            # The journal file itself must survive a power cut: fsync
            # the directory entry once, at creation.
            fsync_directory(self.path.parent)
        else:
            # Appending after a torn write would glue the new record
            # onto the partial line and turn a tolerated torn tail into
            # mid-file corruption — truncate the tail first. The trial
            # the dropped record described simply re-runs.
            raw = self.path.read_bytes()
            keep = _tail_repair_offset(raw)
            if keep != len(raw):
                os.ftruncate(self._handle.fileno(), keep)
                os.fsync(self._handle.fileno())
        _LIVE_JOURNALS.add(self)

    def close_inherited(self) -> None:
        """Drop this (forked) process's copy of the handle, lock intact
        in the parent."""
        _LIVE_JOURNALS.discard(self)
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def append(self, record: dict) -> None:
        self._handle.write(_frame(record))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        _LIVE_JOURNALS.discard(self)
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
        self._handle.close()

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
