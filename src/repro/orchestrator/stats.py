"""Comparison statistics: bootstrap CIs and Mann–Whitney U.

Numpy plus the stdlib only — no scipy at runtime, by design: the
orchestrator must run anywhere the library runs (the test suite
cross-checks the U test against ``scipy.stats`` where scipy happens to
be installed, but nothing here imports it).

Two experiments' per-scenario samples are small (one observation per
seed), so the report leans on:

- :func:`bootstrap_ratio_ci` — a percentile-bootstrap interval on the
  ratio of mean throughputs, resampling each side independently;
- :func:`mann_whitney_u` — the rank-sum test with tie-corrected normal
  approximation and continuity correction. At n < ~8 per side the
  approximation is coarse and deliberately conservative; the report
  prints sample sizes next to every p-value so nobody mistakes a
  3-seed comparison for strong evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Bootstrap resamples per interval (deterministic given the seed).
DEFAULT_BOOTSTRAPS = 4_000


def bootstrap_mean_ci(
    values,
    alpha: float = 0.05,
    n_boot: int = DEFAULT_BOOTSTRAPS,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the mean of one sample."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if values.size == 1:
        return float(values[0]), float(values[0])
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, values.size, size=(n_boot, values.size))
    means = values[draws].mean(axis=1)
    lo, hi = np.quantile(means, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def bootstrap_ratio_ci(
    baseline,
    candidate,
    alpha: float = 0.05,
    n_boot: int = DEFAULT_BOOTSTRAPS,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for ``mean(candidate) / mean(baseline)``.

    Sides are resampled independently (trials of the two experiments
    are independent runs, possibly on different builds). Degenerate
    single-observation sides collapse to the point ratio on that side.
    """
    baseline = np.asarray(baseline, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if baseline.size == 0 or candidate.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if np.any(baseline <= 0):
        raise ValueError("ratio bootstrap requires positive baseline values")
    rng = np.random.default_rng(seed)
    base_means = (
        baseline[rng.integers(0, baseline.size, size=(n_boot, baseline.size))]
        .mean(axis=1)
        if baseline.size > 1 else np.full(n_boot, baseline[0])
    )
    cand_means = (
        candidate[rng.integers(0, candidate.size, size=(n_boot, candidate.size))]
        .mean(axis=1)
        if candidate.size > 1 else np.full(n_boot, candidate[0])
    )
    ratios = cand_means / base_means
    lo, hi = np.quantile(ratios, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Midranks (ties share the average of the ranks they span)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        # ranks are 1-based; a run [i, j] shares the midrank.
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


@dataclass(frozen=True)
class MannWhitneyResult:
    """Two-sided rank-sum verdict for samples ``a`` (baseline) vs ``b``."""

    u_statistic: float  #: U for the *second* sample (b over a)
    p_value: float  #: two-sided, tie-corrected normal approximation
    n_a: int
    n_b: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def mann_whitney_u(a, b) -> MannWhitneyResult:
    """Two-sided Mann–Whitney U test (normal approximation).

    Matches ``scipy.stats.mannwhitneyu(method="asymptotic",
    use_continuity=True)`` to floating-point noise on untied and tied
    inputs alike. Identical constant samples give ``p = 1.0``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n_a, n_b = a.size, b.size
    if n_a == 0 or n_b == 0:
        raise ValueError("both samples must be non-empty")
    combined = np.concatenate([a, b])
    ranks = _average_ranks(combined)
    rank_sum_b = float(ranks[n_a:].sum())
    u_b = rank_sum_b - n_b * (n_b + 1) / 2.0

    total = n_a + n_b
    mean_u = n_a * n_b / 2.0
    __, tie_counts = np.unique(combined, return_counts=True)
    tie_term = float(np.sum(tie_counts**3 - tie_counts))
    variance = (
        n_a * n_b / 12.0
        * ((total + 1.0) - tie_term / (total * (total - 1.0)))
        if total > 1 else 0.0
    )
    if variance <= 0.0:
        return MannWhitneyResult(u_b, 1.0, n_a, n_b)
    # Continuity-corrected two-sided z on the larger-tail U.
    u_max = max(u_b, n_a * n_b - u_b)
    z = (u_max - mean_u - 0.5) / math.sqrt(variance)
    p = math.erfc(max(z, 0.0) / math.sqrt(2.0))
    return MannWhitneyResult(u_b, min(1.0, p), n_a, n_b)


def verdict(speedup: float, p_value: float, alpha: float = 0.05) -> str:
    """Human verdict: ``faster`` / ``slower`` when significant, else ``~``."""
    if p_value < alpha:
        return "faster" if speedup > 1.0 else "slower"
    return "~"
