"""The one-code-path trial runner.

Every scheduled trial, the bench gate's smoke measurement, and the
migrated ``benchmarks/bench_*.py`` wrappers all measure through the two
functions here — :func:`fit_for_trial` and :func:`measure_engine` — so
a committed baseline and a fresh gate run can never diverge
structurally. The split exists because the gate (and the batch
traversal bench) times several engines against *one* fitted classifier,
while a scheduled trial is fully independent: it fits its own
classifier from its own seed. Both give bit-identical deterministic
metrics (kernels/query, labels) because the fit, the data draw, and the
query block are all functions of the trial seed alone.

The module-level :func:`trial_worker` is what the scheduler dispatches
to pool processes — it must stay importable (picklable) and must catch
its own exceptions: a trial that *errors* is a result ("failed"), not a
supervision event; only a killed or stalled worker is.
"""

from __future__ import annotations

import hashlib
import math
import traceback

import numpy as np

from repro.bench.harness import Timer, throughput
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.orchestrator.spec import FAULT_PLANS, Trial


def query_block(
    data: np.ndarray, n_queries: int, rng: np.random.Generator
) -> np.ndarray:
    """Half in-distribution points, half uniform box draws (outlier mix).

    The canonical query-block construction every benchmark and the gate
    share: all-inlier query sets short-circuit through the grid cache
    and never reach the traversal engine, so half the block is drawn
    uniformly over the data bounding box.
    """
    inliers = data[rng.choice(data.shape[0], size=n_queries // 2, replace=False)]
    box = rng.uniform(
        data.min(axis=0), data.max(axis=0),
        size=(n_queries - n_queries // 2, data.shape[1]),
    )
    return rng.permutation(np.concatenate([inliers, box]))


def trial_config(trial: Trial, n: int) -> TKDCConfig:
    """The classifier config a trial's scenario resolves to."""
    overrides: dict = {}
    if trial.coreset is not None:
        overrides["coreset"] = trial.coreset
        overrides["coreset_fraction"] = trial.coreset_fraction
    if trial.fault_plan is not None:
        overrides["fault_plan"] = FAULT_PLANS[trial.fault_plan]
        overrides["guard_policy"] = "repair"
    return TKDCConfig(
        p=trial.p, epsilon=trial.epsilon, seed=trial.seed,
        refine_threshold=False, bootstrap_s0=min(2000, n), **overrides,
    )


def fit_for_trial(trial: Trial) -> tuple[TKDCClassifier, np.ndarray, np.ndarray]:
    """Fit the trial's classifier; returns ``(clf, data, queries)``.

    Deterministic given the trial's scenario and seed; engine and jobs
    play no part (they only matter at measure time), so one fit can be
    shared across engine measurements of the same scenario.
    """
    from repro.datasets.registry import load

    data = load(trial.dataset, n=trial.n, d=trial.dim, seed=trial.seed)
    clf = TKDCClassifier(trial_config(trial, data.shape[0])).fit(data)
    clf.tree.flatten()  # build the flat view outside any timed region
    queries = query_block(
        data, trial.n_queries, np.random.default_rng(trial.seed + 1)
    )
    return clf, data, queries


def labels_digest(labels: np.ndarray) -> str:
    """Short content hash of a label vector, for cross-engine parity
    checks without storing the labels themselves."""
    return hashlib.sha256(
        np.asarray(labels, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


def measure_engine(
    clf: TKDCClassifier, queries: np.ndarray, trial: Trial
) -> tuple[dict, np.ndarray]:
    """Warm up, then time one engine pass; returns ``(metrics, labels)``."""
    clf.predict(queries[:8], engine=trial.engine, n_jobs=trial.jobs)  # warm up
    kernels_before = clf.stats.kernel_evaluations
    expansions_before = clf.stats.node_expansions
    with Timer() as timer:
        labels = clf.predict(queries, engine=trial.engine, n_jobs=trial.jobs)
    kernels = clf.stats.kernel_evaluations - kernels_before
    expansions = clf.stats.node_expansions - expansions_before
    metrics = {
        "seconds": timer.elapsed,
        "queries_per_s": throughput(trial.n_queries, timer.elapsed),
        "kernels_total": int(kernels),
        "kernels_per_query": kernels / trial.n_queries,
        "expansions_per_query": expansions / trial.n_queries,
        "labels_sha256": labels_digest(labels),
        "n_low": int(np.count_nonzero(np.asarray(labels, dtype=np.int64) == 0)),
    }
    return metrics, labels


def _finite(value: float) -> float | str:
    """JSON-safe float: strict JSON has no inf (coarse eta can be)."""
    return value if math.isfinite(value) else "inf"


def run_trial(trial: Trial) -> dict:
    """Run one trial end to end; returns its full metrics dict."""
    with Timer() as fit_timer:
        clf, data, queries = fit_for_trial(trial)
    metrics, labels = measure_engine(clf, queries, trial)
    metrics.update({
        "fit_seconds": fit_timer.elapsed,
        "dim": int(data.shape[1]),
        "threshold": float(clf.threshold.value),
        "seed": trial.seed,
    })
    if trial.coreset is not None and clf.coreset_ is not None:
        from repro.coresets.validate import empirical_eta

        coreset = clf.coreset_
        metrics.update({
            "k": int(coreset.k),
            "rounds": int(coreset.rounds),
            "eta": _finite(float(coreset.eta)),
            "eta_applied": _finite(float(clf.eta_applied)),
            "eta_empirical": _finite(float(empirical_eta(
                clf.kernel.scale(data), coreset, clf.kernel,
                rng=np.random.default_rng(trial.seed + 2),
            ))),
            "certified": bool(clf.certified),
        })
    if trial.record_labels:
        metrics["labels"] = [int(v) for v in np.asarray(labels, dtype=np.int64)]
    return metrics


def trial_worker(chunk_index: int, attempt: int, payload: dict) -> dict:
    """Pool-process entry point: run the trial described by ``payload``.

    Returns ``{"ok": True, "metrics": ...}`` or ``{"ok": False,
    "error": ...}`` — an exception inside the trial is a *result* (the
    scenario is broken), not a reason for the supervisor to retry.
    ``chunk_index``/``attempt`` exist for the supervised-pool calling
    convention and deterministic fault injection.
    """
    del chunk_index, attempt
    try:
        trial = Trial.from_record(payload)
        return {"ok": True, "metrics": run_trial(trial)}
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=20),
        }
