"""The trial scheduler: supervised execution with journaled resume.

Trials run in pool processes through the same supervised-dispatch
machinery the classifier's parallel path uses
(:func:`repro.robustness.supervisor.supervised_map`): a per-trial
deadline, prompt dead-worker detection, bounded retries. One deliberate
divergence from the classify path — there, a chunk that exhausts its
retries is recomputed in-process because a serving answer *must*
complete; here, a trial that keeps crashing or stalling is marked
``failed`` instead. Trials are units of *measurement*: a number
produced by a third-attempt in-process fallback under a blown deadline
is not evidence, and ``--resume`` can always retry failed trials later.

Resume protocol (the journal is the authority, see
:mod:`repro.orchestrator.journal`):

- first run writes ``spec.json`` and an ``experiment`` header record;
- every trial gets ``start`` before dispatch and ``done``/``failed``
  (fsynced) after; store records are flushed after every round;
- ``--resume`` replays the journal, refuses a changed spec hash, and
  re-runs exactly the trials without a surviving ``done`` record —
  a SIGKILL mid-suite therefore costs at most the in-flight round.
"""

from __future__ import annotations

import multiprocessing
import sys
from dataclasses import dataclass

from repro.bench.harness import Timer
from repro.obs.buildinfo import build_info
from repro.orchestrator import runner as runner_mod
from repro.orchestrator.journal import TrialJournal, load_state
from repro.orchestrator.spec import ExperimentSpec, Trial
from repro.orchestrator.store import ResultsStore, trial_record
from repro.robustness.supervisor import SupervisionPolicy, supervised_map


class SchedulerError(RuntimeError):
    """Misuse the scheduler refuses: name collisions, changed specs."""


@dataclass(frozen=True)
class SchedulerPolicy:
    """How trials are dispatched and how hard failure is retried."""

    jobs: int = 1  #: concurrent trial processes
    deadline: float = 600.0  #: per-trial wall deadline (seconds)
    max_retries: int = 1  #: re-dispatches after a crash/stall
    backoff: float = 0.1  #: base retry sleep, doubling per attempt

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")


@dataclass
class RunSummary:
    """What one scheduler invocation did."""

    experiment: str
    n_trials: int  #: size of the full expanded grid
    n_skipped: int  #: completed in a previous run (resume)
    n_run: int  #: executed this invocation
    n_done: int  #: succeeded this invocation
    n_failed: int  #: failed this invocation
    wall_seconds: float
    resumed: bool

    @property
    def complete(self) -> bool:
        """Every trial in the grid has a successful record."""
        return self.n_skipped + self.n_done == self.n_trials

    def render(self) -> str:
        status = "complete" if self.complete else "INCOMPLETE"
        return (
            f"experiment {self.experiment!r}: {self.n_trials} trials, "
            f"{self.n_skipped} already done, {self.n_done} succeeded, "
            f"{self.n_failed} failed this run "
            f"({self.wall_seconds:.1f}s) — {status}"
        )


def _mp_context():
    """Match the classifier's pool context choice: fork where it exists
    (cheap per-round pools), spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix
        return multiprocessing.get_context("spawn")


def _failed_result(index: int, payload: object) -> dict:
    """Serial 'fallback' for a trial that exhausted supervision: report
    failure honestly instead of measuring under degraded conditions."""
    del index, payload
    return {
        "ok": False,
        "error": "trial exhausted its supervised retries "
                 "(worker crash or per-trial deadline exceeded)",
    }


class TrialScheduler:
    """Runs an :class:`ExperimentSpec` to completion, resumably."""

    def __init__(
        self,
        store: ResultsStore | None = None,
        policy: SchedulerPolicy | None = None,
        run_trial=None,
        progress=None,
    ) -> None:
        self.store = store if store is not None else ResultsStore()
        self.policy = policy if policy is not None else SchedulerPolicy()
        # Injectable for tests; the default is the one-code-path runner.
        self._worker = run_trial if run_trial is not None else runner_mod.trial_worker
        self._progress = progress if progress is not None else self._print

    @staticmethod
    def _print(message: str) -> None:
        print(message, flush=True)

    # -- public entry points ----------------------------------------

    def run(self, spec: ExperimentSpec, experiment: str | None = None) -> RunSummary:
        """Run a spec from scratch; refuses an already-started name."""
        experiment = experiment or spec.name
        journal_path = self.store.journal_path(experiment)
        if journal_path.exists() and load_state(journal_path).n_records:
            raise SchedulerError(
                f"experiment {experiment!r} already has a journal under "
                f"{self.store.experiment_dir(experiment)} — use --resume to "
                "finish it, or pick a new --experiment name"
            )
        self.store.write_spec(experiment, spec.to_dict())
        return self._execute(spec, experiment, resumed=False, completed={})

    def resume(self, experiment: str) -> RunSummary:
        """Finish a killed/failed run: re-run exactly the trials without
        a surviving ``done`` record."""
        spec = ExperimentSpec.from_dict(self.store.read_spec(experiment))
        journal_path = self.store.journal_path(experiment)
        if not journal_path.exists():
            raise SchedulerError(
                f"experiment {experiment!r} has a spec but no journal — "
                "nothing to resume; run it without --resume"
            )
        state = load_state(journal_path)
        if state.spec_hash is not None and state.spec_hash != spec.spec_hash:
            raise SchedulerError(
                f"experiment {experiment!r}: stored spec hash "
                f"{spec.spec_hash} does not match the journal's "
                f"{state.spec_hash} — the spec changed after the run "
                "started; use a new experiment name"
            )
        # The journal fsyncs per trial but the store flushes per round,
        # so a kill between the two leaves journaled-done trials absent
        # from results.jsonl; repair that before skipping them.
        self._backfill_store(spec, experiment, state.done)
        return self._execute(spec, experiment, resumed=True, completed=state.done)

    def _backfill_store(
        self, spec: ExperimentSpec, experiment: str, done: dict[str, dict]
    ) -> int:
        """Write store records for journaled-done trials the store lost."""
        existing = {r["trial_id"] for r in self.store.records(experiment)}
        records = [
            trial_record(
                experiment, trial.to_record(), "done",
                metrics=done[trial.trial_id].get("metrics", {}),
            )
            for trial in spec.expand(experiment)
            if trial.trial_id in done and trial.trial_id not in existing
        ]
        if records:
            self.store.append_records(experiment, records)
        return len(records)

    # -- core loop ---------------------------------------------------

    def _execute(
        self,
        spec: ExperimentSpec,
        experiment: str,
        resumed: bool,
        completed: dict[str, dict],
    ) -> RunSummary:
        trials = spec.expand(experiment)
        pending = [t for t in trials if t.trial_id not in completed]
        summary = RunSummary(
            experiment=experiment, n_trials=len(trials),
            n_skipped=len(trials) - len(pending), n_run=0, n_done=0,
            n_failed=0, wall_seconds=0.0, resumed=resumed,
        )
        policy = SupervisionPolicy(
            timeout=self.policy.deadline,
            max_retries=self.policy.max_retries,
            backoff=self.policy.backoff,
        )
        self._progress(
            f"[{experiment}] {len(trials)} trials "
            f"({summary.n_skipped} already done, {len(pending)} to run; "
            f"jobs={self.policy.jobs}, deadline={self.policy.deadline:.0f}s)"
        )
        with Timer() as timer, TrialJournal(self.store.journal_path(experiment)) as journal:
            journal.append({
                "type": "experiment", "experiment": experiment,
                "spec_hash": spec.spec_hash, "n_trials": len(trials),
                "resumed": resumed, "build": build_info(),
            })
            round_size = max(1, self.policy.jobs)
            for round_start in range(0, len(pending), round_size):
                round_trials = pending[round_start:round_start + round_size]
                for trial in round_trials:
                    journal.append({"type": "start", "trial_id": trial.trial_id})
                results, __ = supervised_map(
                    self._worker,
                    [t.to_record() for t in round_trials],
                    n_jobs=self.policy.jobs,
                    policy=policy,
                    serial_fallback=_failed_result,
                    mp_context=_mp_context(),
                )
                records = []
                for trial, result in zip(round_trials, results):
                    summary.n_run += 1
                    records.append(self._conclude(journal, trial, result))
                    if records[-1]["status"] == "done":
                        summary.n_done += 1
                    else:
                        summary.n_failed += 1
                # Store flush after the journal records: a crash between
                # the two is repaired on resume (journal is authority).
                self.store.append_records(experiment, records)
        summary.wall_seconds = timer.elapsed
        self._progress(summary.render())
        return summary

    def _conclude(self, journal: TrialJournal, trial: Trial, result) -> dict:
        """Journal one trial's outcome and build its store record."""
        record = trial.to_record()
        if isinstance(result, dict) and result.get("ok"):
            journal.append({
                "type": "done", "trial_id": trial.trial_id,
                "metrics": result["metrics"],
            })
            self._progress(
                f"  done {trial.scenario_key} seed={trial.seed} "
                f"({result['metrics'].get('seconds', 0.0):.2f}s, "
                f"{result['metrics'].get('queries_per_s', 0.0):,.0f} q/s)"
            )
            return trial_record(
                trial.experiment, record, "done", metrics=result["metrics"]
            )
        error = "trial produced no result"
        if isinstance(result, dict):
            error = result.get("error", error)
            if result.get("traceback"):
                print(result["traceback"], file=sys.stderr)
        journal.append({
            "type": "failed", "trial_id": trial.trial_id, "error": error,
        })
        self._progress(
            f"  FAILED {trial.scenario_key} seed={trial.seed}: {error}"
        )
        return trial_record(trial.experiment, record, "failed", error=error)


def rebuild_store_from_journal(store: ResultsStore, experiment: str) -> int:
    """Re-derive ``results.jsonl`` from the journal's ``done`` records.

    The journal fsyncs per trial while the store flushes per round, so a
    kill between the two can leave the store one round behind; resume
    calls this implicitly by re-running nothing and re-flushing, but the
    repair is also useful standalone (e.g. a deleted results file).
    Returns the number of records written.
    """
    state = load_state(store.journal_path(experiment))
    spec = ExperimentSpec.from_dict(store.read_spec(experiment))
    records = []
    for trial in spec.expand(experiment):
        done = state.done.get(trial.trial_id)
        if done is not None:
            records.append(trial_record(
                experiment, trial.to_record(), "done",
                metrics=done.get("metrics", {}),
            ))
    if records:
        store.append_records(experiment, records)
    return len(records)
