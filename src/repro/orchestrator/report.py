"""Comparative reports over two stored experiments.

:class:`ExperimentComparison` is a lazy report context: every derived
view (matched scenarios, per-scenario statistics, the summary line) is
a ``functools.cached_property`` computed on first access from the two
experiments' store records, so building the object is free and a CLI
path that only prints the table never pays for the HTML chart's data.

Scenarios are matched across experiments by ``config_hash`` — the
content hash of everything that defines a scenario *except* the seed —
so a comparison is always seed-population against seed-population of
the *same* workload, and scenarios present on only one side are
reported as unmatched rather than silently dropped.

Output goes through :func:`format_output` (console table / csv / json
over the same row dicts) or :func:`render_html`, which embeds the
per-scenario speedup chart from :mod:`repro.bench.svg` into a single
self-contained page.
"""

from __future__ import annotations

import csv
import html
import io
import json
import math
from functools import cached_property
from typing import Mapping, Sequence

from repro.bench.reporting import ConsoleTable
from repro.bench.svg import bar_chart_svg
from repro.orchestrator.stats import (
    bootstrap_ratio_ci,
    mann_whitney_u,
    verdict,
)
from repro.orchestrator.store import ResultsStore, StoreError

#: The default metric a comparison ranks scenarios on.
DEFAULT_METRIC = "queries_per_s"

#: Column order for every tabular rendering of comparison rows.
REPORT_COLUMNS = (
    "scenario", "n_a", "n_b", "a_mean", "b_mean",
    "speedup", "ci_lo", "ci_hi", "p_value", "verdict",
)


class ReportError(RuntimeError):
    """A comparison cannot be built from what the store holds."""


class ExperimentComparison:
    """Lazy comparison of experiment ``b`` (candidate) against ``a``
    (baseline) on one metric; higher metric values are better."""

    def __init__(
        self,
        store: ResultsStore,
        experiment_a: str,
        experiment_b: str,
        metric: str = DEFAULT_METRIC,
        alpha: float = 0.05,
    ) -> None:
        self.store = store
        self.experiment_a = experiment_a
        self.experiment_b = experiment_b
        self.metric = metric
        self.alpha = alpha

    # -- raw material ------------------------------------------------

    def _done_records(self, experiment: str) -> list[dict]:
        records = [
            record
            for record in self.store.records(experiment)
            if record.get("status") == "done"
        ]
        if not records:
            known = [s["experiment"] for s in self.store.experiments()]
            raise ReportError(
                f"experiment {experiment!r} has no completed trials in "
                f"{self.store.root} (known experiments: "
                f"{', '.join(known) or 'none'})"
            )
        return records

    @cached_property
    def records_a(self) -> list[dict]:
        return self._done_records(self.experiment_a)

    @cached_property
    def records_b(self) -> list[dict]:
        return self._done_records(self.experiment_b)

    @cached_property
    def build_a(self) -> dict:
        return self.records_a[0].get("build", {})

    @cached_property
    def build_b(self) -> dict:
        return self.records_b[0].get("build", {})

    # -- matching ----------------------------------------------------

    @staticmethod
    def _by_scenario(records: list[dict]) -> dict[str, list[dict]]:
        grouped: dict[str, list[dict]] = {}
        for record in records:
            grouped.setdefault(record["config_hash"], []).append(record)
        return grouped

    @cached_property
    def scenarios(self) -> list[tuple[str, list[dict], list[dict]]]:
        """Matched ``(scenario_key, a_records, b_records)`` triples, in
        a deterministic scenario-key order."""
        group_a = self._by_scenario(self.records_a)
        group_b = self._by_scenario(self.records_b)
        matched = []
        for config_hash in group_a.keys() & group_b.keys():
            a_records = group_a[config_hash]
            matched.append((
                a_records[0]["scenario_key"], a_records, group_b[config_hash],
            ))
        matched.sort(key=lambda triple: triple[0])
        return matched

    @cached_property
    def unmatched(self) -> dict[str, list[str]]:
        """Scenario keys present on only one side, by experiment name."""
        group_a = self._by_scenario(self.records_a)
        group_b = self._by_scenario(self.records_b)
        return {
            self.experiment_a: sorted(
                group_a[h][0]["scenario_key"] for h in group_a.keys() - group_b.keys()
            ),
            self.experiment_b: sorted(
                group_b[h][0]["scenario_key"] for h in group_b.keys() - group_a.keys()
            ),
        }

    # -- statistics --------------------------------------------------

    def _metric_values(self, records: list[dict], where: str) -> list[float]:
        values = []
        for record in records:
            value = record.get("metrics", {}).get(self.metric)
            if not isinstance(value, (int, float)):
                raise ReportError(
                    f"trial {record['trial_id']} of {where} has no numeric "
                    f"metric {self.metric!r} — choose a --metric every "
                    "trial recorded"
                )
            values.append(float(value))
        return values

    @cached_property
    def rows(self) -> list[dict]:
        """One comparison row per matched scenario (see REPORT_COLUMNS)."""
        rows = []
        for scenario_key, a_records, b_records in self.scenarios:
            a_values = self._metric_values(a_records, self.experiment_a)
            b_values = self._metric_values(b_records, self.experiment_b)
            a_mean = sum(a_values) / len(a_values)
            b_mean = sum(b_values) / len(b_values)
            speedup = b_mean / a_mean if a_mean > 0 else float("inf")
            ci_lo, ci_hi = bootstrap_ratio_ci(a_values, b_values)
            test = mann_whitney_u(a_values, b_values)
            rows.append({
                "scenario": scenario_key,
                "n_a": len(a_values),
                "n_b": len(b_values),
                "a_mean": a_mean,
                "b_mean": b_mean,
                "speedup": speedup,
                "ci_lo": ci_lo,
                "ci_hi": ci_hi,
                "p_value": test.p_value,
                "verdict": verdict(speedup, test.p_value, self.alpha),
            })
        return rows

    @cached_property
    def summary(self) -> dict:
        """Headline numbers for the whole comparison."""
        speedups = [row["speedup"] for row in self.rows]
        geomean = geometric_mean(speedups) if speedups else float("nan")
        return {
            "baseline": self.experiment_a,
            "candidate": self.experiment_b,
            "metric": self.metric,
            "alpha": self.alpha,
            "n_scenarios": len(self.rows),
            "n_faster": sum(1 for r in self.rows if r["verdict"] == "faster"),
            "n_slower": sum(1 for r in self.rows if r["verdict"] == "slower"),
            "n_inconclusive": sum(1 for r in self.rows if r["verdict"] == "~"),
            "geomean_speedup": geomean,
            "build_a": self.build_a,
            "build_b": self.build_b,
            "unmatched": self.unmatched,
        }

    def to_payload(self) -> dict:
        """The whole comparison as one JSON-serializable dict."""
        return {"summary": self.summary, "rows": self.rows}


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; non-positive poisoned inputs give nan, not a raise."""
    try:
        logs = [math.log(v) for v in values]
    except ValueError:
        return float("nan")
    return math.exp(sum(logs) / len(logs)) if logs else float("nan")


def format_output(
    rows: Sequence[Mapping],
    columns: Sequence[str] = REPORT_COLUMNS,
    fmt: str = "table",
    title: str | None = None,
) -> str:
    """Render row dicts as an aligned console table, csv, or json.

    One row shape, three renderings — the table goes to humans, csv to
    spreadsheets, json to scripts; all draw the same columns in the
    same order.
    """
    if fmt == "table":
        table = ConsoleTable(list(columns))
        for row in rows:
            table.add_row(row)
        rendered = table.render()
        return f"== {title} ==\n{rendered}" if title else rendered
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({col: row.get(col, "") for col in columns})
        return buffer.getvalue()
    if fmt == "json":
        payload = [
            {col: row.get(col) for col in columns} for row in rows
        ]
        return json.dumps(payload, indent=2) + "\n"
    raise ValueError(f"unknown format {fmt!r}: use table, csv, or json")


_HTML_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
          max-width: 72rem; padding: 0 1rem; color: #1a1a2e; }}
  h1 {{ font-size: 1.4rem; }}
  table {{ border-collapse: collapse; width: 100%; margin: 1rem 0; }}
  th, td {{ border: 1px solid #d0d0e0; padding: .35rem .6rem;
            text-align: right; font-variant-numeric: tabular-nums; }}
  th:first-child, td:first-child {{ text-align: left; }}
  tr.faster td {{ background: #e8f7ee; }}
  tr.slower td {{ background: #fdeaea; }}
  .meta {{ color: #555; font-size: .85rem; }}
  figure {{ margin: 1.5rem 0; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p class="meta">baseline <code>{experiment_a}</code> ({build_a})
 vs candidate <code>{experiment_b}</code> ({build_b})
 &middot; metric <code>{metric}</code>
 &middot; {n_scenarios} scenarios, geomean speedup {geomean:.3f}&times;</p>
<figure>{chart}</figure>
{table}
{unmatched}
</body>
</html>
"""


def _html_table(rows: Sequence[Mapping]) -> str:
    head = "".join(f"<th>{html.escape(col)}</th>" for col in REPORT_COLUMNS)
    body = []
    for row in rows:
        cells = []
        for col in REPORT_COLUMNS:
            value = row.get(col)
            if isinstance(value, float):
                text = f"{value:.4g}"
            else:
                text = html.escape(str(value))
            cells.append(f"<td>{text}</td>")
        css = {"faster": "faster", "slower": "slower"}.get(row.get("verdict"), "")
        body.append(f'<tr class="{css}">' + "".join(cells) + "</tr>")
    return (
        "<table><thead><tr>" + head + "</tr></thead>"
        "<tbody>" + "".join(body) + "</tbody></table>"
    )


def render_html(comparison: ExperimentComparison) -> str:
    """One self-contained HTML page: metadata, speedup chart, full table."""
    summary = comparison.summary
    rows = comparison.rows
    if rows:
        chart = bar_chart_svg(
            labels=[row["scenario"] for row in rows],
            values=[row["speedup"] for row in rows],
            title=f"speedup on {comparison.metric} "
                  f"({comparison.experiment_b} / {comparison.experiment_a})",
            value_label="speedup (x)",
        )
    else:
        chart = "<p>No matched scenarios.</p>"
    unmatched_bits = []
    for experiment, keys in summary["unmatched"].items():
        if keys:
            unmatched_bits.append(
                f"<p class=\"meta\">only in <code>{html.escape(experiment)}</code>: "
                + ", ".join(html.escape(key) for key in keys) + "</p>"
            )
    return _HTML_PAGE.format(
        title=f"bench report: {comparison.experiment_b} vs {comparison.experiment_a}",
        experiment_a=html.escape(comparison.experiment_a),
        experiment_b=html.escape(comparison.experiment_b),
        build_a=html.escape(str(summary["build_a"].get("git", "unknown"))),
        build_b=html.escape(str(summary["build_b"].get("git", "unknown"))),
        metric=html.escape(comparison.metric),
        n_scenarios=summary["n_scenarios"],
        geomean=summary["geomean_speedup"],
        chart=chart,
        table=_html_table(rows),
        unmatched="".join(unmatched_bits),
    )
