"""Saving and loading fitted classifiers.

A fitted :class:`~repro.core.classifier.TKDCClassifier` holds plain
numpy arrays and dataclasses, so Python's pickle serializes it
faithfully. The wrapper adds a format header with the library version so
stale files fail loudly instead of mis-deserializing after refactors.

Security note: pickle executes code on load — only load model files you
produced yourself (the standard caveat for pickle-based model formats).
"""

from __future__ import annotations

import pickle
from pathlib import Path

import repro
from repro.core.classifier import TKDCClassifier
from repro.io.atomic import atomic_write_bytes

#: Format marker stored alongside the model.
_MAGIC = "repro-tkdc-model"


def save_model(path: Path | str, classifier: TKDCClassifier) -> Path:
    """Serialize a fitted classifier to ``path`` (suffix ``.tkdc``)."""
    if not classifier.is_fitted:
        raise ValueError("refusing to save an unfitted classifier")
    path = Path(path)
    if path.suffix != ".tkdc":
        path = path.with_suffix(".tkdc")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "magic": _MAGIC,
        "version": repro.__version__,
        "classifier": classifier,
    }
    # Temp-then-rename: a save interrupted mid-pickle never corrupts an
    # existing model file at this path.
    atomic_write_bytes(path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    return path


def load_model(path: Path | str) -> TKDCClassifier:
    """Load a classifier saved by :func:`save_model`.

    Raises ``ValueError`` for foreign files and version mismatches.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".tkdc").exists():
        path = path.with_suffix(".tkdc")
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a repro tKDC model file")
    if payload.get("version") != repro.__version__:
        raise ValueError(
            f"{path} was saved by repro {payload.get('version')}, "
            f"this is {repro.__version__}; re-fit and re-save"
        )
    classifier = payload["classifier"]
    if not isinstance(classifier, TKDCClassifier):
        raise ValueError(f"{path} does not contain a TKDCClassifier")
    return classifier
