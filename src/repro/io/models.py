"""Saving and loading fitted classifiers.

A fitted :class:`~repro.core.classifier.TKDCClassifier` holds plain
numpy arrays and dataclasses, so Python's pickle serializes it
faithfully. The wrapper adds a format header with the library version so
stale files fail loudly instead of mis-deserializing after refactors,
and a sha256 integrity footer so a truncated or bit-flipped file is
rejected by checksum *before* any byte of it reaches the unpickler —
the failure mode that matters for long-running servers hot-reloading
models from disk (see :mod:`repro.serve.reload`).

File layout::

    <pickle payload> <footer magic (12 bytes)> <sha256(payload) (32 bytes)>

Legacy files without the footer still load (with a warning) because the
footer is pure trailing data — the unpickler stops at the pickle STOP
opcode, so old readers are equally unaffected by the new footer.

Security note: pickle executes code on load — only load model files you
produced yourself (the standard caveat for pickle-based model formats).
The checksum detects *corruption*, not tampering.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from pathlib import Path

import repro
from repro.core.classifier import TKDCClassifier
from repro.io.atomic import atomic_write_bytes
from repro.obs.buildinfo import build_info

#: Format marker stored alongside the model.
_MAGIC = "repro-tkdc-model"

#: Trailing integrity-footer marker; the sha256 digest follows it.
_FOOTER_MAGIC = b"tkdc-sha256:"
_DIGEST_SIZE = hashlib.sha256().digest_size
_FOOTER_SIZE = len(_FOOTER_MAGIC) + _DIGEST_SIZE


class ModelIntegrityError(ValueError):
    """A model file failed verification before or during deserialization.

    Raised for checksum mismatches (bit rot, torn copies, truncation)
    and for byte streams that are not a complete pickle. Subclasses
    ``ValueError`` so callers treating load failures generically keep
    working; the serving layer catches it specifically to refuse a hot
    reload and keep the previous model.
    """


def save_model(path: Path | str, classifier: TKDCClassifier) -> Path:
    """Serialize a fitted classifier to ``path`` (suffix ``.tkdc``)."""
    if not classifier.is_fitted:
        raise ValueError("refusing to save an unfitted classifier")
    path = Path(path)
    if path.suffix != ".tkdc":
        path = path.with_suffix(".tkdc")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "magic": _MAGIC,
        "version": repro.__version__,
        # Full build identity (version + git describe + python) so a
        # served model is attributable to the exact tree that fit it.
        "build": build_info(),
        "classifier": classifier,
    }
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    # Temp-then-rename: a save interrupted mid-pickle never corrupts an
    # existing model file at this path.
    atomic_write_bytes(path, blob + _FOOTER_MAGIC + hashlib.sha256(blob).digest())
    return path


def resolve_model_path(path: Path | str) -> Path:
    """Resolve a requested model path to the file that will be read.

    Resolution is explicit and ordered: the exact path wins when it
    exists (even if a ``.tkdc`` sibling also exists); otherwise the
    ``.tkdc``-suffixed candidate (what :func:`save_model` would have
    produced for this request) is tried; otherwise ``FileNotFoundError``
    names both candidates so the caller sees exactly what was probed.
    """
    path = Path(path)
    if path.exists():
        return path
    fallback = path.with_suffix(".tkdc")
    if fallback != path and fallback.exists():
        return fallback
    tried = str(path) if fallback == path else f"{path} (also tried {fallback})"
    raise FileNotFoundError(f"no model file at {tried}")


def _verified_payload(path: Path, data: bytes) -> bytes:
    """Strip and verify the integrity footer; returns the pickle bytes.

    Footer-less files are accepted as legacy format with a warning —
    they predate the checksum and cannot be verified.
    """
    if len(data) > _FOOTER_SIZE and data[-_FOOTER_SIZE:-_DIGEST_SIZE] == _FOOTER_MAGIC:
        blob = data[:-_FOOTER_SIZE]
        expected = data[-_DIGEST_SIZE:]
        actual = hashlib.sha256(blob).digest()
        if actual != expected:
            raise ModelIntegrityError(
                f"{path} failed its sha256 integrity check "
                f"(stored {expected.hex()[:16]}…, computed {actual.hex()[:16]}…); "
                "the file is corrupt (truncated, bit-flipped, or torn) and "
                "will not be unpickled"
            )
        return blob
    warnings.warn(
        f"{path} has no integrity footer (legacy model format); loading "
        "without checksum verification — re-save to add one",
        UserWarning,
        stacklevel=3,
    )
    return data


def load_model(path: Path | str) -> TKDCClassifier:
    """Load a classifier saved by :func:`save_model`.

    The sha256 footer and format magic are verified *before* the pickle
    payload is deserialized, so corruption surfaces as a typed
    :class:`ModelIntegrityError` rather than a raw ``UnpicklingError``
    (or worse, a silently wrong object). Raises ``ValueError`` for
    foreign files and version mismatches, ``FileNotFoundError`` when
    neither the exact path nor its ``.tkdc`` fallback exists.
    """
    path = resolve_model_path(path)
    blob = _verified_payload(path, path.read_bytes())
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        # Legacy (footer-less) truncation lands here: the stream is not
        # a complete pickle. Typed, so callers can distinguish "corrupt
        # file" from "wrong kind of file".
        raise ModelIntegrityError(
            f"{path} is not a complete tKDC model pickle "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a repro tKDC model file")
    if payload.get("version") != repro.__version__:
        raise ValueError(
            f"{path} was saved by repro {payload.get('version')}, "
            f"this is {repro.__version__}; re-fit and re-save"
        )
    classifier = payload["classifier"]
    if not isinstance(classifier, TKDCClassifier):
        raise ValueError(f"{path} does not contain a TKDCClassifier")
    return classifier
