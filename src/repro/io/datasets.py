"""Dataset file formats: compressed .npz with metadata, and CSV.

The simulators in :mod:`repro.datasets` regenerate deterministically
from seeds, but downstream users bring their own data; these helpers
give them a stable on-disk interchange (and let the benchmarks cache
expensive draws between runs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

#: Key under which the point matrix is stored inside the .npz archive.
_DATA_KEY = "data"
_METADATA_KEY = "metadata_json"


def save_dataset(
    path: Path | str, data: np.ndarray, metadata: Mapping[str, object] | None = None
) -> Path:
    """Write a point matrix (and optional JSON metadata) to a .npz file.

    Returns the written path (with the ``.npz`` suffix enforced).
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {_DATA_KEY: data}
    if metadata is not None:
        payload[_METADATA_KEY] = np.frombuffer(
            json.dumps(dict(metadata)).encode(), dtype=np.uint8
        )
    np.savez_compressed(path, **payload)
    return path


def load_dataset(path: Path | str) -> tuple[np.ndarray, dict[str, object]]:
    """Read a dataset written by :func:`save_dataset`.

    Returns ``(data, metadata)``; metadata is empty when none was saved.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        if _DATA_KEY not in archive:
            raise ValueError(f"{path} is not a repro dataset file (missing '{_DATA_KEY}')")
        data = archive[_DATA_KEY]
        metadata: dict[str, object] = {}
        if _METADATA_KEY in archive:
            metadata = json.loads(archive[_METADATA_KEY].tobytes().decode())
    return data, metadata


def export_csv(
    path: Path | str, data: np.ndarray, column_names: list[str] | None = None
) -> Path:
    """Write a point matrix as CSV (optionally with a header row)."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if column_names is not None and len(column_names) != data.shape[1]:
        raise ValueError(
            f"{len(column_names)} column names for {data.shape[1]} columns"
        )
    header = ",".join(column_names) if column_names is not None else ""
    np.savetxt(path, data, delimiter=",", header=header, comments="")
    return path


def import_csv(path: Path | str, has_header: bool = False) -> np.ndarray:
    """Read a CSV point matrix written by :func:`export_csv` (or similar)."""
    return np.atleast_2d(
        np.loadtxt(Path(path), delimiter=",", skiprows=1 if has_header else 0)
    )


def cached_dataset(
    name: str,
    generate: Callable[[], np.ndarray],
    directory: Path | str = "data_cache",
) -> np.ndarray:
    """Generate a dataset once and reuse the on-disk copy afterwards.

    >>> import numpy as np
    >>> calls = []
    >>> def gen():
    ...     calls.append(1)
    ...     return np.zeros((3, 2))
    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     first = cached_dataset("zeros", gen, tmp)
    ...     second = cached_dataset("zeros", gen, tmp)
    >>> len(calls)
    1
    """
    path = Path(directory) / f"{name}.npz"
    if path.exists():
        data, __ = load_dataset(path)
        return data
    data = generate()
    save_dataset(path, data, metadata={"name": name})
    return data
