"""Reading back saved experiment results.

Counterpart of :func:`repro.bench.reporting.save_results`: loads the
JSON rows an experiment run persisted under ``results/`` and produces
compact summaries for reports like EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.reporting import DEFAULT_RESULTS_DIR


def load_results(name: str, directory: Path | str | None = None) -> list[dict]:
    """Load one experiment's saved rows (raises FileNotFoundError if absent)."""
    directory = Path(directory) if directory is not None else DEFAULT_RESULTS_DIR
    path = directory / f"{name}.json"
    return json.loads(path.read_text())


def results_summary(
    rows: list[dict], group_by: str, value: str
) -> dict[str, float]:
    """Collapse rows to ``{group: mean(value)}`` for quick comparisons.

    Rows missing either key, or whose value is not numeric, are skipped.
    """
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for row in rows:
        if group_by not in row or value not in row:
            continue
        raw = row[value]
        if not isinstance(raw, (int, float)) or raw != raw:  # skip NaN
            continue
        key = str(row[group_by])
        sums[key] = sums.get(key, 0.0) + float(raw)
        counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}
