"""Persistence utilities: dataset files and experiment results."""

from repro.io.datasets import (
    cached_dataset,
    export_csv,
    import_csv,
    load_dataset,
    save_dataset,
)
from repro.io.models import load_model, save_model
from repro.io.results import load_results, results_summary

__all__ = [
    "save_dataset",
    "load_dataset",
    "export_csv",
    "import_csv",
    "cached_dataset",
    "save_model",
    "load_model",
    "load_results",
    "results_summary",
]
