"""Atomic file writes: temp-then-rename, so readers never see torn output.

A benchmark or model save interrupted mid-write (SIGKILL, disk full,
container eviction) must not leave a half-written JSON or pickle where
the previous good file used to be. Every persistent artifact therefore
goes through these helpers: the payload is written to a temporary file
in the *same directory* (same filesystem, so the rename is atomic),
flushed and fsynced, and only then moved over the destination with
``os.replace`` — which on POSIX atomically swaps the directory entry.
Readers observe either the old complete file or the new complete file,
never a prefix.

After the rename, the *parent directory* is fsynced too (best-effort):
``os.replace`` makes the swap atomic in memory, but the new directory
entry itself is not durable until the directory's metadata reaches
disk — a power cut right after the rename could otherwise roll the
directory back and lose the new file entirely. Platforms that refuse
directory file descriptors simply skip this step.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table to disk, tolerating refusal.

    Opening or fsyncing a directory fd fails on some platforms and
    filesystems (e.g. Windows, some network mounts); those ``OSError``s
    are swallowed — the write itself already succeeded, durability of
    the rename is merely best-effort there.
    """
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def atomic_write_bytes(path: Path | str, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        fsync_directory(path.parent)
    except BaseException:
        # Never leave the temp file behind — the write failed, the old
        # destination (if any) is still intact.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: Path | str, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically; returns the final path."""
    return atomic_write_bytes(path, text.encode(encoding))
