"""Deadline→budget calibration and probe-workload generation.

The daemon promises an answer within each request's deadline. The only
in-process lever with that power is the anytime budget
``max_node_expansions`` (PR 3), which is denominated in node expansions
— a machine-independent unit. This module converts between the two: at
startup (and after every hot reload) it measures the model's expansions
per second on a generated probe workload via
:meth:`~repro.core.classifier.TKDCClassifier.measure_expansion_rate`,
and at request time it maps the remaining deadline to a budget through
that rate with a safety factor and a floor.

The probe workload is generated *from the model itself* (the server has
no training data): training points pulled back to data space through the
kernel bandwidth, jittered, plus far-field points beyond the data's
bounding box so the workload exercises deep traversals, prunes, and the
grid shortcut alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classifier import TKDCClassifier
from repro.estimators.select import select_engine
from repro.obs.metrics import record_engine_selected

#: Conservative expansions/sec assumed when calibration observed no
#: expansions at all (degenerate probe workload); deliberately low so
#: budgets err toward finishing early rather than blowing deadlines.
FALLBACK_RATE = 1e4


def probe_queries(
    classifier: TKDCClassifier, n: int, seed: int = 0
) -> np.ndarray:
    """Generate ``n`` probe queries in data space from a fitted model.

    Half the probes are jittered training points (dense-region work:
    grid hits and HIGH prunes), half are uniform draws over a box 1.5×
    the data extent (sparse-region work: LOW prunes and deep expansion
    near the boundary). Deterministic given ``seed``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    bandwidth = classifier.kernel.bandwidth
    # Tree points live in bandwidth-scaled space; pull them back.
    points = classifier.tree.points * bandwidth
    lo, hi = points.min(axis=0), points.max(axis=0)
    span = np.maximum(hi - lo, bandwidth)
    n_dense = max(1, n // 2)
    n_sparse = max(1, n - n_dense)
    picks = rng.integers(0, points.shape[0], size=n_dense)
    dense = points[picks] + rng.normal(size=(n_dense, points.shape[1])) * (
        0.25 * bandwidth
    )
    sparse = rng.uniform(
        lo - 0.75 * span, hi + 0.75 * span, size=(n_sparse, points.shape[1])
    )
    return np.concatenate([dense, sparse])[:n]


@dataclass(frozen=True)
class BudgetCalibration:
    """A measured deadline→budget conversion for one loaded model.

    Attributes
    ----------
    expansions_per_second:
        Measured rate (or :data:`FALLBACK_RATE` if measurement was
        degenerate) for the engine requests will actually run through.
    measured:
        Whether the rate came from a real measurement.
    sample_queries / expansions_observed:
        Provenance of the measurement, surfaced in ``/statz``.
    engine:
        The concrete engine the rate describes — the hbe engine charges
        LSH samples into the same expansion counter, but at a very
        different wall-clock rate per unit, so deadline→budget
        conversion must use the serving engine's own rate.
    engine_reason:
        Why that engine was selected (vocabulary of
        :mod:`repro.estimators.select`).
    per_engine:
        ``(engine, expansions_per_second)`` for every engine measured
        during calibration, shipped through the fleet manifest so
        workers inherit the router's measurements instead of re-probing.
    """

    expansions_per_second: float
    measured: bool
    sample_queries: int
    expansions_observed: int
    engine: str = "batch"
    engine_reason: str = "configured"
    per_engine: tuple[tuple[str, float], ...] = field(default=())

    def budget_for(
        self, remaining_seconds: float, safety: float, min_budget: int
    ) -> int:
        """Expansion budget affordable in ``remaining_seconds``.

        ``safety`` discounts the calibrated rate (concurrent requests
        share the machine; caches behave differently under load);
        ``min_budget`` guarantees even a nearly expired deadline buys a
        meaningful partial traversal rather than a root-only answer.
        """
        affordable = self.expansions_per_second * max(remaining_seconds, 0.0) * safety
        return max(min_budget, int(affordable))


def calibrate(
    classifier: TKDCClassifier,
    n_queries: int = 256,
    seed: int = 0,
    engine: str = "batch",
    engine_reason: str = "configured",
) -> BudgetCalibration:
    """Measure a fitted model's expansions/sec on a generated workload."""
    queries = probe_queries(classifier, n_queries, seed=seed)
    rate, observed = classifier.measure_expansion_rate(queries, engine=engine)
    measured = rate > 0.0
    if not measured:
        rate = FALLBACK_RATE
    return BudgetCalibration(
        expansions_per_second=rate,
        measured=measured,
        sample_queries=n_queries,
        expansions_observed=observed,
        engine=engine,
        engine_reason=engine_reason,
        per_engine=((engine, rate),),
    )


def calibrate_for_serving(
    classifier: TKDCClassifier, n_queries: int = 256, seed: int = 0
) -> BudgetCalibration:
    """Engine-aware calibration: resolve ``auto``, then rate that engine.

    Fit-time auto selection only knows the dimensionality; the serving
    layer additionally *measures*. The tree engine is probed first, and
    when the model's config left the engine on ``auto`` the measured
    expansions-per-query feeds the selection policy's expansion-rate
    rule — a low-dimensional workload whose traversals expand a large
    fraction of the index per query is re-routed to hbe (if its LOW
    decisions certify, see
    :meth:`~repro.core.classifier.TKDCClassifier.hbe_low_certifiable`).
    The final choice is pinned onto the classifier so every request —
    and every fleet worker rebuilding from the published skeleton —
    resolves ``auto`` to the identical concrete engine, and the returned
    calibration converts deadlines through *that* engine's measured
    rate.
    """
    queries = probe_queries(classifier, n_queries, seed=seed)
    batch_rate, batch_observed = classifier.measure_expansion_rate(queries)
    engine, reason = classifier.auto_selection()
    if (
        classifier.config.engine == "auto"
        and engine == "batch"
        and reason == "low_dim"
        and batch_observed > 0
    ):
        upgraded, upgrade_reason = select_engine(
            classifier.kernel.dim,
            classifier.config.kernel,
            classifier.config,
            expansions_per_query=batch_observed / max(len(queries), 1),
            n=classifier.tree.points.shape[0],
        )
        if upgraded == "hbe" and classifier.hbe_low_certifiable():
            engine, reason = upgraded, upgrade_reason
    per_engine: list[tuple[str, float]] = [
        ("batch", batch_rate if batch_rate > 0.0 else FALLBACK_RATE)
    ]
    rate, observed, measured = batch_rate, batch_observed, batch_rate > 0.0
    if engine != "batch":
        rate, observed = classifier.measure_expansion_rate(queries, engine=engine)
        measured = rate > 0.0
        if not measured:
            rate = FALLBACK_RATE
        per_engine.append((engine, rate))
    elif not measured:
        rate = FALLBACK_RATE
    classifier.engine_selected_ = engine
    classifier.engine_reason_ = reason
    record_engine_selected(engine, reason)
    return BudgetCalibration(
        expansions_per_second=rate,
        measured=measured,
        sample_queries=n_queries,
        expansions_observed=observed,
        engine=engine,
        engine_reason=reason,
        per_engine=tuple(per_engine),
    )
