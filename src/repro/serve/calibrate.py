"""Deadline→budget calibration and probe-workload generation.

The daemon promises an answer within each request's deadline. The only
in-process lever with that power is the anytime budget
``max_node_expansions`` (PR 3), which is denominated in node expansions
— a machine-independent unit. This module converts between the two: at
startup (and after every hot reload) it measures the model's expansions
per second on a generated probe workload via
:meth:`~repro.core.classifier.TKDCClassifier.measure_expansion_rate`,
and at request time it maps the remaining deadline to a budget through
that rate with a safety factor and a floor.

The probe workload is generated *from the model itself* (the server has
no training data): training points pulled back to data space through the
kernel bandwidth, jittered, plus far-field points beyond the data's
bounding box so the workload exercises deep traversals, prunes, and the
grid shortcut alike.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier import TKDCClassifier

#: Conservative expansions/sec assumed when calibration observed no
#: expansions at all (degenerate probe workload); deliberately low so
#: budgets err toward finishing early rather than blowing deadlines.
FALLBACK_RATE = 1e4


def probe_queries(
    classifier: TKDCClassifier, n: int, seed: int = 0
) -> np.ndarray:
    """Generate ``n`` probe queries in data space from a fitted model.

    Half the probes are jittered training points (dense-region work:
    grid hits and HIGH prunes), half are uniform draws over a box 1.5×
    the data extent (sparse-region work: LOW prunes and deep expansion
    near the boundary). Deterministic given ``seed``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    bandwidth = classifier.kernel.bandwidth
    # Tree points live in bandwidth-scaled space; pull them back.
    points = classifier.tree.points * bandwidth
    lo, hi = points.min(axis=0), points.max(axis=0)
    span = np.maximum(hi - lo, bandwidth)
    n_dense = max(1, n // 2)
    n_sparse = max(1, n - n_dense)
    picks = rng.integers(0, points.shape[0], size=n_dense)
    dense = points[picks] + rng.normal(size=(n_dense, points.shape[1])) * (
        0.25 * bandwidth
    )
    sparse = rng.uniform(
        lo - 0.75 * span, hi + 0.75 * span, size=(n_sparse, points.shape[1])
    )
    return np.concatenate([dense, sparse])[:n]


@dataclass(frozen=True)
class BudgetCalibration:
    """A measured deadline→budget conversion for one loaded model.

    Attributes
    ----------
    expansions_per_second:
        Measured rate (or :data:`FALLBACK_RATE` if measurement was
        degenerate).
    measured:
        Whether the rate came from a real measurement.
    sample_queries / expansions_observed:
        Provenance of the measurement, surfaced in ``/statz``.
    """

    expansions_per_second: float
    measured: bool
    sample_queries: int
    expansions_observed: int

    def budget_for(
        self, remaining_seconds: float, safety: float, min_budget: int
    ) -> int:
        """Expansion budget affordable in ``remaining_seconds``.

        ``safety`` discounts the calibrated rate (concurrent requests
        share the machine; caches behave differently under load);
        ``min_budget`` guarantees even a nearly expired deadline buys a
        meaningful partial traversal rather than a root-only answer.
        """
        affordable = self.expansions_per_second * max(remaining_seconds, 0.0) * safety
        return max(min_budget, int(affordable))


def calibrate(
    classifier: TKDCClassifier, n_queries: int = 256, seed: int = 0
) -> BudgetCalibration:
    """Measure a fitted model's expansions/sec on a generated workload."""
    queries = probe_queries(classifier, n_queries, seed=seed)
    rate, observed = classifier.measure_expansion_rate(queries)
    if rate <= 0.0:
        return BudgetCalibration(
            expansions_per_second=FALLBACK_RATE,
            measured=False,
            sample_queries=n_queries,
            expansions_observed=observed,
        )
    return BudgetCalibration(
        expansions_per_second=rate,
        measured=True,
        sample_queries=n_queries,
        expansions_observed=observed,
    )
