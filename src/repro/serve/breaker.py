"""Closed / open / half-open circuit breaker for the serving daemon.

The breaker watches a sliding window of per-request outcomes, where a
*failure* is either a handler error or an exact-``O(n)`` guard fallback
(the traversal's own "something is structurally wrong" signal — see
``docs/robustness.md``). When the failure rate over at least
``min_requests`` observations reaches ``threshold``, the breaker
*opens*: requests are served fast degraded answers (a tiny anytime
budget) instead of hammering a misbehaving pipeline. After ``cooldown``
seconds it becomes *half-open* and admits up to ``probes`` full-service
probe requests; ``probes`` consecutive probe successes close it (window
cleared), any probe failure re-opens it and restarts the cooldown.

The clock is injectable so tests drive transitions deterministically
without sleeping. All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Service modes handed out by :meth:`CircuitBreaker.admit`.
MODE_FULL = "full"  #: normal service, outcome feeds the window
MODE_PROBE = "probe"  #: half-open trial request at full service
MODE_DEGRADED = "degraded"  #: breaker open: fast degraded service


class CircuitBreaker:
    """Latching failure-rate breaker with half-open recovery probes."""

    def __init__(
        self,
        window: int = 64,
        min_requests: int = 16,
        threshold: float = 0.5,
        cooldown: float = 5.0,
        probes: int = 3,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if min_requests > window:
            raise ValueError(
                f"min_requests ({min_requests}) cannot exceed window ({window})"
            )
        self._lock = threading.Lock()
        self._window = window
        self._min_requests = min_requests
        self._threshold = threshold
        self._cooldown = cooldown
        self._probes = probes
        self._clock = clock
        self._on_transition = on_transition
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    @property
    def state(self) -> str:
        """Current state, advancing open→half-open on cooldown expiry."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    def admit(self) -> str:
        """Pick the service mode for one request (thread-safe).

        Returns :data:`MODE_FULL`, :data:`MODE_PROBE`, or
        :data:`MODE_DEGRADED`. Every admitted request must later call
        :meth:`record` with the same mode exactly once — probes hold a
        slot that only :meth:`record` releases.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return MODE_FULL
            if self._state == HALF_OPEN and self._probes_in_flight < self._probes:
                self._probes_in_flight += 1
                return MODE_PROBE
            return MODE_DEGRADED

    def record(self, failure: bool, mode: str = MODE_FULL) -> None:
        """Feed one request's outcome back (must match its admit mode)."""
        with self._lock:
            if mode == MODE_PROBE:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if failure:
                    self._trip(OPEN)
                    return
                self._probe_successes += 1
                if self._probe_successes >= self._probes:
                    self._transition(CLOSED)
                    self._outcomes.clear()
                return
            if mode == MODE_DEGRADED:
                # Open-state degraded service never touches the window:
                # a tiny-budget answer says nothing about pipeline health.
                return
            self._outcomes.append(bool(failure))
            if (
                self._state == CLOSED
                and len(self._outcomes) >= self._min_requests
                and sum(self._outcomes) / len(self._outcomes) >= self._threshold
            ):
                self._trip(OPEN)

    # -- internals (lock held) -------------------------------------------

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self._cooldown
        ):
            self._transition(HALF_OPEN)

    def _trip(self, state: str) -> None:
        self._opened_at = self._clock()
        self._transition(state)

    def _transition(self, new: str) -> None:
        if new == self._state:
            return
        old = self._state
        self._state = new
        if new in (OPEN, CLOSED):
            self._probes_in_flight = 0
            self._probe_successes = 0
        if self._on_transition is not None:
            self._on_transition(old, new)
