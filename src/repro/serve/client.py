"""Minimal stdlib HTTP client for the tKDC daemon.

For tests, benchmarks, and quick scripting — not a general SDK. Every
call opens a fresh connection (thread-safe by construction) and returns
``(status_code, decoded_json)`` without raising on HTTP error statuses:
the daemon's structured 4xx/5xx bodies *are* the interesting payload
for robustness tests. Network-level failures (refused connection,
socket timeout) do raise.
"""

from __future__ import annotations

import json
import socket
import time
from http.client import HTTPConnection


class ServeClient:
    """Talk to one daemon instance at ``host:port``."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> HTTPConnection:
        """Fresh connection with Nagle disabled (small-payload latency)."""
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        connection.connect()
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return connection

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        """One HTTP exchange; returns ``(status, json_payload)``."""
        connection = self._connect()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"raw": raw.decode("utf-8", errors="replace")}
            return response.status, decoded
        finally:
            connection.close()

    def request_text(self, method: str, path: str) -> tuple[int, str]:
        """One HTTP exchange returning the raw body undecoded as JSON.

        For text endpoints like ``/metrics`` where the Prometheus
        exposition format must be preserved verbatim.
        """
        connection = self._connect()
        try:
            connection.request(method, path)
            response = connection.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            connection.close()

    # -- endpoint wrappers ------------------------------------------------

    def healthz(self) -> tuple[int, dict]:
        return self.request("GET", "/healthz")

    def readyz(self) -> tuple[int, dict]:
        return self.request("GET", "/readyz")

    def statz(self) -> tuple[int, dict]:
        return self.request("GET", "/statz")

    def metrics(self) -> tuple[int, str]:
        """Scrape ``/metrics``; returns the Prometheus text body."""
        return self.request_text("GET", "/metrics")

    def classify(
        self,
        points,
        deadline_ms: float | None = None,
    ) -> tuple[int, dict]:
        """POST a batch of query points (list of rows or numpy array)."""
        rows = points.tolist() if hasattr(points, "tolist") else points
        body: dict = {"points": rows}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self.request("POST", "/classify", body)

    def ingest(
        self,
        points,
        source: str | None = None,
        seq: int | None = None,
    ) -> tuple[int, dict]:
        """POST a batch to ``/ingest`` (streaming servers only).

        ``(source, seq)`` is the optional idempotency key; pass the same
        pair to retry a batch without risking a double-ingest.
        """
        rows = points.tolist() if hasattr(points, "tolist") else points
        body: dict = {"points": rows}
        if source is not None and seq is not None:
            body["batch"] = {"source": source, "seq": int(seq)}
        return self.request("POST", "/ingest", body)

    def reload(self, path: str | None = None) -> tuple[int, dict]:
        body = {} if path is None else {"path": str(path)}
        return self.request("POST", "/admin/reload", body)

    def drain(self) -> tuple[int, dict]:
        return self.request("POST", "/admin/drain", {})

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> bool:
        """Poll ``/readyz`` until it answers 200 or ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                status, __ = self.readyz()
            except OSError:
                status = 0
            if status == 200:
                return True
            time.sleep(interval)
        return False
