"""Model lifecycle for the daemon: load, verified hot reload, rollback.

A long-running server cannot afford ``load → crash`` semantics for a
bad model file. :class:`ModelManager` owns the live classifier and
enforces a three-stage reload protocol:

1. **Integrity** — the candidate file is loaded through
   :func:`repro.io.models.load_model`, which verifies the sha256 footer
   and format magic *before unpickling*; a truncated or bit-flipped
   file raises :class:`~repro.io.models.ModelIntegrityError` and the
   reload is refused.
2. **Canary** — the candidate classifies a generated probe workload
   (budgeted, in-process) and the result is sanity-checked: correct
   shape, valid labels, ordered finite bounds, finite threshold. A model
   that deserializes but cannot classify is refused.
3. **Swap** — only after both stages pass is the live reference
   replaced (a single attribute assignment under a lock — in-flight
   requests keep the classifier object they already grabbed), and the
   deadline→budget calibration is re-measured for the new model.

Any failure leaves the previous model serving ("rollback" is the
absence of the swap), increments ``reloads_failed``, and is reported in
the returned :class:`ReloadResult` so the admin endpoint and logs can
alert.
"""

from __future__ import annotations

import copy
import logging
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.classifier import TKDCClassifier
from repro.core.result import ClassificationResult, Label
from repro.core.stats import TraversalStats
from repro.io.models import load_model, resolve_model_path
from repro.serve.calibrate import (
    BudgetCalibration,
    calibrate_for_serving,
    probe_queries,
)
from repro.serve.config import ServeConfig
from repro.serve.stats import ServerStats

log = logging.getLogger("repro.serve")

#: TraversalStats.extras key counting exact-O(n) guard fallbacks (see
#: repro.core.bounds.EXACT_FALLBACKS_KEY; duplicated literal to avoid a
#: heavy import chain here).
_FALLBACKS_KEY = "guard_exact_fallbacks"

#: Valid label values a canary classification may produce.
_VALID_LABELS = frozenset(int(label) for label in Label)


class CanaryError(RuntimeError):
    """A candidate model deserialized but failed its canary checks."""


def run_canary(candidate: TKDCClassifier, n_queries: int, seed: int) -> None:
    """Held-out probe classification a candidate must survive.

    Shared by :class:`ModelManager` and the streaming pipeline's
    standalone swap path, so a refit product faces the same canary
    whether or not a daemon is attached. Raises :class:`CanaryError`
    (or whatever the classify itself raises) on any failure.
    """
    probes = probe_queries(candidate, n_queries, seed=seed)
    clone = copy.copy(candidate)
    clone._stats = TraversalStats()
    result = clone.classify_detailed(probes)
    n = probes.shape[0]
    shapes = (
        result.labels.shape == (n,)
        and result.lower.shape == (n,)
        and result.upper.shape == (n,)
    )
    if not shapes:
        raise CanaryError(f"canary returned wrong shapes for {n} probes")
    if not all(int(label) in _VALID_LABELS for label in result.labels):
        raise CanaryError("canary produced labels outside LOW/HIGH/UNCERTAIN")
    lower = np.asarray(result.lower, dtype=float)
    upper = np.asarray(result.upper, dtype=float)
    if not (np.all(np.isfinite(lower)) and np.all(lower >= 0.0)):
        raise CanaryError("canary produced non-finite or negative lower bounds")
    if not np.all(lower <= upper):
        raise CanaryError("canary produced inverted density bounds")
    threshold = float(result.threshold)
    if not (np.isfinite(threshold) and threshold >= 0.0):
        raise CanaryError(f"canary threshold is invalid: {threshold}")
    if bool(np.all(result.invalid)):
        raise CanaryError("canary flagged every probe row invalid")


def prepare_classifier(classifier: TKDCClassifier) -> TKDCClassifier:
    """Pin serving-safe config and pre-build shared read-only state.

    Used by the single-process manager and the fleet router alike, so a
    model serves under identical semantics in both modes.
    """
    if not classifier.is_fitted:
        raise ValueError("model file contains an unfitted classifier")
    # flag: bad rows become UNCERTAIN instead of batch-level errors;
    # n_jobs=1: request concurrency comes from handler threads (or the
    # worker fleet), not a per-request process pool.
    classifier.config = classifier.config.with_updates(
        query_policy="flag", n_jobs=1
    )
    # Build the flat tree once before threads share the object.
    classifier.tree.flatten()
    return classifier


@dataclass(frozen=True)
class ReloadResult:
    """Outcome of one reload attempt (JSON-ready via ``as_dict``)."""

    ok: bool
    stage: str  #: "swapped", or the stage that refused: "load"/"canary"
    model_path: str
    error: str | None = None
    threshold: float | None = None
    expansions_per_second: float | None = None
    engine: str | None = None
    engine_reason: str | None = None

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "stage": self.stage,
            "model_path": self.model_path,
            "error": self.error,
            "threshold": self.threshold,
            "expansions_per_second": self.expansions_per_second,
            "engine": self.engine,
            "engine_reason": self.engine_reason,
        }


class ModelManager:
    """Owns the live classifier, its calibration, and the reload protocol.

    ``classify`` is safe to call from many handler threads at once: the
    live classifier is grabbed once per request (reference assignment is
    atomic), and per-request budgets are applied to a shallow *clone*
    with its own config and stats object — the shared index arrays are
    read-only — so concurrent requests with different budgets never race
    on configuration, and per-request fallback counts are exact.
    """

    def __init__(
        self,
        model_path: Path | str,
        config: ServeConfig,
        stats: ServerStats | None = None,
        classifier: TKDCClassifier | None = None,
        calibration: BudgetCalibration | None = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else ServerStats()
        self._lock = threading.RLock()
        self._traversal_totals = TraversalStats()
        #: Test seam: called with the query matrix before every classify;
        #: fault-injection tests make it stall or raise deterministically.
        self.classify_hook: Callable[[np.ndarray], None] | None = None
        if classifier is None:
            self.model_path = resolve_model_path(model_path)
            classifier = load_model(self.model_path)
        else:
            self.model_path = Path(model_path)
        self._classifier = self._prepare(classifier)
        # Fleet workers inject the router-measured calibration (shipped
        # via the shm manifest) so the fleet boots with one measurement
        # and every worker maps deadlines to budgets identically.
        if calibration is not None:
            self.calibration = calibration
            # A worker that inherits the router's calibration must also
            # resolve engine="auto" exactly the way the router did —
            # label parity across the fleet depends on it.
            self._classifier.engine_selected_ = calibration.engine
            self._classifier.engine_reason_ = calibration.engine_reason
        else:
            self.calibration = calibrate_for_serving(
                self._classifier, config.calibration_queries, seed=config.probe_seed
            )
        log.info(
            "model %s loaded: threshold=%.6g, %.3g expansions/s (%s), engine=%s (%s)",
            self.model_path, self._classifier.threshold.value,
            self.calibration.expansions_per_second,
            "measured" if self.calibration.measured else "fallback",
            self.calibration.engine, self.calibration.engine_reason,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    @property
    def classifier(self) -> TKDCClassifier:
        return self._classifier

    def budget_for(self, remaining_seconds: float) -> int:
        return self.calibration.budget_for(
            remaining_seconds, self.config.budget_safety, self.config.min_budget
        )

    def classify(
        self, points: np.ndarray, budget: int | None, stream=None
    ) -> tuple[ClassificationResult, int]:
        """Budgeted detailed classification; returns (result, fallbacks).

        ``fallbacks`` counts exact-O(n) guard fallbacks this request
        triggered — the breaker's structural-failure signal.

        ``stream`` (an :class:`~repro.core.incremental.IncrementalTKDC`
        snapshot from ``StreamingPipeline.serving_view()``) routes the
        request through the combined-density streaming path: the same
        per-request budget clone serves, but every ingested point's
        exact buffer contribution is folded into the decision
        (``docs/streaming.md``). The snapshot carries its own classifier
        reference so counts and threshold stay coherent mid-swap.
        """
        if self.classify_hook is not None:
            self.classify_hook(points)
        live = stream.classifier if stream is not None else self._classifier
        clone = copy.copy(live)
        clone.config = live.config.with_updates(max_node_expansions=budget)
        clone._stats = TraversalStats()
        if stream is not None:
            shim = copy.copy(stream)
            shim._classifier = clone
            result = shim.classify_detailed(points)
        else:
            result = clone.classify_detailed(points)
        fallbacks = int(clone._stats.extras.get(_FALLBACKS_KEY, 0.0))
        with self._lock:
            self._traversal_totals.merge(clone._stats)
        if fallbacks:
            self.stats.bump("exact_fallbacks", fallbacks)
        return result, fallbacks

    def traversal_snapshot(self) -> dict[str, float]:
        with self._lock:
            return self._traversal_totals.snapshot()

    # ------------------------------------------------------------------
    # Reload
    # ------------------------------------------------------------------

    def reload(self, path: Path | str | None = None) -> ReloadResult:
        """Run the verify-then-swap protocol; never disturbs the live model
        on failure."""
        requested = path if path is not None else self.model_path
        try:
            candidate_path = resolve_model_path(requested)
            candidate = load_model(candidate_path)
        except Exception as exc:
            return self._refused(requested, "load", exc)
        candidate = self._prepare(candidate)
        try:
            self._canary(candidate)
        except Exception as exc:
            return self._refused(candidate_path, "canary", exc)
        calibration = calibrate_for_serving(
            candidate, self.config.calibration_queries, seed=self.config.probe_seed
        )
        with self._lock:
            self._classifier = candidate
            self.calibration = calibration
            self.model_path = Path(candidate_path)
        self.stats.bump("reloads_ok")
        log.info(
            "hot reload swapped in %s (threshold=%.6g, %.3g expansions/s, engine=%s)",
            candidate_path, candidate.threshold.value,
            calibration.expansions_per_second, calibration.engine,
        )
        return ReloadResult(
            ok=True,
            stage="swapped",
            model_path=str(candidate_path),
            threshold=candidate.threshold.value,
            expansions_per_second=calibration.expansions_per_second,
            engine=calibration.engine,
            engine_reason=calibration.engine_reason,
        )

    def _refused(
        self, path: Path | str, stage: str, exc: Exception
    ) -> ReloadResult:
        self.stats.bump("reloads_failed")
        log.error(
            "hot reload REFUSED at %s stage for %s: %s: %s "
            "(previous model %s keeps serving)",
            stage, path, type(exc).__name__, exc, self.model_path,
        )
        return ReloadResult(
            ok=False,
            stage=stage,
            model_path=str(path),
            error=f"{type(exc).__name__}: {exc}",
        )

    def _prepare(self, classifier: TKDCClassifier) -> TKDCClassifier:
        """Pin serving-safe config and pre-build shared read-only state."""
        return prepare_classifier(classifier)

    def _canary(self, candidate: TKDCClassifier) -> None:
        """Held-out probe classification a candidate must survive."""
        run_canary(
            candidate, self.config.canary_queries, seed=self.config.probe_seed
        )
