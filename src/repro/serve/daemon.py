"""The resilient tKDC serving daemon (stdlib-only HTTP).

Four robustness layers wrap every classification request:

1. **Admission control** — at most ``max_concurrency`` requests
   classify at once; up to ``queue_depth`` more wait. Anything beyond
   that is shed *immediately* with a structured 429 carrying
   ``retry_after``, so overload degrades throughput instead of latency.
   Per-request byte and row limits reject oversized work before it
   costs anything.
2. **Deadline propagation** — each request carries ``deadline_ms``
   (bounded by ``max_deadline``). The remaining deadline at execution
   start is translated into a per-query ``max_node_expansions`` anytime
   budget through the startup-calibrated expansions/sec rate, so the
   traversal *finishes early with honest partial answers*
   (``degraded``/``UNCERTAIN`` flags from ``classify_detailed``) rather
   than blowing the deadline. A hard watchdog converts a wedged handler
   into a 503 at ``deadline + watchdog_grace``.
3. **Circuit breaking** — per-request errors and exact-O(n) guard
   fallbacks feed a closed/open/half-open breaker
   (:mod:`repro.serve.breaker`). Open state serves fast degraded
   answers (tiny budget); half-open probes test recovery.
4. **Verified hot reload + graceful drain** — ``SIGHUP`` or
   ``POST /admin/reload`` runs the checksum + canary reload protocol
   (:mod:`repro.serve.reload`); failures roll back. ``SIGTERM`` (or
   ``POST /admin/drain``) stops admitting, waits for in-flight work,
   then shuts the listener down.

``/healthz``, ``/readyz``, and ``/statz`` expose liveness, readiness,
and the full counter set; ``/metrics`` serves the same counters (plus
latency and node-expansion histograms) in Prometheus text format from
the shared metrics registry (see ``docs/observability.md``). Endpoint
reference: ``docs/serving.md``.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from repro.obs.buildinfo import build_info
from repro.obs.registry import REGISTRY, render_prometheus
from repro.serve.breaker import MODE_DEGRADED, CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.reload import ModelManager
from repro.serve.stats import ServerStats

log = logging.getLogger("repro.serve")


class AdmissionController:
    """Bounded-queue admission: a capacity gate plus execution slots.

    ``try_admit`` is the load-shedding decision (capacity =
    concurrency + queue depth); ``acquire_slot`` is the queue wait for
    one of the ``max_concurrency`` execution slots, bounded by the
    request's own remaining deadline.
    """

    def __init__(self, max_concurrency: int, queue_depth: int) -> None:
        self.capacity = max_concurrency + queue_depth
        self._lock = threading.Lock()
        self._admitted = 0
        self._slots = threading.Semaphore(max_concurrency)

    def try_admit(self) -> bool:
        with self._lock:
            if self._admitted >= self.capacity:
                return False
            self._admitted += 1
            return True

    def acquire_slot(self, timeout: float) -> bool:
        return self._slots.acquire(timeout=max(timeout, 0.0))

    def release(self, slot_held: bool) -> None:
        if slot_held:
            self._slots.release()
        with self._lock:
            self._admitted -= 1

    def admitted(self) -> int:
        with self._lock:
            return self._admitted


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server object; all policy lives there."""

    server: "TKDCServer"
    protocol_version = "HTTP/1.1"
    # Small request/response pairs on keep-alive connections are exactly
    # the Nagle/delayed-ACK interaction case; answer latency should be
    # classify time, not TCP timer time. Matters doubly for the fleet
    # router's extra loopback hop (repro.serve.router).
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        log.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, self.server.healthz())
        elif self.path == "/readyz":
            ready, payload = self.server.readyz()
            self._send_json(200 if ready else 503, payload)
        elif self.path == "/statz":
            self._send_json(200, self.server.statz())
        elif self.path == "/metrics":
            self._send_text(
                200, self.server.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_json(404, {"error": "not_found", "path": self.path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        received_at = time.monotonic()
        length = int(self.headers.get("Content-Length") or 0)
        if self.path == "/classify":
            if length > self.server.serve_config.max_request_bytes:
                # Refuse without reading the oversized body; the unread
                # bytes make the connection unusable, so close it.
                self.close_connection = True
                self._send_json(*self.server.reject_oversized(length), {})
                return
            raw = self.rfile.read(length) if length else b""
            status, payload, headers = self.server.handle_classify(raw, received_at)
            self._send_json(status, payload, headers)
        elif self.path == "/ingest":
            if length > self.server.serve_config.max_request_bytes:
                self.close_connection = True
                self._send_json(*self.server.reject_oversized_ingest(length))
                return
            raw = self.rfile.read(length) if length else b""
            status, payload = self.server.handle_ingest(raw)
            self._send_json(status, payload)
        elif self.path == "/admin/reload":
            raw = self.rfile.read(length) if length else b""
            status, payload = self.server.handle_reload(raw)
            self._send_json(status, payload)
        elif self.path == "/admin/adopt-ingest":
            raw = self.rfile.read(length) if length else b""
            status, payload = self.server.handle_adopt_ingest(raw)
            self._send_json(status, payload)
        elif self.path == "/admin/drain":
            self.server.initiate_drain()
            self._send_json(202, {
                "status": "draining",
                "drain_timeout": self.server.serve_config.drain_timeout,
            })
        else:
            self._send_json(404, {"error": "not_found", "path": self.path})


class TKDCServer(ThreadingHTTPServer):
    """Threaded HTTP server wrapping a :class:`ModelManager`.

    One OS thread per connection (stdlib ``ThreadingHTTPServer``);
    classification concurrency is governed by the admission controller,
    not the thread count. All handler logic lives in methods here so
    tests can drive the policy layer without sockets too.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        manager: ModelManager,
        serve_config: ServeConfig | None = None,
        stats: ServerStats | None = None,
    ) -> None:
        config = serve_config if serve_config is not None else manager.config
        self.serve_config = config
        self.manager = manager
        self.stats = stats if stats is not None else manager.stats
        self.admission = AdmissionController(
            config.max_concurrency, config.queue_depth
        )
        self.breaker = CircuitBreaker(
            window=config.breaker_window,
            min_requests=config.breaker_min_requests,
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
            probes=config.breaker_probes,
            on_transition=self._on_breaker_transition,
        )
        self.draining = threading.Event()
        self._started_at = time.monotonic()
        #: Optional streaming pipeline behind /ingest (attach_pipeline).
        self.pipeline = None
        super().__init__((config.host, config.port), _Handler)

    def attach_pipeline(self, pipeline, start: bool = True) -> None:
        """Enable /ingest: fold points into ``pipeline`` and (optionally)
        start its background drift-check loop.

        The pipeline's reloader should be this server's manager so
        drift-triggered refits swap the *served* model through the
        verified reload path.
        """
        self.pipeline = pipeline
        if start:
            pipeline.start()

    @property
    def port(self) -> int:
        """The actually bound port (resolves port 0 to the ephemeral one)."""
        return self.server_address[1]

    # ------------------------------------------------------------------
    # Observability endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    def readyz(self) -> tuple[bool, dict]:
        if self.draining.is_set():
            return False, {"status": "draining"}
        return True, {
            "status": "ready",
            "model_path": str(self.manager.model_path),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition: serve counters + process metrics.

        Merges the server's own registry (request accounting, latency
        histogram) with the process-wide one (traversal, guard, and
        bootstrap instruments recorded by the classifier running inside
        this daemon). Both feed off the same cells ``/statz`` reads, so
        the two endpoints cannot disagree.
        """
        registries = (
            (self.stats.registry,)
            if self.stats.registry is REGISTRY
            else (self.stats.registry, REGISTRY)
        )
        return render_prometheus(*registries)

    def statz(self) -> dict:
        snapshot = self.stats.snapshot()
        snapshot.update({
            "build": build_info(),
            "breaker": self.breaker.state,
            "breaker_failure_rate": round(self.breaker.failure_rate(), 4),
            "draining": self.draining.is_set(),
            "admitted": self.admission.admitted(),
            "queue_capacity": self.admission.capacity,
            "model_path": str(self.manager.model_path),
            "threshold": float(self.manager.classifier.threshold.value),
            "expansions_per_second": self.manager.calibration.expansions_per_second,
            "calibration_measured": self.manager.calibration.measured,
            "engine": self.manager.calibration.engine,
            "engine_reason": self.manager.calibration.engine_reason,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "traversal": self.manager.traversal_snapshot(),
        })
        if self.pipeline is not None:
            snapshot["streaming"] = self.pipeline.status()
        return snapshot

    # ------------------------------------------------------------------
    # Classification pipeline
    # ------------------------------------------------------------------

    def reject_oversized(self, length: int) -> tuple[int, dict]:
        """Terminal accounting for a body refused before it was read."""
        self.stats.bump("submitted")
        self.stats.bump("rejected")
        return 413, {
            "error": "request_too_large",
            "max_request_bytes": self.serve_config.max_request_bytes,
            "received_bytes": length,
        }

    def reject_oversized_ingest(self, length: int) -> tuple[int, dict]:
        """Terminal accounting for an ingest body refused unread."""
        self.stats.bump("ingest_submitted")
        self.stats.bump("ingest_rejected")
        return 413, {
            "error": "request_too_large",
            "max_request_bytes": self.serve_config.max_request_bytes,
            "received_bytes": length,
        }

    def handle_ingest(self, raw: bytes) -> tuple[int, dict]:
        """Fold a batch of points into the attached streaming pipeline.

        Accounting: every request increments ``ingest_submitted`` and
        exactly one of ``ingest_completed`` / ``ingest_rejected``;
        accepted rows also bump ``ingested_points``. Draining servers
        refuse ingest like everything else.
        """
        stats = self.stats
        stats.bump("ingest_submitted")
        if self.pipeline is None:
            stats.bump("ingest_rejected")
            return 409, {
                "error": "no_streaming_pipeline",
                "detail": "this server was started without --streaming",
            }
        if self.draining.is_set():
            stats.bump("ingest_rejected")
            return 503, {"error": "draining"}
        if len(raw) > self.serve_config.max_request_bytes:
            stats.bump("ingest_rejected")
            return 413, {
                "error": "request_too_large",
                "max_request_bytes": self.serve_config.max_request_bytes,
                "received_bytes": len(raw),
            }
        try:
            points, _deadline, body = self._parse_request(raw)
        except _BadRequest as exc:
            stats.bump("ingest_rejected")
            return exc.status, exc.payload
        source: str | None = None
        source_seq: int | None = None
        batch = body.get("batch")
        if batch is not None:
            # Idempotency key stamped by the fleet router: a retried
            # forward after an owner failure reuses the same (source,
            # seq), so the WAL-replayed dedup state makes it a no-op.
            if (
                not isinstance(batch, dict)
                or not isinstance(batch.get("source"), str)
                or not isinstance(batch.get("seq"), int)
            ):
                stats.bump("ingest_rejected")
                return 400, {
                    "error": "bad_request",
                    "detail": "'batch' must be {'source': str, 'seq': int}",
                }
            source, source_seq = batch["source"], batch["seq"]
        try:
            outcome = self.pipeline.ingest_batch(
                points, source=source, source_seq=source_seq
            )
        except ValueError as exc:  # dimensionality mismatch
            stats.bump("ingest_rejected")
            return 400, {"error": "bad_request", "detail": str(exc)}
        accepted = int(outcome["accepted"])
        stats.bump("ingest_completed")
        if accepted:
            stats.bump("ingested_points", accepted)
        status = self.pipeline.status()
        return 200, {
            "ingested": accepted,
            "duplicate": bool(outcome["duplicate"]),
            "durable": self.pipeline.wal is not None,
            "n_total": status["n_total"],
            "generation": status["generation"],
            "staleness_seconds": status["staleness_seconds"],
            "window_fill": status["window_fill"],
        }

    def handle_adopt_ingest(self, raw: bytes) -> tuple[int, dict]:
        """Become the ingest owner for a WAL directory (fleet protocol).

        The router elects one worker as ingest owner by POSTing
        ``{"wal_dir": ..., "settings": {...}, "start": false}`` here; the
        worker recovers the WAL (replaying whatever the previous owner
        acknowledged before dying) and serves ``/ingest`` from then on.
        The WAL's flock makes double ownership impossible: a 409 means
        the previous owner still holds the log. Idempotent for the same
        ``wal_dir``.
        """
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": "bad_request", "detail": f"invalid JSON: {exc}"}
        if not isinstance(body, dict) or "wal_dir" not in body:
            return 400, {
                "error": "bad_request",
                "detail": "body must be a JSON object with 'wal_dir'",
            }
        wal_dir = Path(body["wal_dir"])
        if self.pipeline is not None:
            current = getattr(self.pipeline, "wal", None)
            if current is not None and Path(current.directory) == wal_dir:
                return 200, {
                    "status": "already_owner",
                    "n_total": int(self.pipeline.model.n_total),
                    "generation": int(self.pipeline.model.generation),
                }
            return 409, {
                "error": "pipeline_already_attached",
                "detail": "this server already runs a different pipeline",
            }
        from repro.streaming import StreamingPipeline, StreamSettings
        from repro.streaming.wal import WalLockedError

        try:
            settings = StreamSettings(**(body.get("settings") or {}))
        except (TypeError, ValueError) as exc:
            return 400, {"error": "bad_request", "detail": f"bad settings: {exc}"}
        try:
            pipeline = StreamingPipeline.recover(
                wal_dir,
                settings=settings,
                fallback_classifier=self.manager.classifier,
                reloader=self.manager,
            )
        except WalLockedError as exc:
            return 409, {"error": "wal_locked", "detail": str(exc)}
        except Exception as exc:  # noqa: BLE001 - reported to the router
            log.error("adopt-ingest recovery failed: %s: %s",
                      type(exc).__name__, exc)
            return 500, {
                "error": "recovery_failed",
                "detail": f"{type(exc).__name__}: {exc}",
            }
        self.attach_pipeline(pipeline, start=bool(body.get("start", False)))
        return 200, {
            "status": "adopted",
            "recovery": pipeline.recovery,
            "n_total": int(pipeline.model.n_total),
            "generation": int(pipeline.model.generation),
            "ingested_total": int(pipeline.ingested_total),
        }

    def _retry_after(self) -> float:
        backlog = self.admission.admitted() / max(self.admission.capacity, 1)
        return round(self.serve_config.retry_after * (1.0 + backlog), 3)

    def handle_classify(
        self, raw: bytes, received_at: float
    ) -> tuple[int, dict, dict]:
        """The full admission → deadline → breaker → watchdog pipeline.

        Returns ``(status, json_payload, extra_headers)``. Every path
        increments ``submitted`` and exactly one terminal counter — the
        accounting invariant the soak test asserts.
        """
        config = self.serve_config
        stats = self.stats
        stats.bump("submitted")
        if self.draining.is_set():
            stats.bump("drained")
            retry = self._retry_after()
            return 503, {"error": "draining", "retry_after": retry}, {
                "Retry-After": retry,
            }
        if len(raw) > config.max_request_bytes:
            stats.bump("rejected")
            return 413, {
                "error": "request_too_large",
                "max_request_bytes": config.max_request_bytes,
                "received_bytes": len(raw),
            }, {}

        try:
            points, deadline_s, _body = self._parse_request(raw)
        except _BadRequest as exc:
            stats.bump("rejected")
            return exc.status, exc.payload, {}
        deadline = received_at + deadline_s

        if not self.admission.try_admit():
            stats.bump("shed")
            retry = self._retry_after()
            return 429, {
                "error": "overloaded",
                "retry_after": retry,
                "queue_capacity": self.admission.capacity,
            }, {"Retry-After": retry}
        stats.bump("accepted")

        slot_held = False
        try:
            wait = deadline - time.monotonic()
            if wait <= 0.0 or not self.admission.acquire_slot(wait):
                stats.bump("shed")
                retry = self._retry_after()
                return 429, {
                    "error": "overloaded",
                    "detail": "no execution slot within the request deadline",
                    "retry_after": retry,
                }, {"Retry-After": retry}
            slot_held = True

            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                stats.bump("timed_out")
                return 503, {
                    "error": "deadline_exceeded",
                    "detail": "deadline expired while queued",
                }, {}

            mode = self.breaker.admit()
            budget = (
                config.open_budget
                if mode == MODE_DEGRADED
                else self.manager.budget_for(remaining)
            )
            return self._run_with_watchdog(
                points, budget, mode, remaining, deadline_s, received_at
            )
        finally:
            self.admission.release(slot_held)

    def _run_with_watchdog(
        self,
        points: np.ndarray,
        budget: int,
        mode: str,
        remaining: float,
        deadline_s: float,
        received_at: float,
    ) -> tuple[int, dict, dict]:
        config = self.serve_config
        stats = self.stats
        box: dict[str, object] = {}
        done = threading.Event()

        def work() -> None:
            try:
                # With a streaming pipeline attached, serve the
                # combined density (ingested points answered exactly
                # via the snapshot's buffer). Snapshotting inside the
                # watchdogged worker keeps a wedged pipeline lock from
                # hanging the handler thread.
                stream = (
                    self.pipeline.serving_view()
                    if self.pipeline is not None else None
                )
                box["value"] = self.manager.classify(
                    points, budget, stream=stream
                )
            except BaseException as exc:  # noqa: BLE001 - reported as 500
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(target=work, name="tkdc-classify", daemon=True)
        started = time.monotonic()
        worker.start()
        finished = done.wait(remaining + config.watchdog_grace)
        elapsed = time.monotonic() - started
        if not finished:
            # The worker is wedged (stall, livelock): abandon it — it is
            # a daemon thread holding no admission state once we return.
            stats.bump("timed_out")
            self.breaker.record(True, mode)
            log.warning(
                "watchdog abandoned a classify after %.3fs "
                "(deadline %.3fs + grace %.3fs)",
                elapsed, deadline_s, config.watchdog_grace,
            )
            return 503, {
                "error": "watchdog_timeout",
                "deadline_ms": round(deadline_s * 1000.0, 3),
                "grace_ms": round(config.watchdog_grace * 1000.0, 3),
            }, {}

        error = box.get("error")
        if error is not None:
            if isinstance(error, ValueError):
                # Shape/dimension garbage: the client's fault, says
                # nothing about pipeline health.
                stats.bump("rejected")
                self.breaker.record(False, mode)
                return 400, {
                    "error": "bad_request",
                    "detail": str(error),
                }, {}
            stats.bump("errors")
            self.breaker.record(True, mode)
            log.error("classify failed: %s: %s", type(error).__name__, error)
            return 500, {
                "error": "internal",
                "detail": f"{type(error).__name__}: {error}",
            }, {}

        result, fallbacks = box["value"]  # type: ignore[misc]
        self.breaker.record(fallbacks > 0, mode)
        uncertain = result.uncertain
        stats.bump("completed")
        if result.any_degraded:
            stats.bump("degraded")
        if bool(uncertain.any()):
            stats.bump("uncertain")
        if mode == MODE_DEGRADED:
            stats.bump("breaker_served_degraded")
        stats.observe_latency(time.monotonic() - received_at)
        return 200, {
            "labels": [int(label) for label in result.resolved_labels()],
            "degraded": [bool(flag) for flag in result.degraded],
            "uncertain": [bool(flag) for flag in uncertain],
            "degraded_any": bool(result.any_degraded),
            "threshold": float(result.threshold),
            "budget": budget,
            "exact_fallbacks": fallbacks,
            "mode": mode,
            "breaker": self.breaker.state,
            "elapsed_ms": round(elapsed * 1000.0, 3),
        }, {}

    def _parse_request(self, raw: bytes) -> tuple[np.ndarray, float, dict]:
        config = self.serve_config
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(400, {
                "error": "bad_request", "detail": f"invalid JSON: {exc}",
            }) from exc
        if not isinstance(body, dict) or "points" not in body:
            raise _BadRequest(400, {
                "error": "bad_request",
                "detail": "body must be a JSON object with a 'points' array",
            })
        try:
            points = np.asarray(body["points"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(400, {
                "error": "bad_request",
                "detail": f"'points' is not a numeric matrix: {exc}",
            }) from exc
        if points.ndim != 2 or points.shape[0] == 0:
            raise _BadRequest(400, {
                "error": "bad_request",
                "detail": "'points' must be a non-empty list of equal-length rows",
            })
        if points.shape[0] > config.max_rows:
            raise _BadRequest(413, {
                "error": "too_many_rows",
                "max_rows": config.max_rows,
                "received_rows": int(points.shape[0]),
            })
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is None:
            deadline_s = config.default_deadline
        else:
            if not isinstance(deadline_ms, (int, float)) or not deadline_ms > 0:
                raise _BadRequest(400, {
                    "error": "bad_request",
                    "detail": "'deadline_ms' must be a positive number",
                })
            deadline_s = min(float(deadline_ms) / 1000.0, config.max_deadline)
        return points, deadline_s, body

    # ------------------------------------------------------------------
    # Reload and drain
    # ------------------------------------------------------------------

    def handle_reload(self, raw: bytes) -> tuple[int, dict]:
        path: str | None = None
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
                path = body.get("path") if isinstance(body, dict) else None
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": "bad_request", "detail": f"invalid JSON: {exc}"}
        result = self.manager.reload(path)
        return (200 if result.ok else 500), result.as_dict()

    def reload_model(self, path: str | Path | None = None):
        """Programmatic/SIGHUP entry to the verified reload protocol."""
        return self.manager.reload(path)

    def initiate_drain(self) -> None:
        """Stop admitting, wait for in-flight work, then shut down."""
        if self.draining.is_set():
            return
        self.draining.set()
        if self.pipeline is not None:
            # Stop triggering new refits; a mid-flight one is deadline-
            # bounded and harmless (its swap target outlives the drain).
            self.pipeline.stop(join=False)
        log.info("drain initiated: refusing new work, waiting for in-flight")
        threading.Thread(
            target=self._drain_and_shutdown, name="tkdc-drain", daemon=True
        ).start()

    def _drain_and_shutdown(self) -> None:
        deadline = time.monotonic() + self.serve_config.drain_timeout
        while time.monotonic() < deadline and self.admission.admitted() > 0:
            time.sleep(0.02)
        leftover = self.admission.admitted()
        if leftover:
            log.warning(
                "drain timeout: shutting down with %d requests in flight", leftover
            )
        else:
            log.info("drained cleanly; shutting down")
        self.shutdown()

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.stats.record_breaker_transition(old, new)
        log.warning("circuit breaker %s -> %s", old, new)


class _BadRequest(Exception):
    """Internal: a request refused during parsing (status + payload)."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("detail", "bad request"))
        self.status = status
        self.payload = payload


def install_signal_handlers(server: TKDCServer) -> bool:
    """SIGTERM/SIGINT → graceful drain; SIGHUP → verified hot reload.

    Handlers only set work in motion on daemon threads — never block in
    signal context. Returns False when not running in the main thread
    (signal registration is impossible there); the caller then relies on
    the admin endpoints instead.
    """

    def _drain(signum: int, frame: object) -> None:
        threading.Thread(target=server.initiate_drain, daemon=True).start()

    def _reload(signum: int, frame: object) -> None:
        threading.Thread(target=server.reload_model, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
        if hasattr(signal, "SIGHUP"):
            signal.signal(signal.SIGHUP, _reload)
    except ValueError:
        log.warning(
            "not in the main thread: signal handlers unavailable, "
            "use /admin/reload and /admin/drain"
        )
        return False
    return True


def serve(
    model_path: str | Path,
    config: ServeConfig | None = None,
    install_signals: bool = True,
    streaming: bool = False,
    stream_settings=None,
    wal_dir: str | Path | None = None,
) -> int:
    """Load a model, start the daemon, and block until drained.

    The CLI entry point (``repro serve``). Returns 0 after a graceful
    shutdown. With ``config.workers > 1`` this becomes the pre-forked
    fleet router (:mod:`repro.serve.router`) instead of the in-process
    daemon; the endpoint surface is identical either way.

    ``streaming=True`` attaches a drift-aware ingest pipeline behind
    ``POST /ingest``; drift-triggered refits then swap the served model
    through the manager's verified reload path. ``stream_settings`` is a
    :class:`~repro.streaming.pipeline.StreamSettings`. ``wal_dir``
    makes ingest *durable*: batches are write-ahead-logged before they
    are acknowledged, and a restart over the same directory recovers
    every acknowledged point (accounting generation included) before
    serving. In fleet mode the router forwards ``/ingest`` to an
    elected ingest-owner worker over the same WAL (see
    :mod:`repro.serve.router`).
    """
    config = config if config is not None else ServeConfig()
    if config.workers > 1:
        from repro.serve.router import serve_fleet

        return serve_fleet(
            model_path, config, install_signals=install_signals,
            streaming=streaming, stream_settings=stream_settings,
            wal_dir=wal_dir,
        )
    manager = ModelManager(model_path, config)
    server = TKDCServer(manager)
    pipeline = None
    if streaming:
        from repro.streaming import StreamingPipeline, StreamSettings

        settings = stream_settings or StreamSettings()
        if wal_dir is not None:
            pipeline = StreamingPipeline.recover(
                wal_dir,
                settings=settings,
                fallback_classifier=manager.classifier,
                reloader=manager,
            )
        else:
            pipeline = StreamingPipeline.from_classifier(
                manager.classifier,
                settings=settings,
                reloader=manager,
            )
        server.attach_pipeline(pipeline)
    elif wal_dir is not None:
        log.warning("--wal-dir is only meaningful with --streaming; ignoring")
    if install_signals:
        install_signal_handlers(server)
    durability = ""
    if pipeline is not None:
        durability = ", streaming ingest on"
        if pipeline.wal is not None:
            durability += f" (wal={pipeline.wal.directory})"
    print(
        f"tkdc serving {manager.model_path} on "
        f"http://{config.host}:{server.port} "
        f"(threshold={manager.classifier.threshold.value:.6g}, "
        f"{manager.calibration.expansions_per_second:.3g} expansions/s, "
        f"engine={manager.calibration.engine}"
        f"{durability}); "
        "SIGTERM drains, SIGHUP reloads",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        if pipeline is not None:
            pipeline.stop(join=False)
        server.server_close()
    print("tkdc server stopped", flush=True)
    return 0
