"""The serving-fleet router: pre-forked workers behind one HTTP front.

``repro serve --workers N`` starts one router process that:

1. loads and sha256-verifies the model once, measures the
   deadline→budget calibration once, and publishes the index to the
   shared-memory plane (:mod:`repro.serve.plane`);
2. pre-forks N worker processes (``repro serve-worker``), each running
   the existing single-process pipeline against the attached tree;
3. routes ``/classify`` to the least-loaded healthy worker with
   per-worker admission slots, failing over once on transport errors so
   a killed worker never drops a request;
4. supervises the fleet: heartbeat probes, immediate respawn of crashed
   or unresponsive workers (the supervision shape of
   :mod:`repro.robustness.supervisor`, applied to processes);
5. aggregates the accounting invariant and ``/metrics`` fleet-wide —
   the router's own :class:`~repro.serve.stats.ServerStats` gives every
   submitted request exactly one terminal outcome *at the router*, so
   ``submitted == completed + shed + rejected + timed_out + errors +
   drained`` holds for the fleet by construction; and
6. runs hot reload as publish-new-segments → canary on one worker →
   roll out → atomic manifest swap → unlink old segments, preserving
   the verify/canary/rollback semantics of :mod:`repro.serve.reload`.

A fleet-level circuit breaker watches *transport* health (connection
failures, worker 5xx): when too many forwards fail, the router sheds
fast with 429 instead of burning sockets against a sick fleet. Worker-
local breakers keep watching classify health exactly as before.
"""

from __future__ import annotations

import json
import logging
import os
import select
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import asdict
from http.client import HTTPConnection, HTTPException
from http.server import ThreadingHTTPServer
from pathlib import Path

from repro.io.models import load_model, resolve_model_path
from repro.obs.buildinfo import build_info
from repro.obs.registry import render_prometheus
from repro.serve.breaker import MODE_DEGRADED, CircuitBreaker
from repro.serve.calibrate import calibrate_for_serving
from repro.serve.config import ServeConfig
from repro.serve.daemon import _Handler, install_signal_handlers
from repro.serve.plane import (
    MANIFEST_BASENAME,
    file_sha256,
    publish_classifier,
)
from repro.serve.reload import ReloadResult, prepare_classifier
from repro.serve.stats import ServerStats
from repro.serve.worker import READY_PREFIX
from repro.index.shm import new_generation_id

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import cycle at runtime: pipeline imports serve.reload
    from repro.streaming.pipeline import StreamSettings

log = logging.getLogger("repro.serve")


class ForwardError(RuntimeError):
    """A forward failed at the transport layer (no usable response)."""


class ForwardTimeout(ForwardError):
    """A forward exceeded its socket deadline (worker wedged)."""


def _tuned_connection(host: str, port: int, timeout: float) -> HTTPConnection:
    """A connected HTTPConnection with Nagle disabled.

    The router→worker hop doubles the number of small writes per
    request; TCP_NODELAY keeps delayed-ACK/Nagle interaction from adding
    tens of milliseconds on some stacks.
    """
    connection = HTTPConnection(host, port, timeout=timeout)
    connection.connect()
    connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return connection


class WorkerHandle:
    """Router-side state for one worker process.

    Tracks in-flight load (the per-worker admission slots), health as
    seen by the heartbeat loop, and a small pool of keep-alive
    connections to the worker's ephemeral port.
    """

    def __init__(
        self, index: int, process: subprocess.Popen, port: int, capacity: int
    ) -> None:
        self.index = index
        self.process = process
        self.port = port
        self.pid = process.pid
        self.capacity = capacity
        self.started_at = time.monotonic()
        self.healthy = True
        self.missed = 0
        self.restarts = 0  # carried over by the fleet on respawn
        self._lock = threading.Lock()
        self._in_flight = 0
        self._pool: list[HTTPConnection] = []

    # -- admission slots ---------------------------------------------------

    def try_acquire(self) -> bool:
        with self._lock:
            if not self.healthy or self._in_flight >= self.capacity:
                return False
            self._in_flight += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def load(self) -> float:
        with self._lock:
            return self._in_flight / max(self.capacity, 1)

    # -- connection pool ---------------------------------------------------

    def checkout(self, timeout: float) -> HTTPConnection:
        with self._lock:
            if self._pool:
                connection = self._pool.pop()
                connection.timeout = timeout
                if connection.sock is not None:
                    connection.sock.settimeout(timeout)
                return connection
        return _tuned_connection("127.0.0.1", self.port, timeout)

    def checkin(self, connection: HTTPConnection) -> None:
        with self._lock:
            if len(self._pool) < self.capacity:
                self._pool.append(connection)
                return
        connection.close()

    def discard(self, connection: HTTPConnection) -> None:
        connection.close()

    def close_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()


class WorkerFleet:
    """Owns the model plane and the worker processes (all the policy).

    The HTTP front (:class:`FleetServer`) is a thin shell over this
    object, mirroring how ``TKDCServer`` carries the single-process
    policy — so tests can drive fleet behaviour without sockets on the
    router side.
    """

    def __init__(
        self,
        model_path: Path | str,
        config: ServeConfig,
        streaming: bool = False,
        stream_settings: StreamSettings | None = None,
        wal_dir: Path | str | None = None,
    ) -> None:
        if config.workers < 2:
            raise ValueError(
                "WorkerFleet needs workers >= 2; use TKDCServer for "
                "single-process serving"
            )
        self.config = config
        self.streaming = bool(streaming)
        self.stream_settings = stream_settings
        self.wal_dir: Path | None = Path(wal_dir) if wal_dir is not None else None
        self.stats = ServerStats()
        self.breaker = CircuitBreaker(
            window=config.breaker_window,
            min_requests=config.breaker_min_requests,
            threshold=config.breaker_threshold,
            cooldown=config.breaker_cooldown,
            probes=config.breaker_probes,
            on_transition=self._on_breaker_transition,
        )
        self.draining = threading.Event()
        self._started_at = time.monotonic()
        self._stop = threading.Event()
        self._reload_lock = threading.Lock()
        self._handles_lock = threading.Lock()
        self._server: ThreadingHTTPServer | None = None
        self.runtime_dir = Path(tempfile.mkdtemp(prefix="tkdc-fleet-"))
        self.live_manifest = self.runtime_dir / MANIFEST_BASENAME

        # Fleet ingest: one worker owns the WAL; the router stamps every
        # forwarded batch with an idempotency key so a same-seq retry
        # after an owner failure can never double-apply.
        if self.streaming and self.wal_dir is None:
            self.wal_dir = self.runtime_dir / "wal"
            log.info(
                "fleet streaming without --wal-dir: using ephemeral WAL "
                "at %s (gone after shutdown)", self.wal_dir,
            )
        self._ingest_lock = threading.Lock()
        # Elections make adopt-ingest HTTP calls (up to 60s per
        # candidate); they serialize on their own lock so seq stamping
        # under _ingest_lock never waits on a slow candidate.
        self._ingest_election_lock = threading.Lock()
        self._ingest_owner: WorkerHandle | None = None
        self._ingest_epoch = f"router-{os.getpid():x}-{os.urandom(6).hex()}"
        self._ingest_seq = 0

        # Load + verify + calibrate ONCE; workers inherit via manifest.
        self.model_path = resolve_model_path(model_path)
        classifier = prepare_classifier(load_model(self.model_path))
        self.calibration = calibrate_for_serving(
            classifier, config.calibration_queries, seed=config.probe_seed
        )
        self.model_sha256 = file_sha256(self.model_path)
        self.threshold = float(classifier.threshold.value)
        self._published = publish_classifier(
            classifier,
            self.model_path,
            self.model_sha256,
            self.calibration,
            generation=new_generation_id(),
        )
        self.generation = self._published.manifest.generation
        self._published.manifest.save(self.live_manifest)

        self._handles: list[WorkerHandle] = []
        try:
            self._spawn_initial_fleet()
        except BaseException:
            self.stop()
            raise
        self._health_thread = threading.Thread(
            target=self._health_loop, name="tkdc-fleet-health", daemon=True
        )
        self._health_thread.start()
        log.info(
            "fleet up: %d workers on generation %s (model %s)",
            len(self._handles), self.generation, self.model_path,
        )
        if self.streaming:
            # Eager election so the first /ingest does not pay the WAL
            # recovery latency; failures here are retried lazily.
            owner = self._ensure_ingest_owner()
            if owner is None:
                log.warning(
                    "no ingest owner elected at boot; will retry on the "
                    "first /ingest request"
                )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _worker_config_json(self) -> str:
        overrides = asdict(self.config)
        overrides.update(host="127.0.0.1", port=0, workers=1)
        return json.dumps(overrides)

    def _launch(self, index: int) -> subprocess.Popen:
        command = [
            sys.executable, "-m", "repro", "serve-worker",
            "--manifest", str(self.live_manifest),
            "--config-json", self._worker_config_json(),
            "--worker-index", str(index),
        ]
        return subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=None, start_new_session=True
        )

    def _await_ready(self, process: subprocess.Popen) -> int:
        """Parse the worker's readiness line; returns its bound port."""
        assert process.stdout is not None
        fd = process.stdout.fileno()
        os.set_blocking(fd, False)
        buffer = b""
        deadline = time.monotonic() + self.config.worker_startup_timeout
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise RuntimeError(
                    f"worker pid {process.pid} exited with "
                    f"rc={process.returncode} before announcing readiness"
                )
            readable, __, __ = select.select([fd], [], [], 0.1)
            if not readable:
                continue
            try:
                chunk = os.read(fd, 4096)
            except BlockingIOError:  # pragma: no cover - select said ready
                continue
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                text = line.decode("utf-8", errors="replace").strip()
                if not text.startswith(READY_PREFIX):
                    continue
                fields = dict(
                    token.split("=", 1)
                    for token in text.split()[1:]
                    if "=" in token
                )
                return int(fields["port"])
        raise TimeoutError(
            f"worker pid {process.pid} not ready within "
            f"{self.config.worker_startup_timeout}s"
        )

    def _spawn_worker(self, index: int) -> WorkerHandle:
        process = self._launch(index)
        try:
            port = self._await_ready(process)
        except BaseException:
            self._terminate_process(process)
            raise
        capacity = self.config.max_concurrency + self.config.queue_depth
        return WorkerHandle(index, process, port, capacity)

    def _spawn_initial_fleet(self) -> None:
        # Launch everyone first, then collect readiness: startup cost is
        # one worker's import+attach time, not N of them.
        processes = [self._launch(i) for i in range(self.config.workers)]
        capacity = self.config.max_concurrency + self.config.queue_depth
        failure: BaseException | None = None
        for index, process in enumerate(processes):
            try:
                port = self._await_ready(process)
            except BaseException as exc:
                failure = exc
                continue
            self._handles.append(WorkerHandle(index, process, port, capacity))
        if failure is not None:
            for process in processes:
                self._terminate_process(process)
            raise RuntimeError(f"fleet startup failed: {failure}") from failure

    @staticmethod
    def _terminate_process(process: subprocess.Popen) -> None:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if process.stdout is not None:
            process.stdout.close()

    def _respawn(self, index: int, old: WorkerHandle, reason: str) -> None:
        log.warning(
            "worker %d (pid %d) %s; respawning", index, old.pid, reason
        )
        old.healthy = False
        old.close_pool()
        self._terminate_process(old.process)
        try:
            replacement = self._spawn_worker(index)
        except Exception as exc:
            log.error(
                "respawn of worker %d failed (%s: %s); will retry on the "
                "next heartbeat", index, type(exc).__name__, exc,
            )
            return
        replacement.restarts = old.restarts + 1
        with self._handles_lock:
            position = self._handles.index(old)
            self._handles[position] = replacement
        with self._ingest_lock:
            if self._ingest_owner is old:
                # The dead owner's flock died with it; the next /ingest
                # (or the eager retry below) elects a successor that
                # replays the WAL before answering.
                self._ingest_owner = None

    # ------------------------------------------------------------------
    # Health supervision
    # ------------------------------------------------------------------

    def _health_loop(self) -> None:
        interval = self.config.heartbeat_interval
        while not self._stop.wait(interval):
            if self.draining.is_set():
                return
            with self._handles_lock:
                handles = list(self._handles)
            for handle in handles:
                if self._stop.is_set() or self.draining.is_set():
                    return
                if handle.process.poll() is not None:
                    self._respawn(
                        handle.index, handle,
                        f"exited rc={handle.process.returncode}",
                    )
                    continue
                if self._probe(handle):
                    handle.missed = 0
                    handle.healthy = True
                elif handle.missed + 1 >= self.config.heartbeat_misses:
                    self._respawn(
                        handle.index, handle,
                        f"missed {handle.missed + 1} heartbeats",
                    )
                else:
                    handle.missed += 1
                    handle.healthy = False

    def _probe(self, handle: WorkerHandle) -> bool:
        try:
            status, __ = self._admin_request(
                handle, "GET", "/healthz", timeout=self.config.heartbeat_interval
            )
        except ForwardError:
            return False
        return status == 200

    def _admin_request(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: dict | None = None,
        timeout: float = 5.0,
    ) -> tuple[int, dict]:
        """One out-of-band exchange with a worker (fresh connection)."""
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection = _tuned_connection("127.0.0.1", handle.port, timeout)
        except OSError as exc:
            raise ForwardError(f"connect: {exc}") from exc
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except socket.timeout as exc:
            raise ForwardTimeout(str(exc)) from exc
        except (OSError, HTTPException) as exc:
            raise ForwardError(f"{type(exc).__name__}: {exc}") from exc
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"raw": raw.decode("utf-8", errors="replace")}
        return response.status, decoded

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------

    def _acquire_worker(
        self, exclude: WorkerHandle | None = None
    ) -> WorkerHandle | None:
        with self._handles_lock:
            candidates = [h for h in self._handles if h is not exclude]
        for handle in sorted(candidates, key=WorkerHandle.load):
            if handle.try_acquire():
                return handle
        return None

    def _forward_classify(
        self, handle: WorkerHandle, raw: bytes
    ) -> tuple[int, dict]:
        timeout = self.config.max_deadline + self.config.watchdog_grace + 5.0
        connection = None
        try:
            connection = handle.checkout(timeout)
            connection.request(
                "POST", "/classify", body=raw,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            data = response.read()
        except socket.timeout as exc:
            if connection is not None:
                handle.discard(connection)
            raise ForwardTimeout(f"worker {handle.index} timed out") from exc
        except (OSError, HTTPException) as exc:
            if connection is not None:
                handle.discard(connection)
            raise ForwardError(
                f"worker {handle.index}: {type(exc).__name__}: {exc}"
            ) from exc
        handle.checkin(connection)
        try:
            payload = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"raw": data.decode("utf-8", errors="replace")}
        return response.status, payload

    def _note_transport_failure(self, handle: WorkerHandle) -> None:
        # Route around the worker immediately; the heartbeat loop decides
        # whether it is actually dead (respawn) or just hiccuped
        # (healthy again on the next successful probe).
        handle.healthy = False

    def _retry_after(self) -> float:
        with self._handles_lock:
            capacity = sum(h.capacity for h in self._handles) or 1
            backlog = sum(h.in_flight() for h in self._handles)
        return round(self.config.retry_after * (1.0 + backlog / capacity), 3)

    # ------------------------------------------------------------------
    # Ingest ownership + fan-in
    # ------------------------------------------------------------------

    def _settings_payload(self) -> dict:
        from repro.streaming.pipeline import StreamSettings

        settings = self.stream_settings
        if settings is None:
            settings = StreamSettings()
        return asdict(settings)

    def _ensure_ingest_owner(self) -> WorkerHandle | None:
        """The current ingest owner, electing one if none is live.

        Ownership is enforced by the WAL's flock, not by router state:
        the router merely remembers who last adopted successfully. A
        ``wal_locked`` 409 from a candidate means the previous owner
        process still holds the log — in that case the router keeps
        routing to it rather than splitting the brain.
        """
        if not self.streaming or self.wal_dir is None:
            return None
        owner = self._live_ingest_owner()
        if owner is not None:
            return owner
        with self._ingest_election_lock:
            # Concurrent requests wait here for ONE election; whoever
            # lost the race to this lock finds the winner installed.
            owner = self._live_ingest_owner()
            if owner is not None:
                return owner
            return self._elect_ingest_owner()

    def _live_ingest_owner(self) -> WorkerHandle | None:
        with self._ingest_lock:
            owner = self._ingest_owner
        if (
            owner is not None
            and owner.healthy
            and owner.process.poll() is None
        ):
            return owner
        return None

    def _elect_ingest_owner(self) -> WorkerHandle | None:
        """Run one owner election (the election lock is held).

        Only the owner-pointer reads/writes take ``_ingest_lock``; the
        adopt-ingest round trips happen outside it so ingest requests
        keep stamping seqs while a candidate is slow to answer.
        """
        body = {
            "wal_dir": str(self.wal_dir),
            "settings": self._settings_payload(),
            "start": False,
        }
        with self._handles_lock:
            handles = list(self._handles)
        # Prefer healthy workers but fall through to unprobed ones: a
        # freshly respawned worker may not have passed a heartbeat yet.
        candidates = sorted(handles, key=lambda h: not h.healthy)
        with self._ingest_lock:
            previous = self._ingest_owner
        for handle in candidates:
            if handle.process.poll() is not None:
                continue
            try:
                # Adoption replays the WAL before answering; give it
                # real time rather than the 5s admin default.
                status, payload = self._admin_request(
                    handle, "POST", "/admin/adopt-ingest",
                    body=body, timeout=60.0,
                )
            except ForwardError as exc:
                log.warning(
                    "adopt-ingest to worker %d failed in transport: %s",
                    handle.index, exc,
                )
                continue
            if status == 200:
                with self._ingest_lock:
                    self._ingest_owner = handle
                if handle is not previous:
                    recovery = payload.get("recovery") or {}
                    log.info(
                        "worker %d is the ingest owner for %s "
                        "(status=%s, replayed %s records / %s points)",
                        handle.index, self.wal_dir, payload.get("status"),
                        recovery.get("records_replayed", 0),
                        recovery.get("points_replayed", 0),
                    )
                return handle
            if status == 409 and payload.get("error") == "wal_locked":
                # Someone still holds the flock. If it is our recorded
                # owner and its process is alive, keep using it.
                if (
                    previous is not None
                    and previous.process.poll() is None
                ):
                    with self._ingest_lock:
                        self._ingest_owner = previous
                    return previous
                continue
            log.warning(
                "worker %d refused adopt-ingest: %s %s",
                handle.index, status, payload.get("error") or payload,
            )
        return None

    def handle_ingest(self, raw: bytes) -> tuple[int, dict]:
        """Forward one ingest batch to the elected owner.

        Mirrors the single-process accounting invariant at the router:
        ``ingest_submitted == ingest_completed + ingest_rejected``. The
        router stamps each batch with a ``(source, seq)`` idempotency
        key before forwarding, so the one same-seq retry after an owner
        failure is a no-op if the first attempt reached the WAL.
        """
        stats = self.stats
        stats.bump("ingest_submitted")
        if not self.streaming:
            stats.bump("ingest_rejected")
            return 409, {
                "error": "no_streaming_pipeline",
                "detail": "this fleet was started without --streaming",
            }
        if self.draining.is_set():
            stats.bump("ingest_rejected")
            return 503, {"error": "draining"}
        if len(raw) > self.config.max_request_bytes:
            stats.bump("ingest_rejected")
            return 413, {
                "error": "request_too_large",
                "max_request_bytes": self.config.max_request_bytes,
                "received_bytes": len(raw),
            }
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            stats.bump("ingest_rejected")
            return 400, {
                "error": "bad_request", "detail": f"invalid JSON: {exc}",
            }
        if not isinstance(body, dict):
            stats.bump("ingest_rejected")
            return 400, {
                "error": "bad_request", "detail": "body must be a JSON object",
            }
        owner = self._ensure_ingest_owner()
        if owner is None:
            stats.bump("ingest_rejected")
            retry = self._retry_after()
            return 503, {
                "error": "no_ingest_owner",
                "detail": "no worker could adopt the ingest WAL",
                "retry_after": retry,
            }
        with self._ingest_lock:
            self._ingest_seq += 1
            body["batch"] = {
                "source": self._ingest_epoch, "seq": self._ingest_seq,
            }
        status, payload, served_by = self._forward_ingest(owner, body)
        if served_by is None:
            stats.bump("ingest_rejected")
            return status, payload
        if status == 200:
            stats.bump("ingest_completed")
            accepted = payload.get("ingested")
            if isinstance(accepted, int) and accepted > 0:
                stats.bump("ingested_points", accepted)
        else:
            stats.bump("ingest_rejected")
        payload.setdefault("worker", served_by.index)
        return status, payload

    def _forward_ingest(
        self, owner: WorkerHandle, body: dict
    ) -> tuple[int, dict, WorkerHandle | None]:
        """Forward with ONE same-seq retry after owner re-election.

        The retry reuses the idempotency key stamped by the caller: if
        the first attempt was durably appended before the owner died,
        the successor's WAL replay restored the watermark and the retry
        answers ``duplicate: true`` instead of double-counting.
        """
        try:
            status, payload = self._admin_request(
                owner, "POST", "/ingest", body=body, timeout=30.0,
            )
            return status, payload, owner
        except ForwardError as exc:
            # Route around the owner; if it was killed, its flock died
            # with it and the election below installs a successor that
            # replays the WAL first. If it merely hiccuped, the election
            # finds it again (already_owner / wal_locked) and the retry
            # runs on a fresh connection.
            first_error = exc
            self._note_transport_failure(owner)
        successor = self._ensure_ingest_owner()
        if successor is None:
            return 503, {
                "error": "no_ingest_owner",
                "detail": f"owner failed ({first_error}); no successor",
            }, None
        try:
            status, payload = self._admin_request(
                successor, "POST", "/ingest", body=body, timeout=30.0,
            )
        except ForwardError as exc:
            self._note_transport_failure(successor)
            return 503, {
                "error": "no_ingest_owner",
                "detail": f"owner failed ({first_error}); retry: {exc}",
            }, None
        log.info(
            "ingest takeover: worker %d -> %d (%s)",
            owner.index, successor.index, first_error,
        )
        return status, payload, successor

    def handle_classify(
        self, raw: bytes, received_at: float
    ) -> tuple[int, dict, dict]:
        """Route one classify; exactly one terminal counter per submit."""
        stats = self.stats
        stats.bump("submitted")
        if self.draining.is_set():
            stats.bump("drained")
            retry = self._retry_after()
            return 503, {"error": "draining", "retry_after": retry}, {
                "Retry-After": retry,
            }
        if len(raw) > self.config.max_request_bytes:
            stats.bump("rejected")
            return 413, {
                "error": "request_too_large",
                "max_request_bytes": self.config.max_request_bytes,
                "received_bytes": len(raw),
            }, {}
        mode = self.breaker.admit()
        if mode == MODE_DEGRADED:
            # Fleet transport is sick: shed fast instead of queueing
            # sockets against workers that are not answering.
            stats.bump("shed")
            retry = self._retry_after()
            return 429, {
                "error": "fleet_unhealthy",
                "retry_after": retry,
                "breaker": self.breaker.state,
            }, {"Retry-After": retry}
        handle = self._acquire_worker()
        if handle is None:
            stats.bump("shed")
            retry = self._retry_after()
            return 429, {
                "error": "overloaded",
                "retry_after": retry,
            }, {"Retry-After": retry}
        served_by = handle
        try:
            try:
                status, payload = self._forward_classify(handle, raw)
            except ForwardTimeout as exc:
                stats.bump("timed_out")
                self.breaker.record(True, mode)
                return 503, {
                    "error": "watchdog_timeout",
                    "detail": str(exc),
                    "worker": handle.index,
                }, {}
            except ForwardError as exc:
                self._note_transport_failure(handle)
                status, payload, served_by = self._failover(
                    raw, handle, exc, mode
                )
                if served_by is None:
                    return status, payload, {}
        finally:
            handle.release()
        self.breaker.record(status >= 500, mode)
        self._account_terminal(status, payload, received_at)
        payload.setdefault("worker", served_by.index)
        return status, payload, {}

    def _failover(
        self,
        raw: bytes,
        failed: WorkerHandle,
        error: ForwardError,
        mode: str,
    ) -> tuple[int, dict, WorkerHandle | None]:
        """One retry on a different worker after a transport failure.

        Classification is idempotent and the failed attempt never
        produced a response, so the retry cannot double-answer; this is
        what makes a mid-request worker kill invisible to clients.
        """
        fallback = self._acquire_worker(exclude=failed)
        if fallback is None:
            self.stats.bump("errors")
            self.breaker.record(True, mode)
            retry = self._retry_after()
            return 503, {
                "error": "no_worker_available",
                "detail": str(error),
                "retry_after": retry,
            }, None
        try:
            try:
                status, payload = self._forward_classify(fallback, raw)
            except ForwardError as exc:
                self._note_transport_failure(fallback)
                self.stats.bump("errors")
                self.breaker.record(True, mode)
                return 503, {
                    "error": "no_worker_available",
                    "detail": f"{error}; retry: {exc}",
                }, None
        finally:
            fallback.release()
        log.info(
            "failover: worker %d -> %d (%s)",
            failed.index, fallback.index, error,
        )
        return status, payload, fallback

    def _account_terminal(
        self, status: int, payload: dict, received_at: float
    ) -> None:
        stats = self.stats
        if status == 200:
            stats.bump("completed")
            if payload.get("degraded_any"):
                stats.bump("degraded")
            if any(payload.get("uncertain") or ()):
                stats.bump("uncertain")
            stats.observe_latency(time.monotonic() - received_at)
        elif status == 429:
            stats.bump("shed")
        elif status in (400, 413):
            stats.bump("rejected")
        elif status == 503:
            # Worker-side deadline/watchdog expiry (a worker drain 503
            # cannot happen outside a fleet drain, which is caught above).
            stats.bump("timed_out")
        else:
            stats.bump("errors")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        with self._handles_lock:
            healthy = sum(1 for h in self._handles if h.healthy)
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.workers,
            "workers_healthy": healthy,
        }

    def readyz(self) -> tuple[bool, dict]:
        if self.draining.is_set():
            return False, {"status": "draining"}
        with self._handles_lock:
            healthy = sum(1 for h in self._handles if h.healthy)
        if healthy == 0:
            return False, {"status": "no_healthy_workers"}
        return True, {
            "status": "ready",
            "model_path": str(self.model_path),
            "workers_healthy": healthy,
        }

    def _scrape_worker_stats(self, handle: WorkerHandle) -> dict | None:
        try:
            status, payload = self._admin_request(
                handle, "GET", "/statz", timeout=2.0
            )
        except ForwardError:
            return None
        return payload if status == 200 else None

    def statz(self) -> dict:
        snapshot = self.stats.snapshot()
        workers = []
        aggregate: dict[str, int] = {}
        with self._handles_lock:
            handles = list(self._handles)
        for handle in handles:
            info = {
                "index": handle.index,
                "pid": handle.pid,
                "port": handle.port,
                "healthy": handle.healthy,
                "in_flight": handle.in_flight(),
                "capacity": handle.capacity,
                "restarts": handle.restarts,
                "uptime_s": round(time.monotonic() - handle.started_at, 3),
            }
            scraped = self._scrape_worker_stats(handle)
            if scraped is not None:
                info["stats"] = scraped
                for name in ServerStats.COUNTER_NAMES:
                    value = scraped.get(name)
                    if isinstance(value, int):
                        aggregate[name] = aggregate.get(name, 0) + value
            workers.append(info)
        snapshot.update({
            "build": build_info(),
            "breaker": self.breaker.state,
            "breaker_failure_rate": round(self.breaker.failure_rate(), 4),
            "draining": self.draining.is_set(),
            "model_path": str(self.model_path),
            "model_sha256": self.model_sha256,
            "threshold": self.threshold,
            "expansions_per_second": self.calibration.expansions_per_second,
            "calibration_measured": self.calibration.measured,
            "engine": self.calibration.engine,
            "engine_reason": self.calibration.engine_reason,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "fleet": {
                "workers": self.config.workers,
                "workers_healthy": sum(1 for h in handles if h.healthy),
                "generation": self.generation,
                "worker_totals": aggregate,
                "streaming": self.streaming,
                "wal_dir": str(self.wal_dir) if self.wal_dir else None,
                "ingest_owner": (
                    self._ingest_owner.index
                    if self._ingest_owner is not None else None
                ),
                "ingest_epoch": self._ingest_epoch if self.streaming else None,
                "ingest_seq": self._ingest_seq,
            },
            "workers": workers,
        })
        return snapshot

    def metrics_text(self) -> str:
        """Router accounting plus per-worker gauges/counters.

        The router's registry covers the fleet-wide request accounting
        (the cells ``/statz`` reads); worker-local counters are scraped
        and re-exposed under ``tkdc_fleet_worker_*`` so one Prometheus
        target covers the whole fleet.
        """
        lines = [render_prometheus(self.stats.registry).rstrip("\n")]
        with self._handles_lock:
            handles = list(self._handles)
        up_lines, restart_lines, event_lines = [], [], []
        for handle in handles:
            label = f'worker="{handle.index}"'
            up_lines.append(
                f"tkdc_fleet_worker_up{{{label}}} {1 if handle.healthy else 0}"
            )
            restart_lines.append(
                f"tkdc_fleet_worker_restarts_total{{{label}}} {handle.restarts}"
            )
            scraped = self._scrape_worker_stats(handle)
            if scraped is None:
                continue
            for name in ServerStats.COUNTER_NAMES:
                value = scraped.get(name)
                if isinstance(value, int):
                    event_lines.append(
                        f'tkdc_fleet_worker_events_total{{{label},'
                        f'event="{name}"}} {value}'
                    )
        lines += [
            "# HELP tkdc_fleet_worker_up Worker health as seen by the router",
            "# TYPE tkdc_fleet_worker_up gauge",
            *up_lines,
            "# HELP tkdc_fleet_worker_restarts_total Times each worker "
            "slot was respawned",
            "# TYPE tkdc_fleet_worker_restarts_total counter",
            *restart_lines,
            "# HELP tkdc_fleet_worker_events_total Worker-local serve "
            "accounting events",
            "# TYPE tkdc_fleet_worker_events_total counter",
            *event_lines,
        ]
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Reload
    # ------------------------------------------------------------------

    def reload(self, path: Path | str | None = None) -> ReloadResult:
        """Fleet hot reload: publish → canary one worker → roll out →
        atomic manifest swap → unlink the old generation.

        Any failure unlinks the candidate segments and re-attaches any
        already-swapped worker to the live generation — the fleet always
        converges to one generation.
        """
        with self._reload_lock:
            return self._reload_locked(path)

    def _reload_locked(self, path: Path | str | None) -> ReloadResult:
        requested = path if path is not None else self.model_path
        try:
            candidate_path = resolve_model_path(requested)
            classifier = prepare_classifier(load_model(candidate_path))
        except Exception as exc:
            return self._refused(requested, "load", exc)
        calibration = calibrate_for_serving(
            classifier, self.config.calibration_queries,
            seed=self.config.probe_seed,
        )
        generation = new_generation_id()
        published = publish_classifier(
            classifier,
            candidate_path,
            file_sha256(candidate_path),
            calibration,
            generation=generation,
        )
        candidate_manifest = self.runtime_dir / f"MANIFEST-{generation}.json"
        published.manifest.save(candidate_manifest)
        with self._handles_lock:
            targets = [h for h in self._handles if h.healthy]
        if not targets:
            published.unlink()
            candidate_manifest.unlink(missing_ok=True)
            return self._refused(
                candidate_path, "canary", RuntimeError("no healthy workers")
            )
        swapped: list[WorkerHandle] = []
        # Canary is just the first rollout target: if the generation is
        # bad, exactly one worker saw it and it refused the swap.
        for position, handle in enumerate(targets):
            stage = "canary" if position == 0 else "rollout"
            try:
                status, body = self._admin_request(
                    handle, "POST", "/admin/reload",
                    body={"path": str(candidate_manifest)}, timeout=30.0,
                )
            except ForwardError as exc:
                status, body = 0, {"error": str(exc)}
            if status != 200 or not body.get("ok", False):
                self._rollback(swapped)
                published.unlink()
                candidate_manifest.unlink(missing_ok=True)
                return self._refused(
                    candidate_path, stage,
                    RuntimeError(
                        f"worker {handle.index} refused: "
                        f"{body.get('error') or body}"
                    ),
                )
            swapped.append(handle)
        # Every healthy worker is on the new generation: commit. The
        # atomic rename is what respawned workers will read.
        os.replace(candidate_manifest, self.live_manifest)
        old_published = self._published
        self._published = published
        self.generation = generation
        self.model_path = Path(candidate_path)
        self.model_sha256 = published.manifest.model_sha256
        self.threshold = float(classifier.threshold.value)
        self.calibration = calibration
        # Unlink removes the names; workers still mid-request on the old
        # mappings keep them until their views die (POSIX semantics).
        old_published.unlink()
        self.stats.bump("reloads_ok")
        log.info(
            "fleet reload swapped in %s (generation %s) on %d workers",
            candidate_path, generation, len(swapped),
        )
        return ReloadResult(
            ok=True,
            stage="swapped",
            model_path=str(candidate_path),
            threshold=self.threshold,
            expansions_per_second=calibration.expansions_per_second,
            engine=calibration.engine,
            engine_reason=calibration.engine_reason,
        )

    def _rollback(self, swapped: list[WorkerHandle]) -> None:
        for handle in swapped:
            try:
                self._admin_request(
                    handle, "POST", "/admin/reload",
                    body={"path": str(self.live_manifest)}, timeout=30.0,
                )
            except ForwardError as exc:
                log.error(
                    "rollback reload of worker %d failed (%s); heartbeat "
                    "supervision will respawn it on the live generation",
                    handle.index, exc,
                )

    def _refused(
        self, path: Path | str, stage: str, exc: Exception
    ) -> ReloadResult:
        self.stats.bump("reloads_failed")
        log.error(
            "fleet reload REFUSED at %s stage for %s: %s: %s "
            "(generation %s keeps serving)",
            stage, path, type(exc).__name__, exc, self.generation,
        )
        return ReloadResult(
            ok=False,
            stage=stage,
            model_path=str(path),
            error=f"{type(exc).__name__}: {exc}",
        )

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------

    def attach_server(self, server: ThreadingHTTPServer) -> None:
        self._server = server

    def initiate_drain(self) -> None:
        if self.draining.is_set():
            return
        self.draining.set()
        log.info("fleet drain initiated")
        threading.Thread(
            target=self._drain_and_shutdown, name="tkdc-fleet-drain",
            daemon=True,
        ).start()

    def _drain_and_shutdown(self) -> None:
        deadline = time.monotonic() + self.config.drain_timeout
        while time.monotonic() < deadline and self.stats.in_flight() > 0:
            time.sleep(0.02)
        leftover = self.stats.in_flight()
        if leftover:
            log.warning(
                "fleet drain timeout: %d requests still in flight", leftover
            )
        else:
            log.info("fleet drained cleanly")
        if self._server is not None:
            self._server.shutdown()

    def stop(self) -> None:
        """Tear the fleet down: workers, segments, manifests. Idempotent."""
        self._stop.set()
        with self._handles_lock:
            handles, self._handles = self._handles, []
        for handle in handles:
            handle.close_pool()
            if handle.process.poll() is None:
                try:
                    handle.process.send_signal(signal.SIGTERM)
                except OSError:  # pragma: no cover - already gone
                    pass
        for handle in handles:
            self._terminate_process(handle.process)
        published = getattr(self, "_published", None)
        if published is not None:
            published.unlink()
        shutil.rmtree(self.runtime_dir, ignore_errors=True)

    def _on_breaker_transition(self, old: str, new: str) -> None:
        self.stats.record_breaker_transition(old, new)
        log.warning("fleet circuit breaker %s -> %s", old, new)


class FleetServer(ThreadingHTTPServer):
    """HTTP front for a :class:`WorkerFleet`.

    Presents the exact endpoint surface of :class:`TKDCServer` (same
    handler class), so every client — the CLI, the smoke script, the
    soak tests — speaks to a fleet without changes.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, fleet: WorkerFleet) -> None:
        self.fleet = fleet
        self.serve_config = fleet.config
        self.stats = fleet.stats
        self.draining = fleet.draining
        super().__init__((fleet.config.host, fleet.config.port), _Handler)
        fleet.attach_server(self)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def healthz(self) -> dict:
        return self.fleet.healthz()

    def readyz(self) -> tuple[bool, dict]:
        return self.fleet.readyz()

    def statz(self) -> dict:
        return self.fleet.statz()

    def metrics_text(self) -> str:
        return self.fleet.metrics_text()

    def reject_oversized(self, length: int) -> tuple[int, dict]:
        self.stats.bump("submitted")
        self.stats.bump("rejected")
        return 413, {
            "error": "request_too_large",
            "max_request_bytes": self.serve_config.max_request_bytes,
            "received_bytes": length,
        }

    def handle_classify(
        self, raw: bytes, received_at: float
    ) -> tuple[int, dict, dict]:
        return self.fleet.handle_classify(raw, received_at)

    def reject_oversized_ingest(self, length: int) -> tuple[int, dict]:
        self.stats.bump("ingest_submitted")
        self.stats.bump("ingest_rejected")
        return 413, {
            "error": "request_too_large",
            "max_request_bytes": self.serve_config.max_request_bytes,
            "received_bytes": length,
        }

    def handle_ingest(self, raw: bytes) -> tuple[int, dict]:
        return self.fleet.handle_ingest(raw)

    def handle_adopt_ingest(self, raw: bytes) -> tuple[int, dict]:
        # Ownership is a worker-side protocol; the router is never a
        # valid adoption target.
        return 409, {
            "error": "router_not_adoptable",
            "detail": "POST /admin/adopt-ingest to a worker, not the router",
        }

    def handle_reload(self, raw: bytes) -> tuple[int, dict]:
        path: str | None = None
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
                path = body.get("path") if isinstance(body, dict) else None
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {
                    "error": "bad_request", "detail": f"invalid JSON: {exc}",
                }
        result = self.fleet.reload(path)
        return (200 if result.ok else 500), result.as_dict()

    def reload_model(self, path: str | Path | None = None) -> ReloadResult:
        return self.fleet.reload(path)

    def initiate_drain(self) -> None:
        self.fleet.initiate_drain()


def serve_fleet(
    model_path: str | Path,
    config: ServeConfig,
    install_signals: bool = True,
    streaming: bool = False,
    stream_settings: StreamSettings | None = None,
    wal_dir: Path | str | None = None,
) -> int:
    """Start the router + worker fleet and block until drained.

    The ``repro serve --workers N`` entry point. Returns 0 after a
    graceful shutdown. With ``streaming=True`` the router elects one
    worker as the ingest owner over ``wal_dir`` and forwards ``/ingest``
    there; owner death triggers re-election with WAL replay, so every
    acknowledged batch survives a kill.
    """
    fleet = WorkerFleet(
        model_path, config,
        streaming=streaming, stream_settings=stream_settings, wal_dir=wal_dir,
    )
    try:
        server = FleetServer(fleet)
    except BaseException:
        fleet.stop()
        raise
    if install_signals:
        install_signal_handlers(server)
    print(
        f"tkdc fleet serving {fleet.model_path} on "
        f"http://{config.host}:{server.port} with {config.workers} workers "
        f"(generation {fleet.generation}, threshold={fleet.threshold:.6g}, "
        f"{fleet.calibration.expansions_per_second:.3g} expansions/s, "
        f"engine={fleet.calibration.engine}); "
        "SIGTERM drains, SIGHUP reloads",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        fleet.stop()
    print("tkdc fleet stopped", flush=True)
    return 0
