"""Resilient serving daemon for tKDC models.

The long-running counterpart to the one-shot CLI: a stdlib-only HTTP
server composing the PR 3 robustness primitives (anytime budgets,
``classify_detailed`` degradation flags, guards, atomic writes) into a
service with honest failure semantics — admission control with load
shedding, deadline→budget propagation with a hard watchdog, a circuit
breaker, and checksum+canary-verified hot reload with graceful drain.

Start one with ``repro serve --model m.tkdc --port 7317``; see
``docs/serving.md`` for the protocol.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.calibrate import BudgetCalibration, calibrate, probe_queries
from repro.serve.client import ServeClient
from repro.serve.config import ServeConfig
from repro.serve.daemon import TKDCServer, serve
from repro.serve.reload import ModelManager, ReloadResult
from repro.serve.router import FleetServer, WorkerFleet, serve_fleet
from repro.serve.stats import ServerStats
from repro.serve.worker import ShmModelManager, run_worker

__all__ = [
    "BudgetCalibration",
    "CircuitBreaker",
    "FleetServer",
    "ModelManager",
    "ReloadResult",
    "ServeClient",
    "ServeConfig",
    "ServerStats",
    "ShmModelManager",
    "TKDCServer",
    "WorkerFleet",
    "calibrate",
    "probe_queries",
    "run_worker",
    "serve",
    "serve_fleet",
]
