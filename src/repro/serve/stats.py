"""Thread-safe counters making every daemon behaviour observable.

The soak test's accounting invariant is enforced here by construction:
every request that increments ``submitted`` terminates by incrementing
exactly one of the terminal outcome counters (``completed``, ``shed``,
``rejected``, ``timed_out``, ``errors``, ``drained``), so at quiescence

    submitted == completed + shed + rejected + timed_out + errors + drained

holds or the server has lost a request. ``/statz`` serves
:meth:`ServerStats.snapshot` verbatim.
"""

from __future__ import annotations

import threading
from collections import deque

#: Terminal outcome counter names — every submitted request ends in
#: exactly one of these.
TERMINAL_OUTCOMES = (
    "completed", "shed", "rejected", "timed_out", "errors", "drained",
)


class ServerStats:
    """Mutable counters for one server lifetime (lock-guarded)."""

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        #: classify requests that entered the handler at all
        self.submitted = 0
        #: requests admitted past load-shedding into the queue/slots
        self.accepted = 0
        #: 200 responses (labels returned, possibly degraded)
        self.completed = 0
        #: 429 responses: load-shed at admission or queue-wait expiry
        self.shed = 0
        #: 4xx responses: malformed body, size/row limits, bad shape
        self.rejected = 0
        #: 503 responses: watchdog fired or deadline expired pre-start
        self.timed_out = 0
        #: 500 responses: handler raised a non-client error
        self.errors = 0
        #: 503 responses refused because the server is draining
        self.drained = 0
        #: 200 responses carrying at least one degraded label
        self.degraded = 0
        #: 200 responses carrying at least one UNCERTAIN label
        self.uncertain = 0
        #: 200 responses served in fast-degraded mode (breaker open)
        self.breaker_served_degraded = 0
        #: exact-O(n) guard fallbacks observed across all requests
        self.exact_fallbacks = 0
        #: successful hot reloads (model actually swapped)
        self.reloads_ok = 0
        #: refused hot reloads (checksum/canary failure; old model kept)
        self.reloads_failed = 0
        #: breaker state transitions, keyed "old->new"
        self.breaker_transitions: dict[str, int] = {}
        self._latencies: deque[float] = deque(maxlen=latency_window)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named counter (terminal outcomes included)."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def observe_latency(self, seconds: float) -> None:
        """Record one completed request's service latency."""
        with self._lock:
            self._latencies.append(seconds)

    def record_breaker_transition(self, old: str, new: str) -> None:
        with self._lock:
            key = f"{old}->{new}"
            self.breaker_transitions[key] = self.breaker_transitions.get(key, 0) + 1

    def in_flight(self) -> int:
        """Submitted requests that have not yet reached a terminal outcome."""
        with self._lock:
            return self.submitted - sum(
                getattr(self, name) for name in TERMINAL_OUTCOMES
            )

    def _percentile(self, values: list[float], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter plus derived latencies."""
        with self._lock:
            latencies = list(self._latencies)
            counters = {
                "submitted": self.submitted,
                "accepted": self.accepted,
                "completed": self.completed,
                "shed": self.shed,
                "rejected": self.rejected,
                "timed_out": self.timed_out,
                "errors": self.errors,
                "drained": self.drained,
                "degraded": self.degraded,
                "uncertain": self.uncertain,
                "breaker_served_degraded": self.breaker_served_degraded,
                "exact_fallbacks": self.exact_fallbacks,
                "reloads_ok": self.reloads_ok,
                "reloads_failed": self.reloads_failed,
                "breaker_transitions": dict(self.breaker_transitions),
            }
        counters["in_flight"] = counters["submitted"] - sum(
            counters[name] for name in TERMINAL_OUTCOMES
        )
        counters["latency_p50_ms"] = round(
            self._percentile(latencies, 0.50) * 1000.0, 3
        )
        counters["latency_p99_ms"] = round(
            self._percentile(latencies, 0.99) * 1000.0, 3
        )
        return counters
