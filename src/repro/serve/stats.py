"""Thread-safe counters making every daemon behaviour observable.

The soak test's accounting invariant is enforced here by construction:
every request that increments ``submitted`` terminates by incrementing
exactly one of the terminal outcome counters (``completed``, ``shed``,
``rejected``, ``timed_out``, ``errors``, ``drained``), so at quiescence

    submitted == completed + shed + rejected + timed_out + errors + drained

holds or the server has lost a request. ``/statz`` serves
:meth:`ServerStats.snapshot` verbatim.

Since the observability subsystem landed, the counters live in a
:class:`~repro.obs.registry.MetricsRegistry` instead of a second
hand-rolled counter implementation: one labeled counter family
(``tkdc_serve_events_total{event=...}``), one for breaker transitions,
and a request-latency histogram. The same registry feeds the daemon's
Prometheus ``/metrics`` endpoint, so ``/statz`` and ``/metrics`` can
never disagree — they read the same cells. Each ``ServerStats`` owns a
private, always-enabled registry by default (request accounting is part
of the serving contract, not optional telemetry, so the process-wide
``REGISTRY.disable()`` switch does not silence it); tests may inject
their own.

The ``/statz`` JSON shape and the attribute surface
(``stats.submitted`` etc.) are unchanged.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.registry import LATENCY_BUCKETS, MetricsRegistry

#: Terminal outcome counter names — every submitted request ends in
#: exactly one of these.
TERMINAL_OUTCOMES = (
    "completed", "shed", "rejected", "timed_out", "errors", "drained",
)


class ServerStats:
    """Registry-backed counters for one server lifetime.

    Counter semantics (the ``event`` label values):

    - ``submitted`` — classify requests that entered the handler at all
    - ``accepted`` — requests admitted past load-shedding
    - ``completed`` — 200 responses (labels returned, possibly degraded)
    - ``shed`` — 429 responses: load-shed at admission or queue expiry
    - ``rejected`` — 4xx responses: malformed body, size/row limits
    - ``timed_out`` — 503 responses: watchdog fired or deadline expired
    - ``errors`` — 500 responses: handler raised a non-client error
    - ``drained`` — 503 responses refused because the server is draining
    - ``degraded`` — 200 responses carrying at least one degraded label
    - ``uncertain`` — 200 responses carrying an UNCERTAIN label
    - ``breaker_served_degraded`` — 200s served with the breaker open
    - ``exact_fallbacks`` — exact-O(n) guard fallbacks across requests
    - ``reloads_ok`` / ``reloads_failed`` — hot reload outcomes

    Streaming-ingest counters (their own little invariant:
    ``ingest_submitted == ingest_completed + ingest_rejected``):

    - ``ingest_submitted`` — /ingest requests that entered the handler
    - ``ingest_completed`` — 200 responses (points folded in)
    - ``ingest_rejected`` — 4xx/409 responses (malformed, limits, or no
      streaming pipeline attached)
    - ``ingested_points`` — total points accepted via /ingest
    """

    COUNTER_NAMES = (
        "submitted",
        "accepted",
        "completed",
        "shed",
        "rejected",
        "timed_out",
        "errors",
        "drained",
        "degraded",
        "uncertain",
        "breaker_served_degraded",
        "exact_fallbacks",
        "reloads_ok",
        "reloads_failed",
        "ingest_submitted",
        "ingest_completed",
        "ingest_rejected",
        "ingested_points",
    )

    def __init__(
        self,
        latency_window: int = 2048,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events = self.registry.counter(
            "tkdc_serve_events_total",
            "Serve request accounting events, by event name",
            labels=("event",),
        )
        self._breaker = self.registry.counter(
            "tkdc_serve_breaker_transitions_total",
            "Circuit-breaker state transitions, keyed old->new",
            labels=("transition",),
        )
        self._latency = self.registry.histogram(
            "tkdc_serve_request_latency_seconds",
            "End-to-end latency of completed classify requests",
            buckets=LATENCY_BUCKETS,
        )
        # Materialize every counter child up front so snapshots (and
        # the Prometheus exposition) always carry explicit zeros.
        for name in self.COUNTER_NAMES:
            self._events.labels(name)
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)

    def __getattr__(self, name: str) -> int:
        # Keep the historical attribute surface (stats.submitted, ...)
        # working on top of the registry cells. Only reached when normal
        # attribute lookup fails, so real attributes are unaffected.
        if name in type(self).COUNTER_NAMES:
            return int(self._events.labels(name).value)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def breaker_transitions(self) -> dict[str, int]:
        """Breaker state transitions observed, keyed ``"old->new"``."""
        return {
            labels[0]: int(child.value)
            for labels, child in self._breaker.children()
            if child is not self._breaker
        }

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named counter (terminal outcomes included)."""
        if name not in type(self).COUNTER_NAMES:
            raise ValueError(f"unknown server counter {name!r}")
        self._events.labels(name).inc(amount)

    def observe_latency(self, seconds: float) -> None:
        """Record one completed request's service latency."""
        self._latency.observe(seconds)
        with self._lock:
            self._latencies.append(seconds)

    def record_breaker_transition(self, old: str, new: str) -> None:
        self._breaker.labels(f"{old}->{new}").inc()

    def in_flight(self) -> int:
        """Submitted requests that have not yet reached a terminal outcome."""
        counts = self._counter_values()
        return counts["submitted"] - sum(
            counts[name] for name in TERMINAL_OUTCOMES
        )

    def _counter_values(self) -> dict[str, int]:
        return {
            name: int(self._events.labels(name).value)
            for name in self.COUNTER_NAMES
        }

    def _percentile(self, values: list[float], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter plus derived latencies."""
        with self._lock:
            latencies = list(self._latencies)
        counters: dict = dict(self._counter_values())
        counters["breaker_transitions"] = self.breaker_transitions
        counters["in_flight"] = counters["submitted"] - sum(
            counters[name] for name in TERMINAL_OUTCOMES
        )
        counters["latency_p50_ms"] = round(
            self._percentile(latencies, 0.50) * 1000.0, 3
        )
        counters["latency_p99_ms"] = round(
            self._percentile(latencies, 0.99) * 1000.0, 3
        )
        return counters
