"""Configuration for the resilient tKDC serving daemon.

Every robustness behaviour of :mod:`repro.serve.daemon` is a knob here,
so tests can shrink windows and deadlines to milliseconds and the CLI
can expose the production-relevant subset. The config is frozen (like
:class:`~repro.core.config.TKDCConfig`) so a running server's behaviour
cannot drift under it mid-request.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ServeConfig:
    """All knobs for :class:`repro.serve.daemon.TKDCServer`.

    Attributes
    ----------
    host / port:
        Bind address. Port 0 binds an ephemeral port (tests); the bound
        port is reported by ``TKDCServer.port``.
    max_concurrency:
        Requests classifying simultaneously. Arrivals beyond this wait
        in the admission queue.
    queue_depth:
        Waiting slots beyond ``max_concurrency``. An arrival that finds
        queue and slots full is shed immediately with a structured 429
        — overload degrades throughput, never latency.
    retry_after:
        Baseline seconds suggested in 429/503 ``retry_after`` hints;
        scaled up with the current backlog.
    max_request_bytes / max_rows:
        Per-request body-size and query-row ceilings; oversized requests
        are rejected with a structured 413 before any parsing work.
    default_deadline / max_deadline:
        Seconds granted to a request that names no deadline, and the cap
        clamping client-supplied ``deadline_ms`` values.
    watchdog_grace:
        Extra seconds past a request's deadline before the watchdog
        abandons the worker and returns a 503 — the bound that converts
        a wedged handler into a fast structured failure instead of a
        hang.
    budget_safety:
        Fraction of the calibrated expansions/sec rate assumed available
        to one request (headroom for concurrency and cache effects) when
        translating its remaining deadline into a
        ``max_node_expansions`` budget.
    min_budget:
        Floor on the per-request expansion budget, so even a nearly
        expired deadline yields a meaningful partial traversal.
    open_budget:
        The tiny expansion budget used while the circuit breaker is
        open: answers come back fast and explicitly degraded.
    breaker_window / breaker_min_requests / breaker_threshold:
        Sliding window length, minimum observations before the breaker
        may act, and the failure-rate (errors + exact-O(n) fallbacks)
        that opens it.
    breaker_cooldown:
        Seconds the breaker stays open before admitting half-open
        probes.
    breaker_probes:
        Consecutive successful half-open probes required to close.
    drain_timeout:
        Seconds a drain (SIGTERM / ``/admin/drain``) waits for in-flight
        requests before shutting the listener down regardless.
    calibration_queries / canary_queries:
        Probe-workload sizes for the startup expansions/sec calibration
        and the hot-reload canary classification.
    probe_seed:
        Seed for generating both probe workloads from the model.
    workers:
        Serving processes. 1 (the default) is the single-process daemon
        exactly as before; >1 starts the pre-forked fleet behind the
        router (:mod:`repro.serve.router`) with the model shared over
        shared memory. Linux-oriented — see ``docs/serving.md``.
    heartbeat_interval:
        Seconds between router health probes of each worker.
    heartbeat_misses:
        Consecutive failed probes before a worker is declared dead and
        respawned (a crashed process is respawned immediately).
    worker_startup_timeout:
        Seconds the router waits for a spawned worker to announce
        readiness before giving up on it.
    """

    host: str = "127.0.0.1"
    port: int = 7317
    max_concurrency: int = 4
    queue_depth: int = 16
    retry_after: float = 0.25
    max_request_bytes: int = 1 << 20
    max_rows: int = 4096
    default_deadline: float = 1.0
    max_deadline: float = 30.0
    watchdog_grace: float = 2.0
    budget_safety: float = 0.5
    min_budget: int = 64
    open_budget: int = 32
    breaker_window: int = 64
    breaker_min_requests: int = 16
    breaker_threshold: float = 0.5
    breaker_cooldown: float = 5.0
    breaker_probes: int = 3
    drain_timeout: float = 10.0
    calibration_queries: int = 256
    canary_queries: int = 32
    probe_seed: int = 0
    workers: int = 1
    heartbeat_interval: float = 0.5
    heartbeat_misses: int = 3
    worker_startup_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.retry_after <= 0:
            raise ValueError(f"retry_after must be positive, got {self.retry_after}")
        if self.max_request_bytes < 1:
            raise ValueError(
                f"max_request_bytes must be >= 1, got {self.max_request_bytes}"
            )
        if self.max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {self.max_rows}")
        if self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {self.default_deadline}"
            )
        if self.max_deadline < self.default_deadline:
            raise ValueError(
                f"max_deadline ({self.max_deadline}) must be >= "
                f"default_deadline ({self.default_deadline})"
            )
        if self.watchdog_grace <= 0:
            raise ValueError(
                f"watchdog_grace must be positive, got {self.watchdog_grace}"
            )
        if not 0.0 < self.budget_safety <= 1.0:
            raise ValueError(
                f"budget_safety must be in (0, 1], got {self.budget_safety}"
            )
        if self.min_budget < 1:
            raise ValueError(f"min_budget must be >= 1, got {self.min_budget}")
        if self.open_budget < 1:
            raise ValueError(f"open_budget must be >= 1, got {self.open_budget}")
        if self.breaker_window < 1:
            raise ValueError(
                f"breaker_window must be >= 1, got {self.breaker_window}"
            )
        if not 1 <= self.breaker_min_requests <= self.breaker_window:
            raise ValueError(
                f"breaker_min_requests must be in [1, breaker_window], "
                f"got {self.breaker_min_requests}"
            )
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError(
                f"breaker_threshold must be in (0, 1], got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, got {self.breaker_cooldown}"
            )
        if self.breaker_probes < 1:
            raise ValueError(
                f"breaker_probes must be >= 1, got {self.breaker_probes}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(
                f"drain_timeout must be positive, got {self.drain_timeout}"
            )
        if self.calibration_queries < 1:
            raise ValueError(
                f"calibration_queries must be >= 1, got {self.calibration_queries}"
            )
        if self.canary_queries < 1:
            raise ValueError(
                f"canary_queries must be >= 1, got {self.canary_queries}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.heartbeat_misses < 1:
            raise ValueError(
                f"heartbeat_misses must be >= 1, got {self.heartbeat_misses}"
            )
        if self.worker_startup_timeout <= 0:
            raise ValueError(
                f"worker_startup_timeout must be positive, "
                f"got {self.worker_startup_timeout}"
            )

    def with_updates(self, **changes: object) -> "ServeConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]
