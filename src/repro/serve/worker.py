"""One serving-fleet worker process (``repro serve-worker``).

A worker is the *existing* single-process daemon — same admission
control, deadline→budget mapping, watchdog, breaker, drain — with two
substitutions made by :class:`ShmModelManager`:

- the model comes from the shared-memory plane (:mod:`repro.serve.plane`)
  instead of a pickle file, so N workers cost one copy of the index; and
- the deadline→budget calibration is read from the manifest instead of
  re-measured, so fleet boot is O(1) calibrations and every worker maps
  deadlines identically.

Hot reload keeps its canary/rollback shape: ``/admin/reload`` with a
manifest path attaches the *candidate* generation, runs the same canary
probe workload through it, and only then swaps — a failed attach or
canary leaves the worker serving the previous generation untouched.

Startup protocol: the worker binds an ephemeral port and announces it on
stdout as ``REPRO_WORKER_READY port=<port> pid=<pid>`` — the router
parses that line and only then routes traffic. SIGTERM drains
gracefully, exactly like the single-process daemon.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.core.stats import TraversalStats
from repro.index.shm import ShmManifestError, TreeAttachment
from repro.serve.config import ServeConfig
from repro.serve.daemon import TKDCServer, install_signal_handlers
from repro.serve.plane import attach_classifier, calibration_from_manifest
from repro.serve.reload import ModelManager, ReloadResult
from repro.serve.stats import ServerStats

log = logging.getLogger("repro.serve")

#: Stdout readiness announcement prefix the router parses.
READY_PREFIX = "REPRO_WORKER_READY"


class ShmModelManager(ModelManager):
    """A :class:`ModelManager` whose models live on the shm plane.

    ``reload`` attaches a manifest (the candidate generation during a
    fleet rollout, or the live manifest on SIGHUP/respawn) instead of
    loading a pickle; the verify→canary→swap protocol and its rollback
    guarantee are otherwise identical to the file-based manager.
    """

    def __init__(
        self,
        manifest_path: Path | str,
        config: ServeConfig,
        stats: ServerStats | None = None,
    ) -> None:
        classifier, attachment, manifest = attach_classifier(manifest_path)
        #: The live-manifest location; ``reload(None)`` re-reads it, so a
        #: SIGHUP after the router's atomic manifest swap picks up the
        #: new generation.
        self.manifest_path = Path(manifest_path)
        self.manifest = manifest
        self._attachment: TreeAttachment = attachment
        super().__init__(
            manifest.extras.get("source_model") or manifest_path,
            config,
            stats=stats,
            classifier=classifier,
            calibration=calibration_from_manifest(manifest),
        )

    def reload(self, path: Path | str | None = None) -> ReloadResult:
        """Attach→canary→swap against a manifest; rollback on failure."""
        requested = Path(path) if path is not None else self.manifest_path
        try:
            candidate, attachment, manifest = attach_classifier(requested)
        except Exception as exc:
            return self._refused(requested, "attach", exc)
        try:
            candidate = self._prepare(candidate)
            self._canary(candidate)
            calibration = calibration_from_manifest(manifest)
        except Exception as exc:
            attachment.close()
            return self._refused(requested, "canary", exc)
        with self._lock:
            previous = self._attachment
            self._classifier = candidate
            self.calibration = calibration
            self._attachment = attachment
            self.manifest = manifest
            self.model_path = Path(
                manifest.extras.get("source_model") or requested
            )
            self._traversal_totals = TraversalStats()
        # In-flight requests may still hold views into the previous
        # generation's mappings; close() tolerates that (the pages are
        # released when the last view dies), so this never races them.
        previous.close()
        self.stats.bump("reloads_ok")
        log.info(
            "worker re-attached generation %s (threshold=%.6g)",
            manifest.generation, candidate.threshold.value,
        )
        return ReloadResult(
            ok=True,
            stage="swapped",
            model_path=str(self.model_path),
            threshold=float(candidate.threshold.value),
            expansions_per_second=calibration.expansions_per_second,
        )

    def close(self) -> None:
        """Release the live mapping (shutdown path; never unlinks)."""
        self._attachment.close()


def run_worker(
    manifest_path: Path | str,
    config: ServeConfig,
    worker_index: int = 0,
    announce: bool = True,
) -> int:
    """Worker process entry: attach, serve, drain. Returns exit code."""
    manager = ShmModelManager(manifest_path, config)
    server = TKDCServer(manager)
    install_signal_handlers(server)
    if announce:
        print(
            f"{READY_PREFIX} port={server.port} pid={os.getpid()} "
            f"index={worker_index} generation={manager.manifest.generation}",
            flush=True,
        )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        manager.close()
    return 0


def main(args) -> int:
    """``repro serve-worker`` entry (spawned by the router, not users)."""
    try:
        overrides = json.loads(args.config_json) if args.config_json else {}
        if not isinstance(overrides, dict):
            raise ValueError("--config-json must be a JSON object")
        config = ServeConfig(**overrides).with_updates(port=0, workers=1)
    except (ValueError, TypeError) as exc:
        print(f"serve-worker: bad --config-json: {exc}", flush=True)
        return 2
    try:
        return run_worker(args.manifest, config, worker_index=args.worker_index)
    except (ShmManifestError, OSError) as exc:
        print(
            f"serve-worker: cannot attach {args.manifest}: "
            f"{type(exc).__name__}: {exc}",
            flush=True,
        )
        return 1
