"""The shared-memory *model plane* the serving fleet attaches to.

:mod:`repro.index.shm` moves the heavy ``FlatTree`` arrays across
processes; this module moves everything else a worker needs to serve the
model: a pickled classifier *skeleton* (config, kernel, threshold, grid
cache, coreset certificate — with the tree and all per-point arrays
stripped, so the pickle stays kilobytes regardless of model size), the
router-measured deadline→budget calibration, and the source model file's
sha256. All of it rides in the tree manifest's ``extras``, so one JSON
file fully describes one servable generation:

    publish_classifier(clf, ...)    router: segments + manifest
    manifest.save(path)             router: atomic file for workers
    attach_classifier(path)         worker: classifier wired to shm tree

The skeleton blob carries its own sha256 in the manifest so a torn or
hand-edited manifest is refused before unpickling, mirroring the
integrity-first posture of :mod:`repro.io.models` for whole model files.
"""

from __future__ import annotations

import base64
import copy
import dataclasses
import hashlib
import pickle
from pathlib import Path

import numpy as np

from repro.core.classifier import TKDCClassifier
from repro.core.stats import TraversalStats
from repro.index.shm import (
    PublishedTree,
    ShmManifestError,
    TreeAttachment,
    TreeManifest,
    attach_flat_tree,
    publish_flat_tree,
)
from repro.obs.buildinfo import build_info
from repro.serve.calibrate import BudgetCalibration

#: Conventional basename for the live-generation manifest file.
MANIFEST_BASENAME = "MANIFEST.json"


def file_sha256(path: Path | str) -> str:
    """Hex sha256 of a file's bytes (the manifest's model identity)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def model_skeleton(classifier: TKDCClassifier) -> TKDCClassifier:
    """A copy of ``classifier`` with every per-point array stripped.

    What remains is exactly the state ``classify_detailed`` reads besides
    the tree: config, kernel, threshold, ``_rule_eta``, the grid cache
    (a small Counter), and the coreset *certificate* (``eta``/``delta``/
    ``deterministic`` drive the ``certified`` semantics; the coreset's
    own point arrays already live in the tree segments, so they are
    replaced by a one-row placeholder rather than pickled twice).
    """
    skeleton = copy.copy(classifier)
    skeleton._tree = None
    skeleton._stats = TraversalStats()
    skeleton.training_scores_ = None
    skeleton.training_labels_ = None
    # The hbe index is per-point state (hash tables over every tree
    # point); workers rebuild it deterministically from config.seed and
    # the shm tree's point order, so dropping it costs one lazy rebuild
    # and guarantees identical tables fleet-wide.
    skeleton._hbe = None
    if skeleton.coreset_ is not None:
        coreset = skeleton.coreset_
        placeholder = np.zeros((1, coreset.points.shape[1]), dtype=np.float64)
        skeleton.coreset_ = dataclasses.replace(
            coreset,
            points=placeholder,
            weights=None if coreset.weights is None else np.ones(1),
        )
    return skeleton


def publish_classifier(
    classifier: TKDCClassifier,
    model_path: Path | str,
    model_sha256: str,
    calibration: BudgetCalibration,
    generation: str | None = None,
) -> PublishedTree:
    """Publish one servable generation: tree segments + full manifest.

    The caller (the router) keeps the returned :class:`PublishedTree`
    alive for the generation's lifetime and is responsible for
    ``manifest.save(...)`` and the eventual ``unlink()``.
    """
    blob = pickle.dumps(
        model_skeleton(classifier), protocol=pickle.HIGHEST_PROTOCOL
    )
    extras = {
        "skeleton_pickle_b64": base64.b64encode(blob).decode("ascii"),
        "skeleton_sha256": hashlib.sha256(blob).hexdigest(),
        "source_model": str(model_path),
        "threshold": float(classifier.threshold.value),
        "calibration": {
            "expansions_per_second": calibration.expansions_per_second,
            "measured": calibration.measured,
            "sample_queries": calibration.sample_queries,
            "expansions_observed": calibration.expansions_observed,
            "engine": calibration.engine,
            "engine_reason": calibration.engine_reason,
            "per_engine": [list(item) for item in calibration.per_engine],
        },
    }
    return publish_flat_tree(
        classifier.tree.flatten(),
        generation=generation,
        model_sha256=model_sha256,
        build=build_info(),
        extras=extras,
    )


def calibration_from_manifest(manifest: TreeManifest) -> BudgetCalibration:
    """The router-measured calibration shipped in the manifest.

    Workers use this instead of re-running ``measure_expansion_rate``
    at boot, so fleet startup is O(1) calibrations and every worker maps
    deadlines to budgets identically.
    """
    raw = manifest.extras.get("calibration")
    if not isinstance(raw, dict):
        raise ShmManifestError("manifest carries no calibration block")
    try:
        per_engine = tuple(
            (str(name), float(rate))
            for name, rate in raw.get("per_engine", [])
        )
        return BudgetCalibration(
            expansions_per_second=float(raw["expansions_per_second"]),
            measured=bool(raw["measured"]),
            sample_queries=int(raw["sample_queries"]),
            expansions_observed=int(raw["expansions_observed"]),
            # Manifests written before the hbe engine carry no engine
            # fields; those fleets were batch-only by construction.
            engine=str(raw.get("engine", "batch")),
            engine_reason=str(raw.get("engine_reason", "configured")),
            per_engine=per_engine,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ShmManifestError(
            f"manifest calibration block is malformed: {exc}"
        ) from exc


def attach_classifier(
    manifest: TreeManifest | Path | str,
) -> tuple[TKDCClassifier, TreeAttachment, TreeManifest]:
    """Reconstruct a servable classifier from a published generation.

    Verifies the skeleton blob's sha256 *before* unpickling, then wires
    the skeleton to the shm-attached tree. The returned attachment must
    outlive the classifier (its arrays are views into the mappings).
    """
    if not isinstance(manifest, TreeManifest):
        manifest = TreeManifest.load(manifest)
    encoded = manifest.extras.get("skeleton_pickle_b64")
    expected = manifest.extras.get("skeleton_sha256")
    if not isinstance(encoded, str) or not isinstance(expected, str):
        raise ShmManifestError(
            "manifest carries no classifier skeleton — published without "
            "publish_classifier?"
        )
    try:
        blob = base64.b64decode(encoded.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ShmManifestError(
            f"manifest skeleton is not valid base64: {exc}"
        ) from exc
    actual = hashlib.sha256(blob).hexdigest()
    if actual != expected:
        raise ShmManifestError(
            f"manifest skeleton failed its sha256 check (stored "
            f"{expected[:16]}…, computed {actual[:16]}…); refusing to unpickle"
        )
    skeleton = pickle.loads(blob)
    if not isinstance(skeleton, TKDCClassifier):
        raise ShmManifestError("manifest skeleton is not a TKDCClassifier")
    attachment = attach_flat_tree(manifest)
    skeleton._tree = attachment.tree
    return skeleton, attachment, manifest
