"""Per-query cost diagnostics for fitted classifiers.

tKDC's cost is extremely skewed: most queries end after a handful of
node expansions while the few near the threshold pay up to O(n)
(Definition 1's near/far split). Aggregate averages hide this; when a
workload is slower than expected, the per-query profile says whether
the problem is a crowded threshold (many near queries), a weak index
(high expansions everywhere), or simply scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import bound_density
from repro.core.classifier import TKDCClassifier
from repro.core.pruning import PruneOutcome
from repro.core.stats import TraversalStats
from repro.validation import as_finite_matrix


@dataclass(frozen=True)
class QueryProfile:
    """Cost and outcome of one classification traversal."""

    kernel_evaluations: int
    node_expansions: int
    outcome: str  # threshold_high / threshold_low / tolerance / exhausted / grid

    @property
    def is_near(self) -> bool:
        """Definition 1: the index alone could not classify this query."""
        return self.kernel_evaluations > 0


@dataclass(frozen=True)
class WorkloadProfile:
    """Aggregated per-query diagnostics for a query batch."""

    profiles: tuple[QueryProfile, ...]

    @property
    def n_queries(self) -> int:
        return len(self.profiles)

    @property
    def near_fraction(self) -> float:
        """Share of queries requiring leaf-level kernel work."""
        if not self.profiles:
            return 0.0
        return sum(p.is_near for p in self.profiles) / len(self.profiles)

    @property
    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for profile in self.profiles:
            counts[profile.outcome] = counts.get(profile.outcome, 0) + 1
        return counts

    def kernel_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 90.0, 99.0, 100.0)
    ) -> dict[float, float]:
        """Distribution of kernel evaluations per query."""
        if not self.profiles:
            return {p: 0.0 for p in percentiles}
        kernels = np.array([p.kernel_evaluations for p in self.profiles])
        return {p: float(np.percentile(kernels, p)) for p in percentiles}

    def summary(self) -> str:
        """Human-readable multi-line report."""
        pct = self.kernel_percentiles()
        lines = [
            f"queries: {self.n_queries}",
            f"near fraction (needed leaf work): {self.near_fraction:.1%}",
            "kernel evaluations per query: "
            + ", ".join(f"p{int(k)}={v:.0f}" for k, v in pct.items()),
            "stop reasons: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.outcome_counts.items())),
        ]
        return "\n".join(lines)


def profile_queries(
    classifier: TKDCClassifier, queries: np.ndarray
) -> WorkloadProfile:
    """Profile every query's traversal against a fitted classifier.

    Runs the same classification the classifier would (grid shortcut
    included) with per-query instrumentation. Does not mutate the
    classifier's own stats.
    """
    if not classifier.is_fitted:
        raise ValueError("profile_queries needs a fitted classifier")
    queries = as_finite_matrix(queries, "queries")
    kernel = classifier.kernel
    scaled = kernel.scale(queries)
    threshold = classifier.threshold.value
    epsilon = classifier.config.epsilon
    grid = classifier._grid  # noqa: SLF001 - diagnostics mirror the real path

    profiles: list[QueryProfile] = []
    for i in range(queries.shape[0]):
        query = scaled[i]
        if grid is not None and grid.is_certain_inlier(query, threshold, epsilon):
            profiles.append(QueryProfile(0, 0, "grid"))
            continue
        stats = TraversalStats()
        result = bound_density(
            classifier.tree, kernel, query, threshold, threshold, epsilon, stats,
            use_threshold_rule=classifier.config.use_threshold_rule,
            use_tolerance_rule=classifier.config.use_tolerance_rule,
        )
        outcome = result.outcome.value if isinstance(result.outcome, PruneOutcome) \
            else "exhausted"
        profiles.append(
            QueryProfile(stats.kernel_evaluations, stats.node_expansions, outcome)
        )
    return WorkloadProfile(tuple(profiles))
