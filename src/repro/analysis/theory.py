"""Empirical checks of the paper's runtime analysis (Section 3.8 / Appendix A).

The analysis rests on two claims:

- **Lemma 1**: the probability that a query is *near* (its density within
  the index resolution of the threshold, forcing leaf evaluations)
  shrinks as ``O(n^(-1/d))``.
- **Theorem 1**: per-query cost is therefore ``O(n^((d-1)/d))`` for
  ``d > 1`` (``O(log n)`` at ``d = 1``).

These helpers measure the near fraction and cost exponents on simulated
sweeps so the benchmarks can check the fitted slopes against the
predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.harness import fit_loglog_slope


def predicted_cost_exponent(dim: int) -> float:
    """Theorem 1's per-query cost growth exponent, ``(d-1)/d``."""
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    return (dim - 1) / dim


def predicted_near_exponent(dim: int) -> float:
    """Lemma 1's near-region probability exponent, ``-1/d``."""
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    return -1.0 / dim


def near_fraction(
    densities: np.ndarray, threshold: float, resolution: float
) -> float:
    """Fraction of queries whose density is within ``resolution`` of ``t``.

    ``resolution`` models the index precision ``Delta_n`` from the
    Appendix A argument: queries inside the band are "near" and require
    leaf-level work.
    """
    if resolution < 0:
        raise ValueError(f"resolution must be non-negative, got {resolution}")
    densities = np.asarray(densities, dtype=np.float64)
    return float(np.mean(np.abs(densities - threshold) <= resolution))


@dataclass(frozen=True)
class ScalingFit:
    """A fitted power law against its theoretical prediction."""

    fitted_exponent: float
    predicted_exponent: float

    @property
    def satisfied(self) -> bool:
        """Whether the measurement is at least as good as the bound.

        The paper's bounds are conservative upper bounds on cost (lower
        bounds on shrinkage), so a *smaller* fitted cost exponent (or
        more negative near exponent) also satisfies them. The slack
        absorbs finite-size effects at laptop-scale n.
        """
        return self.fitted_exponent <= self.predicted_exponent + 0.2


def fit_cost_scaling(
    sizes: np.ndarray, kernels_per_query: np.ndarray, dim: int
) -> ScalingFit:
    """Fit measured per-query kernel work against Theorem 1's exponent."""
    return ScalingFit(
        fitted_exponent=fit_loglog_slope(
            np.asarray(sizes, dtype=np.float64),
            np.asarray(kernels_per_query, dtype=np.float64),
        ),
        predicted_exponent=predicted_cost_exponent(dim),
    )


def fit_near_scaling(
    sizes: np.ndarray, near_fractions: np.ndarray, dim: int
) -> ScalingFit:
    """Fit the measured near-region probability against Lemma 1.

    For the near-exponent the bound is an upper bound on the fraction,
    so satisfaction means the fitted exponent is at most ``-1/d`` (plus
    fitting slack).
    """
    return ScalingFit(
        fitted_exponent=fit_loglog_slope(
            np.asarray(sizes, dtype=np.float64),
            np.asarray(near_fractions, dtype=np.float64),
        ),
        predicted_exponent=predicted_near_exponent(dim),
    )
