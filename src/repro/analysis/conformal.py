"""Split-conformal inference on top of density scores.

The paper's statistical use case (Section 2.1) cites Lei's
"Classification with confidence": bounded probability densities
translate directly into distribution-free confidence statements. This
module implements the standard split-conformal construction with the
KDE density as the conformity score:

- calibrate on a held-out split: record each calibration point's
  density under the fitted model;
- the conformal p-value of a new observation is the (smoothed) fraction
  of calibration densities at or below its own — low p-value means the
  observation sits in a region the distribution rarely visits;
- ``is_typical(x, alpha)`` is then a valid level-``alpha`` test of
  "x was drawn from the same distribution", with finite-sample
  guarantee ``P(p-value <= alpha) <= alpha`` under exchangeability.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import TKDCClassifier
from repro.validation import as_finite_matrix


class DensityConformal:
    """Split-conformal typicality tests from tKDC density scores.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.core.classifier.TKDCClassifier`. Its
        ``estimate_density`` (tolerance-only, ``eps·t``-precise) supplies
        the conformity scores.
    calibration:
        Held-out points from the same distribution, *not* used to fit
        the classifier (a fresh split keeps the guarantee exact).

    Example
    -------
    >>> import numpy as np
    >>> from repro import TKDCClassifier, TKDCConfig
    >>> rng = np.random.default_rng(0)
    >>> train, calibration = rng.normal(size=(1500, 2)), rng.normal(size=(300, 2))
    >>> clf = TKDCClassifier(TKDCConfig(seed=0)).fit(train)
    >>> conformal = DensityConformal(clf, calibration)
    >>> bool(conformal.is_typical(np.array([[0.0, 0.0]]), alpha=0.05)[0])
    True
    """

    def __init__(self, classifier: TKDCClassifier, calibration: np.ndarray) -> None:
        if not classifier.is_fitted:
            raise ValueError("DensityConformal needs a fitted classifier")
        calibration = as_finite_matrix(calibration, "calibration data")
        if calibration.shape[0] < 10:
            raise ValueError(
                f"need at least 10 calibration points, got {calibration.shape[0]}"
            )
        self.classifier = classifier
        self._calibration_scores = np.sort(
            classifier.estimate_density(calibration)
        )

    @property
    def n_calibration(self) -> int:
        """Number of calibration points backing the p-values."""
        return self._calibration_scores.shape[0]

    def p_values(self, queries: np.ndarray) -> np.ndarray:
        """Conformal p-value per query (small = atypical).

        Uses the standard ``(1 + #{cal <= score}) / (n + 1)`` form, so
        values lie in ``[1/(n+1), 1]`` and the test is exactly valid.
        """
        queries = as_finite_matrix(queries, "queries")
        scores = self.classifier.estimate_density(queries)
        ranks = np.searchsorted(self._calibration_scores, scores, side="right")
        return (1.0 + ranks) / (self.n_calibration + 1.0)

    def is_typical(self, queries: np.ndarray, alpha: float = 0.05) -> np.ndarray:
        """Boolean per query: True unless rejected at level ``alpha``.

        Guarantee: for a query genuinely drawn from the training
        distribution, ``P(rejected) <= alpha`` (finite-sample, no
        distributional assumptions beyond exchangeability).
        """
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_values(queries) > alpha

    def prediction_region_threshold(self, alpha: float = 0.05) -> float:
        """Density level whose super-level set is the 1-alpha region.

        The conformal analogue of the paper's quantile threshold: a new
        draw lands in ``{x : f(x) >= threshold}`` with probability at
        least ``1 - alpha``.
        """
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        n = self.n_calibration
        # The ceil((n+1)·alpha)-th smallest calibration score.
        rank = int(np.ceil((n + 1) * alpha)) - 1
        rank = min(max(rank, 0), n - 1)
        return float(self._calibration_scores[rank])
