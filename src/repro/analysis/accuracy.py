"""Classification accuracy metrics (paper Section 4.3, Figure 8).

The paper scores algorithms with the F1 of the LOW (below-threshold)
class against ground truth computed from exact kernel densities, since
with ``p = 0.01`` the positives are the rare outliers. These helpers are
implemented from scratch and treat "positive" as an explicit argument so
both conventions are available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive + self.false_positive
            + self.true_negative + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total


def confusion_counts(
    truth: np.ndarray, predicted: np.ndarray, positive: object = 1
) -> ConfusionCounts:
    """Count confusion-matrix cells for a binary labelling."""
    truth = np.asarray(truth)
    predicted = np.asarray(predicted)
    if truth.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: truth {truth.shape} vs predicted {predicted.shape}"
        )
    truth_pos = truth == positive
    pred_pos = predicted == positive
    return ConfusionCounts(
        true_positive=int(np.count_nonzero(truth_pos & pred_pos)),
        false_positive=int(np.count_nonzero(~truth_pos & pred_pos)),
        true_negative=int(np.count_nonzero(~truth_pos & ~pred_pos)),
        false_negative=int(np.count_nonzero(truth_pos & ~pred_pos)),
    )


def precision_recall(
    truth: np.ndarray, predicted: np.ndarray, positive: object = 1
) -> tuple[float, float]:
    """(precision, recall) of the positive class; 0.0 when undefined."""
    counts = confusion_counts(truth, predicted, positive)
    predicted_pos = counts.true_positive + counts.false_positive
    actual_pos = counts.true_positive + counts.false_negative
    precision = counts.true_positive / predicted_pos if predicted_pos else 0.0
    recall = counts.true_positive / actual_pos if actual_pos else 0.0
    return precision, recall


def f1_score(truth: np.ndarray, predicted: np.ndarray, positive: object = 1) -> float:
    """Harmonic mean of precision and recall; 0.0 when undefined."""
    precision, recall = precision_recall(truth, predicted, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
