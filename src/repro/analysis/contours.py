"""Level-set extraction and lightweight visualization.

The paper's motivating use cases (Section 2.1, Figures 1b and 2a) draw
the boundary between HIGH and LOW density regions. These helpers
evaluate a classifier or density function on a regular 2-d grid, extract
the boundary with a from-scratch marching-squares pass, and can render
the region as ASCII art for terminal examples.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def _grid_points(
    xlim: tuple[float, float], ylim: tuple[float, float], nx: int, ny: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if nx < 2 or ny < 2:
        raise ValueError(f"grid must be at least 2x2, got {nx}x{ny}")
    xs = np.linspace(xlim[0], xlim[1], nx)
    ys = np.linspace(ylim[0], ylim[1], ny)
    grid_x, grid_y = np.meshgrid(xs, ys, indexing="ij")
    points = np.column_stack([grid_x.ravel(), grid_y.ravel()])
    return xs, ys, points


def density_grid(
    density_fn: Callable[[np.ndarray], np.ndarray],
    xlim: tuple[float, float],
    ylim: tuple[float, float],
    nx: int = 64,
    ny: int = 64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate a 2-d density function on a grid.

    Returns ``(xs, ys, values)`` where ``values`` has shape ``(nx, ny)``.
    """
    xs, ys, points = _grid_points(xlim, ylim, nx, ny)
    values = np.asarray(density_fn(points), dtype=np.float64).reshape(nx, ny)
    return xs, ys, values


def classification_mask(
    classify_fn: Callable[[np.ndarray], np.ndarray],
    xlim: tuple[float, float],
    ylim: tuple[float, float],
    nx: int = 64,
    ny: int = 64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify a grid of 2-d points; True cells are HIGH density.

    ``classify_fn`` must return labels comparable to 1 for HIGH (both
    :class:`~repro.core.result.Label` arrays and int arrays work).
    """
    xs, ys, points = _grid_points(xlim, ylim, nx, ny)
    labels = np.asarray([int(label) for label in classify_fn(points)])
    return xs, ys, (labels == 1).reshape(nx, ny)


# Marching-squares segment table: for each 4-bit corner configuration
# (bit order: bottom-left, bottom-right, top-right, top-left), the pairs
# of cell edges (0=bottom, 1=right, 2=top, 3=left) crossed by the
# iso-line. Ambiguous saddles (cases 5 and 10) use the standard
# two-segment resolution.
_SEGMENTS: dict[int, list[tuple[int, int]]] = {
    0: [], 15: [],
    1: [(3, 0)], 14: [(3, 0)],
    2: [(0, 1)], 13: [(0, 1)],
    3: [(3, 1)], 12: [(3, 1)],
    4: [(1, 2)], 11: [(1, 2)],
    6: [(0, 2)], 9: [(0, 2)],
    7: [(3, 2)], 8: [(3, 2)],
    5: [(3, 0), (1, 2)],
    10: [(0, 1), (3, 2)],
}


def marching_squares(
    xs: np.ndarray, ys: np.ndarray, values: np.ndarray, level: float
) -> list[tuple[tuple[float, float], tuple[float, float]]]:
    """Extract iso-line segments of ``values == level`` on a regular grid.

    ``values`` has shape ``(len(xs), len(ys))`` with ``values[i, j]``
    sampled at ``(xs[i], ys[j])``. Returns line segments as
    ``((x0, y0), (x1, y1))`` pairs with linear interpolation along cell
    edges.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (len(xs), len(ys)):
        raise ValueError(
            f"values shape {values.shape} does not match grid ({len(xs)}, {len(ys)})"
        )
    segments: list[tuple[tuple[float, float], tuple[float, float]]] = []
    for i in range(len(xs) - 1):
        for j in range(len(ys) - 1):
            corners = (
                values[i, j],        # bottom-left
                values[i + 1, j],    # bottom-right
                values[i + 1, j + 1],  # top-right
                values[i, j + 1],    # top-left
            )
            case = sum(1 << k for k, value in enumerate(corners) if value > level)
            for edge_a, edge_b in _SEGMENTS[case]:
                point_a = _edge_crossing(xs, ys, i, j, corners, edge_a, level)
                point_b = _edge_crossing(xs, ys, i, j, corners, edge_b, level)
                segments.append((point_a, point_b))
    return segments


def _edge_crossing(
    xs: np.ndarray,
    ys: np.ndarray,
    i: int,
    j: int,
    corners: tuple[float, float, float, float],
    edge: int,
    level: float,
) -> tuple[float, float]:
    """Interpolated crossing point of the iso-line on one cell edge."""
    bottom_left, bottom_right, top_right, top_left = corners
    if edge == 0:  # bottom: between corners 0 and 1, along x
        t = _interp_fraction(bottom_left, bottom_right, level)
        return (xs[i] + t * (xs[i + 1] - xs[i]), ys[j])
    if edge == 1:  # right: between corners 1 and 2, along y
        t = _interp_fraction(bottom_right, top_right, level)
        return (xs[i + 1], ys[j] + t * (ys[j + 1] - ys[j]))
    if edge == 2:  # top: between corners 3 and 2, along x
        t = _interp_fraction(top_left, top_right, level)
        return (xs[i] + t * (xs[i + 1] - xs[i]), ys[j + 1])
    # left: between corners 0 and 3, along y
    t = _interp_fraction(bottom_left, top_left, level)
    return (xs[i], ys[j] + t * (ys[j + 1] - ys[j]))


def _interp_fraction(value_a: float, value_b: float, level: float) -> float:
    if value_a == value_b:
        return 0.5
    return float(np.clip((level - value_a) / (value_b - value_a), 0.0, 1.0))


def render_ascii(mask: np.ndarray, high_char: str = "#", low_char: str = ".") -> str:
    """Render a boolean (nx, ny) region mask as terminal-friendly rows.

    The y axis points up (last row of output is the lowest y), matching
    the orientation of the paper's scatter plots.
    """
    mask = np.asarray(mask, dtype=bool)
    rows = []
    for j in range(mask.shape[1] - 1, -1, -1):
        rows.append("".join(high_char if mask[i, j] else low_char for i in range(mask.shape[0])))
    return "\n".join(rows)
