"""Analysis utilities: classification metrics and level-set extraction."""

from repro.analysis.conformal import DensityConformal
from repro.analysis.diagnostics import WorkloadProfile, profile_queries
from repro.analysis.accuracy import (
    ConfusionCounts,
    confusion_counts,
    f1_score,
    precision_recall,
)
from repro.analysis.contours import (
    classification_mask,
    density_grid,
    marching_squares,
    render_ascii,
)

__all__ = [
    "DensityConformal",
    "WorkloadProfile",
    "profile_queries",
    "ConfusionCounts",
    "confusion_counts",
    "f1_score",
    "precision_recall",
    "classification_mask",
    "density_grid",
    "marching_squares",
    "render_ascii",
]
