"""Empirical validation of coreset certificates.

Both constructions ship an analytic ``eta``; this module measures the
quantity it bounds — ``max_x |f_X(x) - f_S(x)|`` over a probe set — by
brute force, so benches and tests can report how much slack the
certificate carries. Probes default to a mix of training points (where
density, and hence absolute error, is largest) and fresh draws from the
training bounding box (to catch sparse-region behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.coresets.base import Coreset

#: Exact-KDE evaluation proceeds in probe chunks of this many rows so the
#: (chunk, n) distance matrix stays comfortably in cache/RAM.
_PROBE_CHUNK = 256


def exact_density(
    scaled_points: np.ndarray,
    kernel,
    scaled_probes: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Brute-force (weighted) KDE of ``scaled_probes`` under ``kernel``."""
    n = scaled_points.shape[0]
    total = float(weights.sum()) if weights is not None else float(n)
    out = np.empty(scaled_probes.shape[0])
    for start in range(0, scaled_probes.shape[0], _PROBE_CHUNK):
        chunk = scaled_probes[start : start + _PROBE_CHUNK]
        diffs = chunk[:, None, :] - scaled_points[None, :, :]
        sq = np.einsum("ijk,ijk->ij", diffs, diffs)
        values = kernel.value(sq.ravel()).reshape(sq.shape)
        if weights is not None:
            values = values * weights[None, :]
        out[start : start + _PROBE_CHUNK] = values.sum(axis=1) / total
    return out


def empirical_eta(
    scaled_points: np.ndarray,
    coreset: Coreset,
    kernel,
    n_probes: int = 512,
    rng: np.random.Generator | None = None,
) -> float:
    """Measured ``max |f_X - f_S|`` over a probe set.

    A lower bound on the true sup-norm error (the max over a finite probe
    set), so ``empirical_eta <= eta`` is a necessary sanity check for a
    valid certificate, not a proof of one.
    """
    rng = np.random.default_rng() if rng is None else rng
    n = scaled_points.shape[0]
    n_train_probes = min(n, n_probes // 2)
    train_probes = scaled_points[rng.choice(n, size=n_train_probes, replace=False)]
    lo = scaled_points.min(axis=0)
    hi = scaled_points.max(axis=0)
    box_probes = rng.uniform(lo, hi, size=(n_probes - n_train_probes, scaled_points.shape[1]))
    probes = np.concatenate([train_probes, box_probes])

    f_full = exact_density(scaled_points, kernel, probes)
    f_coreset = exact_density(coreset.points, kernel, probes, weights=coreset.weights)
    return float(np.max(np.abs(f_full - f_coreset)))
