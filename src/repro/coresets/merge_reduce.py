"""Grid-paired merge-reduce halving with a deterministic certificate.

The discrepancy-style sketch (after Phillips & Tai's merge-reduce
framework): repeatedly *halve* the weighted point set until at most
``k`` points remain. One halving round

1. lays a grid over the current points with cell volume chosen so that
   an average cell holds ~2 points,
2. pairs points that share a cell (consecutive in a lexicographic sort
   of the integer cell coordinates); per-cell leftovers are paired with
   each other across lexicographically adjacent cells,
3. replaces each pair ``(a, b)`` by its *heavier* member carrying the
   combined weight ``w_a + w_b``.

Replacing ``w_a K(x,a) + w_b K(x,b)`` by ``(w_a + w_b) K(x, kept)``
changes the (unnormalized) density sum at any query ``x`` by at most
``min(w_a, w_b) * |K(x, a) - K(x, b)|
  <= min(w_a, w_b) * L * ||a - b||``

where ``L`` is the kernel's Lipschitz constant w.r.t. scaled distance
(:attr:`repro.kernels.base.Kernel.lipschitz_constant`). Summing over all
pairs of all rounds and dividing by the total mass ``W = n`` gives a
**deterministic, data-dependent** sup-norm certificate

    eta = (L / n) * sum_rounds sum_pairs min(w_a, w_b) * ||a - b||,

valid for *every* query simultaneously — unlike the sampling
construction's pointwise Hoeffding bound. Non-Lipschitz kernels
(spherical uniform) get ``eta = inf``: the construction still runs and
compresses, but certification degrades to best-effort.

The pair displacements shrink with the grid cells, so ``eta`` is small
when the data is locally dense (many near-duplicate points) and grows
honestly when it is not; an odd point left over in a round simply
survives unpaired at its current weight (zero error contribution).
"""

from __future__ import annotations

import math

import numpy as np

from repro.coresets.base import Coreset


def _grid_cells(points: np.ndarray) -> np.ndarray:
    """Integer grid coordinates with ~2 points per occupied cell."""
    m, d = points.shape
    lo = points.min(axis=0)
    extent = points.max(axis=0) - lo
    positive = extent > 0
    if not positive.any():
        return np.zeros((m, 1), dtype=np.int64)
    # Cell side solving prod(extent / side) ~= m / 2 over the
    # non-degenerate dims, computed in log space to survive high d.
    d_eff = int(np.count_nonzero(positive))
    log_side = (
        float(np.sum(np.log(extent[positive]))) - math.log(max(m / 2.0, 1.0))
    ) / d_eff
    side = math.exp(log_side)
    cells = np.zeros((m, d), dtype=np.int64)
    cells[:, positive] = np.floor(
        (points[:, positive] - lo[positive]) / side
    ).astype(np.int64)
    return cells


def _pair_round(points: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One round of grid pairing.

    Returns ``(first, second, survivor)``: aligned index arrays of pair
    members, plus the indices (0 or 1 of them) left unpaired.
    """
    m = points.shape[0]
    cells = _grid_cells(points)
    # Lexicographic cell sort; np.lexsort keys are least-significant
    # first, so feed the columns reversed.
    order = np.lexsort(tuple(cells[:, dim] for dim in range(cells.shape[1] - 1, -1, -1)))
    sorted_cells = cells[order]
    new_run = np.empty(m, dtype=bool)
    new_run[0] = True
    np.any(sorted_cells[1:] != sorted_cells[:-1], axis=1, out=new_run[1:])
    run_id = np.cumsum(new_run) - 1
    run_start = np.flatnonzero(new_run)
    run_length = np.diff(np.append(run_start, m))

    # Position of each sorted element within its cell run.
    pos = np.arange(m) - run_start[run_id]
    in_cell_first = (pos % 2 == 0) & (pos + 1 < run_length[run_id])
    first = order[in_cell_first]
    second = order[np.flatnonzero(in_cell_first) + 1]

    # Odd leftovers, one per odd-sized run, paired with each other in
    # cell order (adjacent cells, so usually still spatially close).
    leftover = order[(pos == run_length[run_id] - 1) & (run_length[run_id] % 2 == 1)]
    n_left_pairs = leftover.size // 2
    if n_left_pairs:
        first = np.concatenate([first, leftover[0 : 2 * n_left_pairs : 2]])
        second = np.concatenate([second, leftover[1 : 2 * n_left_pairs : 2]])
    survivor = leftover[2 * n_left_pairs :]
    return first, second, survivor


def merge_reduce_coreset(scaled_points: np.ndarray, kernel, k: int) -> Coreset:
    """Halve ``scaled_points`` until at most ``k`` weighted points remain.

    The returned :class:`~repro.coresets.base.Coreset` carries float
    weights summing exactly to ``n`` (each surviving point's weight is
    the number of original points it absorbed) and the deterministic
    ``eta`` certificate derived above.
    """
    n = scaled_points.shape[0]
    points = scaled_points.copy()
    weights = np.ones(n)
    displacement_sum = 0.0  # sum of min(w_a, w_b) * ||a - b|| over all pairs
    rounds = 0

    while points.shape[0] > k:
        first, second, survivor = _pair_round(points)
        if first.size == 0:
            break  # single point left; cannot compress further
        dists = np.linalg.norm(points[first] - points[second], axis=1)
        pair_min = np.minimum(weights[first], weights[second])
        displacement_sum += float(np.sum(pair_min * dists))
        # Keep the heavier member of each pair (ties keep `first`): the
        # error multiplier above is then the *smaller* weight.
        keep_second = weights[second] > weights[first]
        kept = np.where(keep_second, second, first)
        merged_weight = weights[first] + weights[second]
        points = np.concatenate([points[kept], points[survivor]])
        weights = np.concatenate([merged_weight, weights[survivor]])
        rounds += 1

    lipschitz = kernel.lipschitz_constant
    if displacement_sum == 0.0:
        eta = 0.0  # nothing moved (k >= n, or all-duplicate data)
    elif math.isfinite(lipschitz):
        eta = lipschitz * displacement_sum / n
    else:
        eta = math.inf
    return Coreset(
        method="merge-reduce",
        points=points,
        weights=weights,
        eta=eta,
        n=n,
        deterministic=True,
        rounds=rounds,
    )
