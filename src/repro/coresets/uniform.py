"""Uniform-subsampling coreset with a Hoeffding/Serfling certificate.

The baseline construction every sketch must beat: sample ``k`` of the
``n`` training points without replacement and weight them uniformly.
For any *fixed* query ``x`` the compressed estimate ``f_S(x)`` is the
mean of ``k`` draws (without replacement) from the population
``{K_H(x - y) : y in X}``, whose values live in ``[0, K_H(0)]``.
Serfling's sharpening of Hoeffding's inequality for sampling without
replacement gives

    P( |f_S(x) - f_X(x)| > eta ) <= 2 exp( -2 k eta^2
        / ((1 - (k-1)/n) * K_H(0)^2) )

so ``eta(delta) = K_H(0) * sqrt((1 - (k-1)/n) * ln(2/delta) / (2k))``.

This certificate is *pointwise*: it holds for each query with
probability ``1 - delta``, not uniformly over all queries (a sup-norm
statement would need a covering/union argument and a larger ``eta``).
The classifier treats it as the practical analogue of a sup-norm bound
and :func:`repro.coresets.validate.empirical_eta` measures how much
slack it actually has — typically a lot, since Hoeffding ignores the
variance reduction of the kernel's fast tail decay.
"""

from __future__ import annotations

import math

import numpy as np

from repro.coresets.base import Coreset


def hoeffding_eta(kernel_max: float, k: int, n: int, delta: float) -> float:
    """The Serfling-corrected Hoeffding radius for ``k``-of-``n`` sampling."""
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if k >= n:
        return 0.0
    without_replacement = 1.0 - (k - 1) / n
    return kernel_max * math.sqrt(
        without_replacement * math.log(2.0 / delta) / (2.0 * k)
    )


def uniform_coreset(
    scaled_points: np.ndarray,
    kernel,
    k: int,
    delta: float = 0.05,
    rng: np.random.Generator | None = None,
) -> Coreset:
    """Sample a uniform ``k``-point coreset of ``scaled_points``.

    Returns a uniform-mass (unweighted) :class:`~repro.coresets.base.Coreset`
    whose ``eta`` is the Hoeffding/Serfling radius above. ``k >= n``
    degenerates to the identity coreset with ``eta = 0``.
    """
    n = scaled_points.shape[0]
    if k >= n:
        return Coreset(
            method="uniform", points=scaled_points.copy(), weights=None,
            eta=0.0, n=n, deterministic=True,
        )
    rng = np.random.default_rng() if rng is None else rng
    chosen = rng.choice(n, size=k, replace=False)
    return Coreset(
        method="uniform",
        points=scaled_points[chosen].copy(),
        weights=None,
        eta=hoeffding_eta(kernel.max_value, k, n, delta),
        n=n,
        deterministic=False,
        delta=delta,
    )
