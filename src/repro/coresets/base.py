"""Certified coreset compression of a KDE training set.

tKDC's per-query cost scales as ``O(n^((d-1)/d))`` in the training-set
size, so after batching the traversal the remaining lever is shrinking
``n`` itself. A *coreset* ``S`` (possibly weighted) of a training set
``X`` replaces the KDE

    f_X(x) = (1/n) sum_{y in X} K_H(x - y)

by the compressed estimate

    f_S(x) = (1/W) sum_{y in S} w_y K_H(x - y),   W = sum w_y,

together with a sup-norm *certificate* ``eta >= sup_x |f_X(x) - f_S(x)|``
(Phillips & Tai, "Near-Optimal Coresets of Kernel Density Estimates").
Folding ``eta`` into the traversal's density interval — widening
``(f_l, f_u)`` to ``(f_l - eta, f_u + eta)`` before both pruning rules —
makes every HIGH/LOW prune over the *small* tree a valid statement about
the *full-data* density, so the paper's ``±eps·t`` classification
guarantee survives compression whenever ``eta < eps · t_l``. When the
certificate is weaker than that (aggressive compression at tiny
thresholds, or a non-Lipschitz kernel), classification degrades to
*best-effort*: the same fast traversal over ``f_S``, with the paper
semantics applied to the compressed estimate instead of ``f_X``.

Two constructions are provided:

- :func:`~repro.coresets.uniform.uniform_coreset` — uniform subsampling
  with a Hoeffding/Serfling ``eta`` (probabilistic, per query point).
- :func:`~repro.coresets.merge_reduce.merge_reduce_coreset` — grid-paired
  merge-reduce halving with a deterministic, data-dependent ``eta``
  derived from the kernel's Lipschitz constant and the actual pair
  displacements.

:func:`~repro.coresets.validate.empirical_eta` measures
``max |f_X - f_S|`` on held-out probes to sanity-check either
certificate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Coreset construction names accepted by ``TKDCConfig.coreset``.
CORESET_METHODS = ("uniform", "merge-reduce")


@dataclass(frozen=True)
class Coreset:
    """A compressed training set with a sup-norm error certificate.

    Attributes
    ----------
    method:
        The construction that produced this coreset.
    points:
        Coreset points of shape ``(k, d)``, in the same (bandwidth-scaled)
        space as the training set they compress.
    weights:
        Per-point weights of shape ``(k,)``, or ``None`` for a
        uniform-mass coreset (every point carries ``1/k``).
    eta:
        Certified bound on ``sup_x |f_X(x) - f_S(x)|`` in density units.
        ``math.inf`` means no certificate (best-effort compression only).
    n:
        Size of the training set the coreset compresses.
    deterministic:
        True when ``eta`` holds with certainty (merge-reduce); False when
        it holds per query point with probability ``1 - delta`` (uniform
        sampling).
    delta:
        Failure probability attached to a probabilistic ``eta``
        (0 for deterministic certificates).
    rounds:
        Number of halving rounds (merge-reduce construction only).
    """

    method: str
    points: np.ndarray
    weights: np.ndarray | None
    eta: float
    n: int
    deterministic: bool
    delta: float = 0.0
    rounds: int = 0

    def __post_init__(self) -> None:
        if self.points.ndim != 2 or self.points.shape[0] < 1:
            raise ValueError(f"coreset points must be (k, d) with k >= 1, "
                             f"got shape {self.points.shape}")
        if self.weights is not None and self.weights.shape[0] != self.points.shape[0]:
            raise ValueError("coreset weights length must match point count")
        if self.eta < 0:
            raise ValueError(f"eta must be non-negative, got {self.eta}")

    @property
    def k(self) -> int:
        """Number of coreset points."""
        return self.points.shape[0]

    @property
    def compression(self) -> float:
        """The size ratio ``k / n``."""
        return self.k / self.n

    @property
    def certifiable(self) -> bool:
        """Whether the certificate is finite (a real sup-norm bound)."""
        return math.isfinite(self.eta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Coreset(method={self.method!r}, k={self.k}, n={self.n}, "
            f"eta={self.eta:.3g}, deterministic={self.deterministic})"
        )


def build_coreset(
    scaled_points: np.ndarray,
    kernel,
    method: str,
    k: int,
    delta: float = 0.05,
    rng: np.random.Generator | None = None,
) -> Coreset:
    """Build a coreset of ``scaled_points`` by the named construction.

    Parameters
    ----------
    scaled_points:
        Training points in bandwidth-scaled space, shape ``(n, d)`` —
        the same coordinates the k-d tree indexes.
    kernel:
        The (already fitted) kernel the densities are measured under.
        Supplies ``max_value`` for the Hoeffding certificate and
        ``lipschitz_constant`` for the deterministic one.
    method:
        One of :data:`CORESET_METHODS`.
    k:
        Target coreset size. Constructions may return slightly fewer
        points (merge-reduce halves until ``<= k``) but never more.
    delta:
        Failure probability for probabilistic certificates.
    rng:
        Randomness source for sampling constructions.
    """
    from repro.coresets.merge_reduce import merge_reduce_coreset
    from repro.coresets.uniform import uniform_coreset

    if method not in CORESET_METHODS:
        raise ValueError(
            f"unknown coreset method {method!r}; choose from {CORESET_METHODS}"
        )
    scaled_points = np.atleast_2d(np.asarray(scaled_points, dtype=np.float64))
    if k < 1:
        raise ValueError(f"coreset size must be >= 1, got {k}")
    if method == "uniform":
        return uniform_coreset(scaled_points, kernel, k, delta=delta, rng=rng)
    return merge_reduce_coreset(scaled_points, kernel, k)
