"""Certified coreset compression of KDE training sets (see ``base``)."""

from repro.coresets.base import CORESET_METHODS, Coreset, build_coreset
from repro.coresets.merge_reduce import merge_reduce_coreset
from repro.coresets.uniform import hoeffding_eta, uniform_coreset
from repro.coresets.validate import empirical_eta, exact_density

__all__ = [
    "CORESET_METHODS",
    "Coreset",
    "build_coreset",
    "empirical_eta",
    "exact_density",
    "hoeffding_eta",
    "merge_reduce_coreset",
    "uniform_coreset",
]
