"""Deterministic fault injection for the tKDC serving path.

Production failure modes — corrupted node bounds from a bad float op,
kernel underflow on extreme-scale data, a crashed or stalled pool
worker — are rare and timing-dependent, which makes the guards that
handle them untestable without help. A :class:`FaultPlan` makes every
one of them reproducible: it names, by deterministic ordinal (the k-th
child-bound computation, the k-th leaf evaluation, chunk index c of a
parallel batch), exactly where a fault fires. Tests inject a plan
through ``TKDCConfig(fault_plan=...)`` and assert on the recovery
behaviour; no sleeps, no flaky probabilities unless a seeded rate is
explicitly requested.

The plan is a frozen, picklable value object so it crosses process
boundaries unchanged: pool workers consult the *same* plan the parent
holds, keyed purely on ``(chunk_index, attempt)``, so worker faults are
deterministic regardless of scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Supported corruption shapes for injected bound faults.
BOUND_MODES = ("nan", "invert", "inf")

#: Worker fault kinds returned by :meth:`FaultPlan.worker_fault`.
WORKER_CRASH = "crash"
WORKER_STALL = "stall"

#: Refit fault kinds returned by :meth:`DriftPlan.refit_fault`.
REFIT_CRASH = "crash"  #: refit subprocess dies mid-fit (os._exit)
REFIT_RAISE = "raise"  #: fit raises (poisoned snapshot / bad hyperparams)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Traversal faults fire by global ordinal within one
    :class:`FaultInjector` lifetime (the classifier creates a fresh
    injector per public query call, so ordinals are stable per call).
    Worker faults fire by ``(chunk_index, attempt)`` and are evaluated
    inside the worker process.

    Attributes
    ----------
    corrupt_bound_nodes:
        Child-bound computation ordinals whose (lower, upper) result is
        corrupted according to ``corrupt_bound_mode``.
    corrupt_bound_mode:
        ``"nan"`` (lower becomes NaN), ``"invert"`` (bounds swapped and
        strictly inverted), or ``"inf"`` (upper becomes +inf).
    underflow_leaves:
        Leaf-evaluation ordinals whose exact kernel sum is replaced by
        ``underflow_value`` (default 0.0, modelling silent underflow).
    crash_chunks / stall_chunks:
        Parallel-classify chunk indices whose worker dies
        (``os._exit``) or blocks forever while processing the chunk.
    fail_attempts:
        Worker faults fire while ``attempt < fail_attempts``; retries
        beyond that succeed (models transient failures). Use a large
        value for a permanently poisoned chunk.
    bound_rate / leaf_rate:
        Optional seeded Bernoulli corruption rates for property tests;
        deterministic given the injector's draw order.
    seed:
        Seed for the rate-based draws.
    """

    corrupt_bound_nodes: tuple[int, ...] = ()
    corrupt_bound_mode: str = "nan"
    underflow_leaves: tuple[int, ...] = ()
    underflow_value: float = 0.0
    crash_chunks: tuple[int, ...] = ()
    stall_chunks: tuple[int, ...] = ()
    fail_attempts: int = 1
    bound_rate: float = 0.0
    leaf_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.corrupt_bound_mode not in BOUND_MODES:
            raise ValueError(
                f"unknown corrupt_bound_mode {self.corrupt_bound_mode!r}; "
                f"choose from {BOUND_MODES}"
            )
        if self.fail_attempts < 0:
            raise ValueError(f"fail_attempts must be >= 0, got {self.fail_attempts}")
        for name in ("bound_rate", "leaf_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        overlap = set(self.crash_chunks) & set(self.stall_chunks)
        if overlap:
            raise ValueError(f"chunks {sorted(overlap)} are in both crash and stall lists")

    @property
    def targets_traversal(self) -> bool:
        """Whether any traversal-level fault can ever fire."""
        return bool(
            self.corrupt_bound_nodes or self.underflow_leaves
            or self.bound_rate > 0.0 or self.leaf_rate > 0.0
        )

    @property
    def targets_workers(self) -> bool:
        """Whether any pool-worker fault can ever fire."""
        return bool(self.crash_chunks or self.stall_chunks)

    def worker_fault(self, chunk_index: int, attempt: int) -> str | None:
        """The fault (if any) a worker must enact for this dispatch.

        Pure function of the plan so parent and workers agree without
        shared state: returns :data:`WORKER_CRASH`, :data:`WORKER_STALL`
        or ``None``.
        """
        if attempt >= self.fail_attempts:
            return None
        if chunk_index in self.crash_chunks:
            return WORKER_CRASH
        if chunk_index in self.stall_chunks:
            return WORKER_STALL
        return None


@dataclass(frozen=True)
class DriftPlan:
    """A deterministic mid-stream distribution shift plus refit faults.

    The streaming soak test's script: where the data distribution moves,
    and which background refit attempts fail, crash, or produce a
    corrupted artifact. Frozen and picklable so the refit subprocess
    consults the *same* plan the pipeline holds, keyed purely on
    ``(generation, attempt)``.

    Attributes
    ----------
    shift_after:
        Stream position (points ingested since the initial fit) after
        which arriving points are shifted: position ``shift_after`` is
        the first drifted point.
    mean_shift:
        Per-dimension offset added to drifted points (empty = no shift).
    scale:
        Multiplier applied to drifted points *before* the offset.
    refit_crash / refit_raise:
        Refit generations (1-based, in trigger order) whose fit attempt
        crashes the refit subprocess (``os._exit``) or raises. Fires
        while ``attempt < fail_attempts``, so a retry can clear a
        transient fault; use a large ``fail_attempts`` for a permanently
        poisoned refit.
    corrupt_artifacts:
        Refit generations whose *saved* model artifact gets a byte
        flipped after writing — the sha256-verified reload path must
        refuse it and roll back.
    fail_attempts:
        Refit faults fire while ``attempt < fail_attempts`` (same
        transient-fault contract as :class:`FaultPlan`).
    """

    shift_after: int = 0
    mean_shift: tuple[float, ...] = ()
    scale: float = 1.0
    refit_crash: tuple[int, ...] = ()
    refit_raise: tuple[int, ...] = ()
    corrupt_artifacts: tuple[int, ...] = ()
    fail_attempts: int = 1

    def __post_init__(self) -> None:
        if self.shift_after < 0:
            raise ValueError(f"shift_after must be >= 0, got {self.shift_after}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.fail_attempts < 0:
            raise ValueError(f"fail_attempts must be >= 0, got {self.fail_attempts}")
        overlap = set(self.refit_crash) & set(self.refit_raise)
        if overlap:
            raise ValueError(
                f"refit generations {sorted(overlap)} are in both crash and raise lists"
            )

    @property
    def targets_refits(self) -> bool:
        """Whether any refit-level fault can ever fire."""
        return bool(self.refit_crash or self.refit_raise or self.corrupt_artifacts)

    def refit_fault(self, generation: int, attempt: int) -> str | None:
        """The fault (if any) a refit attempt must enact.

        Pure function of the plan so the pipeline and the refit
        subprocess agree without shared state: returns
        :data:`REFIT_CRASH`, :data:`REFIT_RAISE`, or ``None``.
        """
        if attempt >= self.fail_attempts:
            return None
        if generation in self.refit_crash:
            return REFIT_CRASH
        if generation in self.refit_raise:
            return REFIT_RAISE
        return None

    def corrupts_artifact(self, generation: int) -> bool:
        """Whether this generation's saved artifact gets a byte flipped."""
        return generation in self.corrupt_artifacts

    def apply_shift(self, points: np.ndarray, stream_position: int) -> np.ndarray:
        """Shift the rows of ``points`` that land past ``shift_after``.

        ``stream_position`` is the stream index of ``points[0]``; rows
        whose index reaches ``shift_after`` get ``scale * x +
        mean_shift``. Returns a new array (input is never mutated).
        """
        points = np.asarray(points, dtype=np.float64)
        out = points.copy()
        first = max(self.shift_after - stream_position, 0)
        if first >= out.shape[0]:
            return out
        drifted = out[first:]
        if self.scale != 1.0:
            drifted *= self.scale
        if self.mean_shift:
            drifted += np.asarray(self.mean_shift, dtype=np.float64)
        return out


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`'s traversal faults.

    Counts child-bound computations and leaf evaluations as the engines
    perform them and corrupts exactly the planned ordinals. One injector
    per query call keeps ordinals reproducible; the injector is cheap to
    construct.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._bound_ordinal = 0
        self._leaf_ordinal = 0
        self._rng = np.random.default_rng(plan.seed)
        self._bound_targets = frozenset(plan.corrupt_bound_nodes)
        self._leaf_targets = frozenset(plan.underflow_leaves)
        #: Count of faults actually fired (tests assert on coverage).
        self.fired = 0

    # -- child-bound corruption -----------------------------------------

    def corrupt_bounds(self, lower: float, upper: float) -> tuple[float, float]:
        """Scalar hook: maybe corrupt one (lower, upper) node bound."""
        ordinal = self._bound_ordinal
        self._bound_ordinal += 1
        hit = ordinal in self._bound_targets or (
            self.plan.bound_rate > 0.0 and self._rng.random() < self.plan.bound_rate
        )
        if not hit:
            return lower, upper
        self.fired += 1
        return self._corrupt_pair(lower, upper)

    def corrupt_bounds_array(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vector hook: consume one ordinal per pair, corrupt the planned ones."""
        n = lower.shape[0]
        start = self._bound_ordinal
        self._bound_ordinal += n
        hits = np.zeros(n, dtype=bool)
        for target in self._bound_targets:
            if start <= target < start + n:
                hits[target - start] = True
        if self.plan.bound_rate > 0.0:
            hits |= self._rng.random(n) < self.plan.bound_rate
        if not hits.any():
            return lower, upper
        lower = lower.copy()
        upper = upper.copy()
        for i in np.flatnonzero(hits):
            self.fired += 1
            lower[i], upper[i] = self._corrupt_pair(float(lower[i]), float(upper[i]))
        return lower, upper

    def _corrupt_pair(self, lower: float, upper: float) -> tuple[float, float]:
        mode = self.plan.corrupt_bound_mode
        if mode == "nan":
            return float("nan"), upper
        if mode == "inf":
            return lower, float("inf")
        # "invert": strictly flip the interval so f_l > f_u downstream.
        bump = abs(upper) * 0.5 + 1e-3
        return upper + bump, lower

    # -- leaf underflow ---------------------------------------------------

    def corrupt_leaf(self, exact: float) -> float:
        """Scalar hook: maybe replace one exact leaf sum (underflow)."""
        ordinal = self._leaf_ordinal
        self._leaf_ordinal += 1
        hit = ordinal in self._leaf_targets or (
            self.plan.leaf_rate > 0.0 and self._rng.random() < self.plan.leaf_rate
        )
        if not hit:
            return exact
        self.fired += 1
        return self.plan.underflow_value

    def corrupt_leaves_array(self, exact: np.ndarray) -> np.ndarray:
        """Vector hook: one ordinal per leaf evaluation in the sweep."""
        n = exact.shape[0]
        start = self._leaf_ordinal
        self._leaf_ordinal += n
        hits = np.zeros(n, dtype=bool)
        for target in self._leaf_targets:
            if start <= target < start + n:
                hits[target - start] = True
        if self.plan.leaf_rate > 0.0:
            hits |= self._rng.random(n) < self.plan.leaf_rate
        if not hits.any():
            return exact
        exact = exact.copy()
        exact[hits] = self.plan.underflow_value
        self.fired += int(np.count_nonzero(hits))
        return exact
