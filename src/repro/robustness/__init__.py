"""Robustness subsystem: fault injection, invariant guards, supervision.

Three pillars keep the tKDC serving path survivable (see
``docs/robustness.md`` for the failure-mode table):

- :mod:`repro.robustness.faults` — a deterministic, seeded
  :class:`FaultPlan` that reproduces corrupted bounds, kernel
  underflow, and crashed/stalled pool workers at chosen ordinals, so
  every guard below is exercised in CI without flaky sleeps;
- :mod:`repro.robustness.guards` — runtime invariant checks
  (``f_l <= f_u``, finiteness, envelope containment) with a
  configurable ``raise`` / ``repair`` / ``warn`` policy, applied at
  pruning time by both traversal engines and by the threshold
  bootstrap;
- :mod:`repro.robustness.supervisor` — per-chunk supervised dispatch
  replacing the bare ``Pool.map`` in parallel classification: chunk
  timeouts, dead-worker detection, bounded retry with backoff, and a
  guaranteed in-process serial fallback.
"""

from repro.robustness.faults import (
    BOUND_MODES,
    WORKER_CRASH,
    WORKER_STALL,
    FaultInjector,
    FaultPlan,
)
from repro.robustness.guards import (
    GUARD_POLICIES,
    REPAIRS_KEY,
    GuardWarning,
    InvariantViolation,
    escalate,
    guard_interval,
    guard_interval_arrays,
    guard_value_in_interval,
    guard_values_in_intervals,
)
from repro.robustness.supervisor import (
    SupervisionPolicy,
    SupervisionReport,
    supervised_map,
)

__all__ = [
    "BOUND_MODES",
    "WORKER_CRASH",
    "WORKER_STALL",
    "FaultInjector",
    "FaultPlan",
    "GUARD_POLICIES",
    "REPAIRS_KEY",
    "GuardWarning",
    "InvariantViolation",
    "escalate",
    "guard_interval",
    "guard_interval_arrays",
    "guard_value_in_interval",
    "guard_values_in_intervals",
    "SupervisionPolicy",
    "SupervisionReport",
    "supervised_map",
]
