"""Runtime invariant guards for density-bounding traversals.

The pruning rules are only sound while the traversal's interval
invariants hold: every node contribution and every accumulated interval
must be finite with ``lower <= upper``, and contributions must stay
inside the a-priori envelope ``[0, mass * K(0)]``. A violated invariant
(a NaN from corrupted box arithmetic, an inverted pair from a bad
reduction, a silently underflowed kernel sum) does not crash anything —
it silently *flips a pruning decision*, which is how a single bad float
turns into wrong labels for a whole batch.

Guards check the invariants at well-defined sites and apply one of four
policies:

- ``"off"``     — no checks (the pre-guard behaviour).
- ``"raise"``   — fail fast with :class:`InvariantViolation`.
- ``"repair"``  — widen the offending value to the nearest *valid*
  conservative bound and count the repair in ``stats.extras``. Because
  the repaired interval still contains the true quantity, every prune
  taken afterwards remains certified (see docs/robustness.md).
- ``"warn"``    — repair, but also emit a :class:`GuardWarning`.

Repair never tightens: a non-finite or inverted node contribution is
replaced by the vacuous envelope ``[0, ceiling]``, which is always a
true statement about the node's contribution, so the HIGH/LOW guarantee
survives (at worst the traversal does more work).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.obs.metrics import GUARD_ESCALATIONS_TOTAL, GUARD_REPAIRS_TOTAL
from repro.obs.registry import REGISTRY

#: Recognised guard policies, in increasing order of loudness.
GUARD_POLICIES = ("off", "repair", "warn", "raise")

#: ``stats.extras`` key counting silent repairs.
REPAIRS_KEY = "guard_repairs"

#: Tolerance for interval inversion caused by benign float accumulation;
#: inversions within it are silently re-ordered under every policy.
_ACCUMULATION_TOL = 1e-9


class InvariantViolation(RuntimeError):
    """A traversal invariant was violated under the ``"raise"`` policy."""

    def __init__(self, site: str, detail: str) -> None:
        super().__init__(f"invariant violation at {site}: {detail}")
        self.site = site
        self.detail = detail


class GuardWarning(RuntimeWarning):
    """Emitted for each repaired violation under the ``"warn"`` policy."""


def _record(stats, count: int = 1, site: str = "traversal") -> None:
    if stats is not None:
        stats.extras[REPAIRS_KEY] = stats.extras.get(REPAIRS_KEY, 0.0) + count
    if REGISTRY.enabled:
        GUARD_REPAIRS_TOTAL.labels(site).inc(count)


def _record_escalation(site: str, count: int = 1) -> None:
    if REGISTRY.enabled:
        GUARD_ESCALATIONS_TOTAL.labels(site).inc(count)


def escalate(policy: str, site: str, detail: str, stats=None, count: int = 1) -> None:
    """Raise/warn/count a confirmed violation according to ``policy``.

    Shared by the guard functions below and by engine-level sites whose
    repair is not expressible as local widening (a corrupted running
    accumulator falls back to an exact evaluation instead).
    """
    if policy == "raise":
        _record_escalation(site, count)
        raise InvariantViolation(site, detail)
    if policy == "warn":
        _record_escalation(site, count)
        warnings.warn(f"repaired invariant violation at {site}: {detail}", GuardWarning,
                      stacklevel=3)
    _record(stats, count, site)


def guard_interval(
    lower: float,
    upper: float,
    policy: str,
    stats=None,
    site: str = "traversal",
    floor: float = 0.0,
    ceiling: float = float("inf"),
) -> tuple[float, float]:
    """Guard one scalar interval; returns a valid (possibly widened) pair.

    ``floor``/``ceiling`` are the a-priori envelope the true value is
    known to lie in; repairs clamp into it. With ``policy == "off"`` the
    input is returned untouched.
    """
    if policy == "off":
        return lower, upper
    finite = np.isfinite(lower) and np.isfinite(upper)
    if finite and lower <= upper:
        return lower, upper
    if finite and lower - upper <= _ACCUMULATION_TOL:
        # Benign float-accumulation inversion: reorder quietly.
        return upper, lower
    detail = f"interval [{lower}, {upper}] is " + (
        "inverted" if finite else "non-finite"
    )
    escalate(policy, site, detail, stats)
    # Which side is trustworthy is unknowable here, so repair widens to
    # the full a-priori envelope — always a true statement.
    return floor, ceiling


def guard_interval_arrays(
    lower: np.ndarray,
    upper: np.ndarray,
    policy: str,
    stats=None,
    site: str = "traversal",
    floor: float = 0.0,
    ceiling: np.ndarray | float = float("inf"),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`guard_interval` over aligned bound arrays.

    Returns ``(lower, upper, repaired_mask)``; the inputs are copied
    only when a repair is needed. ``ceiling`` may be an array aligned
    with the bounds (per-node mass envelopes).
    """
    if policy == "off" or lower.size == 0:
        return lower, upper, np.zeros(lower.shape, dtype=bool)
    finite = np.isfinite(lower) & np.isfinite(upper)
    inverted = finite & (lower > upper)
    with np.errstate(invalid="ignore"):  # inf - inf on non-finite rows
        benign = inverted & (lower - upper <= _ACCUMULATION_TOL)
    bad = (~finite) | (inverted & ~benign)
    if benign.any():
        lower = lower.copy()
        upper = upper.copy()
        swap_l = lower[benign]
        lower[benign] = upper[benign]
        upper[benign] = swap_l
    if not bad.any():
        return lower, upper, bad
    count = int(np.count_nonzero(bad))
    if policy == "raise":
        _record_escalation(site, count)
        idx = int(np.flatnonzero(bad)[0])
        raise InvariantViolation(
            site, f"{count} invalid interval(s); first is "
                  f"[{lower[idx]}, {upper[idx]}] at offset {idx}"
        )
    if policy == "warn":
        _record_escalation(site, count)
        warnings.warn(
            f"repaired {count} invariant violation(s) at {site}", GuardWarning,
            stacklevel=3,
        )
    _record(stats, count, site)
    lower = lower.copy()
    upper = upper.copy()
    lower[bad] = floor
    upper[bad] = ceiling[bad] if isinstance(ceiling, np.ndarray) else ceiling
    return lower, upper, bad


def guard_value_in_interval(
    value: float,
    lower: float,
    upper: float,
    policy: str,
    stats=None,
    site: str = "leaf",
) -> float:
    """Guard an exact evaluation against its own a-priori interval.

    A leaf's exact kernel sum must land inside the box bounds computed
    for that leaf; an escape (classically: silent underflow to 0 when
    the box bounds prove the sum is positive) is repaired by clamping
    into the interval — the nearest value consistent with the envelope.
    """
    if policy == "off":
        return value
    if np.isfinite(value) and lower - _ACCUMULATION_TOL <= value <= upper + _ACCUMULATION_TOL:
        return value
    detail = f"exact value {value} escapes its envelope [{lower}, {upper}]"
    escalate(policy, site, detail, stats)
    if not np.isfinite(value):
        return 0.5 * (lower + upper)
    return min(max(value, lower), upper)


def guard_values_in_intervals(
    values: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    policy: str,
    stats=None,
    site: str = "leaf",
) -> np.ndarray:
    """Vectorized :func:`guard_value_in_interval`."""
    if policy == "off" or values.size == 0:
        return values
    finite = np.isfinite(values)
    bad = (~finite) | (values < lower - _ACCUMULATION_TOL) | (
        values > upper + _ACCUMULATION_TOL
    )
    if not bad.any():
        return values
    count = int(np.count_nonzero(bad))
    if policy == "raise":
        _record_escalation(site, count)
        idx = int(np.flatnonzero(bad)[0])
        raise InvariantViolation(
            site, f"{count} exact value(s) escape their envelopes; first is "
                  f"{values[idx]} outside [{lower[idx]}, {upper[idx]}]"
        )
    if policy == "warn":
        _record_escalation(site, count)
        warnings.warn(
            f"repaired {count} invariant violation(s) at {site}", GuardWarning,
            stacklevel=3,
        )
    _record(stats, count, site)
    values = values.copy()
    midpoint = 0.5 * (lower + upper)
    values[~finite] = midpoint[~finite]
    return np.clip(values, lower, upper)
