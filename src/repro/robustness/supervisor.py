"""Supervised process-pool dispatch for parallel classification.

``Pool.map`` is the fastest way to fan a batch out — and the most
brittle: a worker that dies mid-chunk leaves the map hanging forever, a
stalled worker (swap storm, adversarial query) blocks the whole batch,
and there is no notion of retry. This module replaces it with
*supervised per-chunk dispatch*:

- every chunk is submitted individually and collected with a deadline;
- a timed-out chunk marks its pool as suspect (the worker may be stuck
  in a slot), so the pool is torn down and survivors are re-dispatched
  to a fresh one;
- a dead worker is detected promptly (``BrokenProcessPool``) rather
  than by deadline expiry;
- failed chunks are retried a bounded number of times with exponential
  backoff, and chunks that exhaust their retries are executed by an
  in-process serial fallback — so the batch *always* completes, with
  every chunk computed by the same traversal code one way or another.

The dispatch carries ``(chunk_index, attempt)`` to the worker, which
lets a :class:`~repro.robustness.faults.FaultPlan` fire deterministic
worker faults without any shared state, and lets transient faults
clear on retry.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

#: Placeholder for a chunk result that has not been produced yet.
_MISSING = object()


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard to try before falling back to in-process execution.

    Attributes
    ----------
    timeout:
        Per-chunk collection deadline in seconds (``None`` disables the
        deadline — a stalled worker then blocks forever, the pre-PR
        behaviour).
    max_retries:
        Re-dispatches allowed per chunk before the serial fallback runs
        it in-process.
    backoff:
        Base seconds slept before a retry round; doubles per attempt.
        0 disables sleeping (tests use this).
    """

    timeout: float | None = 120.0
    max_retries: int = 2
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")


@dataclass
class SupervisionReport:
    """What the supervisor had to do to complete a batch."""

    timeouts: int = 0  #: chunk collections that hit the deadline
    crashes: int = 0  #: chunk failures due to a dead worker process
    errors: int = 0  #: chunk failures due to an exception in the worker
    retries: int = 0  #: chunk re-dispatches to a pool
    serial_fallbacks: int = 0  #: chunks completed by the in-process fallback
    pools_created: int = 0  #: pools built (1 = no supervision event)

    @property
    def degraded(self) -> bool:
        """Whether anything other than a clean parallel pass happened."""
        return bool(
            self.timeouts or self.crashes or self.errors or self.serial_fallbacks
        )

    def as_extras(self) -> dict[str, float]:
        """Counters in ``TraversalStats.extras`` form (floats, prefixed)."""
        return {
            "supervisor_timeouts": float(self.timeouts),
            "supervisor_crashes": float(self.crashes),
            "supervisor_errors": float(self.errors),
            "supervisor_retries": float(self.retries),
            "supervisor_serial_fallbacks": float(self.serial_fallbacks),
            "supervisor_pools_created": float(self.pools_created),
        }


def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Tear an executor down without waiting on stuck workers."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - interpreter-teardown races
        pass


def supervised_map(
    worker: Callable[[int, int, object], object],
    chunks: Sequence[object],
    n_jobs: int,
    policy: SupervisionPolicy,
    serial_fallback: Callable[[int, object], object],
    mp_context,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> tuple[list[object], SupervisionReport]:
    """Map ``worker`` over ``chunks`` under supervision; always completes.

    ``worker`` is called as ``worker(chunk_index, attempt, chunk)`` in a
    pool process; ``serial_fallback(chunk_index, chunk)`` runs in this
    process for chunks that exhaust their retries (or when no pool can
    be built at all). Results are returned in chunk order alongside a
    :class:`SupervisionReport` of every supervision event.
    """
    results: list[object] = [_MISSING] * len(chunks)
    attempts = [0] * len(chunks)
    pending = list(range(len(chunks)))
    report = SupervisionReport()
    executor: ProcessPoolExecutor | None = None
    executor_suspect = False

    try:
        while pending:
            overdue = [i for i in pending if attempts[i] > policy.max_retries]
            if overdue:
                for index in overdue:
                    results[index] = serial_fallback(index, chunks[index])
                    report.serial_fallbacks += 1
                pending = [i for i in pending if attempts[i] <= policy.max_retries]
                if not pending:
                    break

            if executor is None:
                try:
                    executor = ProcessPoolExecutor(
                        max_workers=max(1, n_jobs),
                        mp_context=mp_context,
                        initializer=initializer,
                        initargs=initargs,
                    )
                    report.pools_created += 1
                except (OSError, ValueError):
                    # Pool construction itself failed (fd exhaustion,
                    # unsupported platform): finish everything serially.
                    for index in pending:
                        results[index] = serial_fallback(index, chunks[index])
                        report.serial_fallbacks += 1
                    pending = []
                    break

            dispatch_round = [(i, attempts[i]) for i in pending]
            for index, _attempt in dispatch_round:
                if attempts[index] > 0:
                    report.retries += 1
            try:
                futures = [
                    (index, executor.submit(worker, index, attempt, chunks[index]))
                    for index, attempt in dispatch_round
                ]
            except BrokenProcessPool:
                # Pool broke between rounds; rebuild and retry the round
                # without charging the chunks an attempt.
                _kill_executor(executor)
                executor = None
                continue

            failed: list[int] = []
            for index, future in futures:
                try:
                    results[index] = future.result(timeout=policy.timeout)
                except FutureTimeoutError:
                    report.timeouts += 1
                    failed.append(index)
                    executor_suspect = True
                    future.cancel()
                except BrokenProcessPool:
                    report.crashes += 1
                    failed.append(index)
                    executor_suspect = True
                except Exception:
                    report.errors += 1
                    failed.append(index)

            pending = failed
            for index in failed:
                attempts[index] += 1
            if executor_suspect:
                # A stuck worker may still occupy a slot (timeout) or
                # the pool is broken (crash): never reuse it.
                _kill_executor(executor)
                executor = None
                executor_suspect = False
            if pending and policy.backoff > 0:
                oldest = min(attempts[i] for i in pending)
                time.sleep(policy.backoff * (2 ** max(oldest - 1, 0)))
    finally:
        if executor is not None:
            _kill_executor(executor)

    assert all(result is not _MISSING for result in results)
    return results, report
