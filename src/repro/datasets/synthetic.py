"""Reusable synthetic distribution building blocks.

The dataset simulators in :mod:`repro.datasets.generators` compose these:
Gaussian mixtures with per-component anisotropy, filament (line-segment)
noise between cluster centers, and heavy-tailed contamination — the
structural features the paper's motivating figures highlight (multiple
modes, low-density filaments, fine-grained structure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MixtureComponent:
    """One mixture component: a (possibly anisotropic) Gaussian blob."""

    weight: float
    mean: np.ndarray
    scales: np.ndarray  # per-dimension standard deviations

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"component weight must be positive, got {self.weight}")
        mean = np.asarray(self.mean, dtype=np.float64)
        scales = np.asarray(self.scales, dtype=np.float64)
        if mean.shape != scales.shape:
            raise ValueError(
                f"mean shape {mean.shape} does not match scales shape {scales.shape}"
            )
        if not np.all(scales > 0):
            raise ValueError("all component scales must be positive")
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "scales", scales)


class GaussianMixture:
    """Sampler for a weighted mixture of axis-aligned Gaussian blobs."""

    def __init__(self, components: list[MixtureComponent]) -> None:
        if not components:
            raise ValueError("a mixture needs at least one component")
        dims = {component.mean.shape[0] for component in components}
        if len(dims) != 1:
            raise ValueError(f"components disagree on dimensionality: {sorted(dims)}")
        self.components = components
        total = sum(component.weight for component in components)
        self._probs = np.array([component.weight / total for component in components])
        self.dim = components[0].mean.shape[0]

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points, shape ``(n, dim)``."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        assignments = rng.choice(len(self.components), size=n, p=self._probs)
        out = np.empty((n, self.dim))
        for idx, component in enumerate(self.components):
            mask = assignments == idx
            count = int(np.count_nonzero(mask))
            if count:
                out[mask] = component.mean + rng.normal(size=(count, self.dim)) * component.scales
        return out


def filament_points(
    start: np.ndarray,
    end: np.ndarray,
    n: int,
    jitter: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Points scattered along the segment from ``start`` to ``end``.

    Models the low-density "filaments between larger clusters" the paper
    calls out in the shuttle data (Section 2.1) — natural outlier
    candidates that sit between modes rather than far from all of them.
    """
    start = np.asarray(start, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    positions = rng.uniform(size=(n, 1))
    points = start + positions * (end - start)
    return points + rng.normal(scale=jitter, size=points.shape)


def heavy_tail_noise(
    n: int, dim: int, scale: float, dof: float, rng: np.random.Generator
) -> np.ndarray:
    """Student-t distributed contamination (heavy tails)."""
    if dof <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {dof}")
    return scale * rng.standard_t(dof, size=(n, dim))


def spread_counts(total: int, weights: list[float]) -> list[int]:
    """Split ``total`` into integer counts proportional to ``weights``.

    The counts sum exactly to ``total`` (remainders go to the largest
    fractional parts), so generators can allocate sub-populations without
    off-by-one drift.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if not weights or any(w < 0 for w in weights) or sum(weights) == 0:
        raise ValueError("weights must be non-empty, non-negative, and not all zero")
    fractions = np.array(weights, dtype=np.float64)
    fractions /= fractions.sum()
    raw = fractions * total
    counts = np.floor(raw).astype(int)
    shortfall = total - int(counts.sum())
    if shortfall:
        order = np.argsort(raw - counts)[::-1]
        counts[order[:shortfall]] += 1
    return counts.tolist()
