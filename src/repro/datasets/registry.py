"""Dataset registry: Table 3 metadata plus scaled loading.

``load("tmy3", scale=0.05)`` yields a simulator draw whose size is the
paper's n times the scale factor — benchmarks use this to keep the full
suite laptop-sized while recording the paper-reported sizes alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets import generators

#: Default size scale applied by :func:`load` when none is given; chosen
#: so the largest default load stays under ~100k points.
DEFAULT_SCALE = 0.01


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one paper dataset (a Table 3 row)."""

    name: str
    paper_n: int
    dim: int
    description: str
    generator: Callable[..., np.ndarray]

    def generate(self, n: int, d: int | None = None, seed: int | None = 0) -> np.ndarray:
        """Draw ``n`` points; ``d`` overrides the default dimensionality."""
        if d is None:
            return self.generator(n, seed=seed)
        return self.generator(n, d=d, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "gauss", 100_000_000, 2,
            "Multivariate Gaussian with zero mean and unit covariance",
            generators.make_gauss,
        ),
        DatasetSpec(
            "tmy3", 1_820_000, 8,
            "Hourly energy load profiles for US reference buildings",
            generators.make_tmy3,
        ),
        DatasetSpec(
            "home", 929_000, 10,
            "Home gas sensor measurements (UCI)",
            generators.make_home,
        ),
        DatasetSpec(
            "hep", 10_500_000, 27,
            "High-energy particle collision signatures (UCI)",
            generators.make_hep,
        ),
        DatasetSpec(
            "sift", 11_200_000, 128,
            "SIFT computer-vision image features (Caltech-256)",
            generators.make_sift,
        ),
        DatasetSpec(
            "mnist", 70_000, 784,
            "28x28 handwritten-digit images, PCA-reducible",
            generators.make_mnist,
        ),
        DatasetSpec(
            "shuttle", 43_500, 9,
            "Space shuttle flight sensors (UCI)",
            generators.make_shuttle,
        ),
    ]
}


def load(
    name: str,
    n: int | None = None,
    d: int | None = None,
    scale: float = DEFAULT_SCALE,
    seed: int | None = 0,
    min_n: int = 2_000,
    max_n: int = 200_000,
) -> np.ndarray:
    """Generate a scaled draw of a named paper dataset.

    Parameters
    ----------
    name:
        A key of :data:`DATASETS`.
    n:
        Exact size; overrides ``scale`` when given.
    d:
        Dimensionality override (e.g. tmy3 at d=4, hep subsets).
    scale:
        Fraction of the paper's dataset size, clamped into
        ``[min_n, max_n]``.
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    spec = DATASETS[name]
    if n is None:
        n = int(round(spec.paper_n * scale))
        n = min(max(n, min_n), max_n)
    return spec.generate(n, d=d, seed=seed)
