"""Simulators for the paper's seven evaluation datasets (Table 3).

Each function documents what the real dataset looks like and which of its
density-geometric features the simulator preserves. All generators are
deterministic given a seed and return float64 arrays of shape ``(n, d)``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import (
    GaussianMixture,
    MixtureComponent,
    filament_points,
    heavy_tail_noise,
    spread_counts,
)


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def make_gauss(n: int, d: int = 2, seed: int | None = 0) -> np.ndarray:
    """The paper's synthetic baseline: zero-mean unit-covariance Gaussian.

    (Table 3: "gauss", d=2, n=100M — the dataset behind Figure 9's
    scalability sweep.)
    """
    return _rng(seed).normal(size=(n, d))


def make_shuttle(n: int, d: int = 9, seed: int | None = 0) -> np.ndarray:
    """Space-shuttle sensor stand-in (Table 3: "shuttle", d=9, n=43.5k).

    The real data's hallmark (Figure 1a) is several high-density operating
    modes connected by sparse filaments, with no single cluster center.
    We build 2 informative coordinates carrying that structure (mapped to
    columns 3 and 5, mirroring the paper's use of columns 4 and 6) plus
    correlated secondary sensors.
    """
    rng = _rng(seed)
    centers_2d = np.array(
        [[-40.0, 10.0], [0.0, 45.0], [30.0, 20.0], [-10.0, 75.0], [45.0, 60.0]]
    )
    scales_2d = np.array(
        [[6.0, 4.0], [9.0, 6.0], [5.0, 8.0], [7.0, 3.0], [4.0, 4.0]]
    )
    cluster_n, filament_n, noise_n = spread_counts(n, [0.90, 0.07, 0.03])

    mixture = GaussianMixture(
        [
            MixtureComponent(weight, center, scale)
            for weight, center, scale in zip(
                [0.35, 0.25, 0.2, 0.12, 0.08], centers_2d, scales_2d
            )
        ]
    )
    informative = [mixture.sample(cluster_n, rng)]
    if filament_n:
        pairs = [(0, 1), (1, 3), (2, 4), (0, 2)]
        per_pair = spread_counts(filament_n, [1.0] * len(pairs))
        for (a, b), count in zip(pairs, per_pair):
            informative.append(
                filament_points(centers_2d[a], centers_2d[b], count, jitter=1.5, rng=rng)
            )
    if noise_n:
        informative.append(
            np.array([0.0, 40.0]) + heavy_tail_noise(noise_n, 2, scale=25.0, dof=3.0, rng=rng)
        )
    base = np.concatenate(informative, axis=0)
    rng.shuffle(base)

    data = np.empty((n, d))
    data[:, 3] = base[:, 0]
    data[:, 5] = base[:, 1]
    # Secondary sensors: linear responses to the informative pair + noise.
    other_cols = [c for c in range(d) if c not in (3, 5)]
    mixing = rng.normal(scale=0.3, size=(2, len(other_cols)))
    data[:, other_cols] = base @ mixing + rng.normal(scale=4.0, size=(n, len(other_cols)))
    return data


def make_tmy3(n: int, d: int = 8, seed: int | None = 0) -> np.ndarray:
    """Hourly building energy-load stand-in (Table 3: "tmy3", d=8, n=1.82M).

    Real TMY3 profiles are smooth daily load curves differing by building
    type. We sample a handful of archetype curves (offsets, amplitudes,
    phases of a daily harmonic) and evaluate them at ``d`` hours with
    measurement noise — giving the multi-modal, strongly correlated
    structure of the real feature matrix.
    """
    rng = _rng(seed)
    archetypes = 6
    weights = np.array([0.3, 0.22, 0.18, 0.14, 0.1, 0.06])
    assignment = rng.choice(archetypes, size=n, p=weights)
    hours = np.linspace(0.0, 2.0 * np.pi, d, endpoint=False)

    base_level = rng.uniform(0.5, 3.0, size=archetypes)
    amplitude = rng.uniform(0.3, 2.0, size=archetypes)
    phase = rng.uniform(0.0, 2.0 * np.pi, size=archetypes)
    second_harmonic = rng.uniform(0.0, 0.6, size=archetypes)

    level = base_level[assignment, None] * (1.0 + 0.15 * rng.normal(size=(n, 1)))
    amp = amplitude[assignment, None] * (1.0 + 0.2 * rng.normal(size=(n, 1)))
    ph = phase[assignment, None] + 0.2 * rng.normal(size=(n, 1))
    curve = (
        level
        + amp * np.sin(hours[None, :] + ph)
        + second_harmonic[assignment, None] * np.sin(2.0 * hours[None, :] + ph)
    )
    return curve + rng.normal(scale=0.08, size=(n, d))


def make_home(n: int, d: int = 10, seed: int | None = 0) -> np.ndarray:
    """Home gas-sensor stand-in (Table 3: "home", d=10, n=929k).

    The UCI home data is slowly drifting multi-sensor time series with
    occasional stimulus events. We generate a smooth AR(1) latent state
    per sample batch, mix it into ``d`` sensors, and add rare event
    spikes — yielding a dominant low-dimensional manifold with sparse
    excursions.
    """
    rng = _rng(seed)
    latent_dim = 3
    # Smooth latent trajectory: AR(1) with strong persistence,
    # vectorized as an IIR filter over the innovation sequence.
    from scipy.signal import lfilter

    steps = rng.normal(size=(n, latent_dim))
    rho = 0.995
    innovation = np.sqrt(1.0 - rho * rho)
    latent = lfilter([innovation], [1.0, -rho], steps, axis=0)
    latent[0] = steps[0]
    mixing = rng.normal(size=(latent_dim, d)) * np.array([2.0, 1.0, 0.5])[:, None]
    data = latent @ mixing + rng.normal(scale=0.2, size=(n, d))
    # Rare stimulus events: short-lived large responses on a sensor subset.
    n_events = max(1, n // 200)
    event_rows = rng.choice(n, size=n_events, replace=False)
    event_sensors = rng.choice(d, size=max(2, d // 3), replace=False)
    data[np.ix_(event_rows, event_sensors)] += rng.normal(
        loc=6.0, scale=2.0, size=(n_events, event_sensors.shape[0])
    )
    return data


def make_hep(n: int, d: int = 27, seed: int | None = 0) -> np.ndarray:
    """High-energy-physics stand-in (Table 3: "hep", d=27, n=10.5M).

    The HEPMASS-style data mixes signal and background collision
    signatures: two broad overlapping populations with different
    covariance structure and heavy-tailed kinematic features.
    """
    rng = _rng(seed)
    signal_n, background_n = spread_counts(n, [0.5, 0.5])
    directions = rng.normal(size=(d, d))
    signal_mean = rng.normal(scale=0.5, size=d)

    background = rng.normal(size=(background_n, d)) @ (
        directions * rng.uniform(0.5, 1.5, size=d)
    ) / np.sqrt(d)
    signal = signal_mean + rng.normal(size=(signal_n, d)) @ (
        directions * rng.uniform(0.3, 1.0, size=d)
    ) / np.sqrt(d)
    data = np.concatenate([background, signal], axis=0)
    # Heavy-tailed kinematics on a third of the features.
    heavy_cols = rng.choice(d, size=d // 3, replace=False)
    data[:, heavy_cols] += heavy_tail_noise(n, heavy_cols.shape[0], 0.3, 2.5, rng)
    rng.shuffle(data)
    return data


def make_sift(n: int, d: int = 128, seed: int | None = 0) -> np.ndarray:
    """SIFT image-feature stand-in (Table 3: "sift", d=128, n=11.2M).

    SIFT descriptors are non-negative, sparse-ish gradient histograms
    clustered around visual words. We sample cluster prototypes with
    exponential magnitudes and add multiplicative within-cluster
    variation, clamping at zero.
    """
    rng = _rng(seed)
    words = 32
    prototypes = rng.exponential(scale=20.0, size=(words, d))
    prototypes *= rng.uniform(size=(words, d)) < 0.4  # sparse support
    assignment = rng.choice(words, size=n)
    data = prototypes[assignment] * rng.uniform(0.6, 1.4, size=(n, d))
    data += rng.exponential(scale=2.0, size=(n, d))
    return np.maximum(data + rng.normal(scale=1.0, size=(n, d)), 0.0)


def make_mnist(n: int, d: int = 784, seed: int | None = 0) -> np.ndarray:
    """MNIST stand-in (Table 3: "mnist", d=784, n=70k).

    Key property for the Figure 14 sweep: very low intrinsic
    dimensionality inside a huge ambient space, with many near-zero
    pixels. We synthesize 10 smooth class prototypes (low-pass filtered
    noise on a 28x28 grid, clamped at zero like pixel intensities) plus
    low-rank within-class variation.
    """
    rng = _rng(seed)
    side = int(round(np.sqrt(d)))
    if side * side != d:
        side = 28 if d == 784 else max(2, int(np.sqrt(d)))
    classes = 10
    rank = 15

    def smooth_field() -> np.ndarray:
        field = rng.normal(size=(side, side))
        # Cheap low-pass: repeated neighbour averaging.
        for _ in range(4):
            field = 0.2 * (
                field
                + np.roll(field, 1, axis=0)
                + np.roll(field, -1, axis=0)
                + np.roll(field, 1, axis=1)
                + np.roll(field, -1, axis=1)
            )
        flat = np.zeros(d)
        flat[: side * side] = field.reshape(-1)[: min(d, side * side)]
        return flat

    prototypes = np.stack([np.maximum(smooth_field() * 8.0, 0.0) for _ in range(classes)])
    basis = np.stack([smooth_field() for _ in range(rank)])
    assignment = rng.choice(classes, size=n)
    coeffs = rng.normal(scale=1.5, size=(n, rank))
    data = prototypes[assignment] + coeffs @ basis
    data += rng.normal(scale=0.3, size=(n, d))
    return np.maximum(data, 0.0)


def make_iris_like(n: int = 150, seed: int | None = 0) -> np.ndarray:
    """Two-dimensional iris-sepal stand-in for the Figure 2a contours.

    Two dominant modes (setosa vs. the versicolor/virginica blend)
    separated by a sparse region, in (sepal width, sepal length) space.
    """
    rng = _rng(seed)
    setosa_n, blend_n = spread_counts(n, [1.0, 2.0])
    setosa = np.array([3.4, 5.0]) + rng.normal(size=(setosa_n, 2)) * np.array([0.35, 0.35])
    blend = np.array([2.9, 6.3]) + rng.normal(size=(blend_n, 2)) * np.array([0.3, 0.65])
    data = np.concatenate([setosa, blend], axis=0)
    rng.shuffle(data)
    return data


def make_galaxy_like(n: int, seed: int | None = 0) -> np.ndarray:
    """Sloan-sky-survey-style 2-d mass-distribution stand-in (Figure 2b).

    Filamentary large-scale structure: cluster nodes connected by
    filaments with diffuse background — low-density regions ("voids")
    are the scientifically interesting classification target.
    """
    rng = _rng(seed)
    nodes = rng.uniform(-50.0, 50.0, size=(12, 2))
    node_n, filament_n, void_n = spread_counts(n, [0.55, 0.35, 0.10])
    parts = [
        GaussianMixture(
            [MixtureComponent(1.0, node, np.array([3.0, 3.0])) for node in nodes]
        ).sample(node_n, rng)
    ]
    if filament_n:
        pair_count = 16
        pairs = rng.choice(nodes.shape[0], size=(pair_count, 2))
        per_pair = spread_counts(filament_n, [1.0] * pair_count)
        for (a, b), count in zip(pairs, per_pair):
            if count:
                parts.append(filament_points(nodes[a], nodes[b], count, jitter=1.0, rng=rng))
    if void_n:
        parts.append(rng.uniform(-60.0, 60.0, size=(void_n, 2)))
    data = np.concatenate(parts, axis=0)
    rng.shuffle(data)
    return data
