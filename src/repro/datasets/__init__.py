"""Synthetic stand-ins for the paper's evaluation datasets (Table 3).

The paper evaluates on seven real datasets (gauss, tmy3, home, hep, sift,
mnist, shuttle). This environment is offline, so each dataset is replaced
by a generator that matches its dimensionality and qualitative density
geometry — the properties tKDC's behaviour actually depends on (see
DESIGN.md, "Substitutions"). The registry records Table 3 metadata and
scales dataset sizes by a global factor so benchmarks stay laptop-sized.
"""

from repro.datasets.generators import (
    make_gauss,
    make_hep,
    make_home,
    make_iris_like,
    make_mnist,
    make_shuttle,
    make_sift,
    make_tmy3,
)
from repro.datasets.pca import PCA
from repro.datasets.registry import DATASETS, DatasetSpec, load
from repro.datasets.synthetic import GaussianMixture, MixtureComponent

__all__ = [
    "GaussianMixture",
    "MixtureComponent",
    "PCA",
    "DATASETS",
    "DatasetSpec",
    "load",
    "make_gauss",
    "make_tmy3",
    "make_home",
    "make_hep",
    "make_sift",
    "make_mnist",
    "make_shuttle",
    "make_iris_like",
]
