"""Dataset summary statistics.

Used by the Table 3 bench to characterize the simulators, and generally
useful before fitting: tKDC's behaviour depends on the *density
geometry* of the data (intrinsic dimensionality, tail weight, duplicate
mass), which these summaries expose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.validation import as_finite_matrix


def intrinsic_dimension(data: np.ndarray) -> float:
    """Participation-ratio estimate of intrinsic dimensionality.

    ``(sum(lambda))^2 / sum(lambda^2)`` over covariance eigenvalues: d
    for isotropic data, ~k when variance concentrates in k directions.
    The mnist simulator (784 ambient, ~15 intrinsic) is the motivating
    case — low intrinsic dimension is why PCA+tKDC works there.
    """
    data = as_finite_matrix(data, "data")
    if data.shape[0] < 2:
        raise ValueError("need at least 2 points for covariance")
    centered = data - data.mean(axis=0)
    # Eigenvalues of the covariance via singular values (robust to d > n).
    singular = np.linalg.svd(centered, compute_uv=False)
    eigenvalues = singular**2
    total = float(np.sum(eigenvalues))
    if total == 0.0:
        return 0.0
    return float(total**2 / np.sum(eigenvalues**2))


def tail_weight(data: np.ndarray) -> float:
    """A scale-free tail indicator: p99.9 radius over p50 radius.

    Computed on distances from the coordinate-wise median; ~3.3 for a
    2-d Gaussian, tens-to-hundreds for Student-t style heavy tails (the
    shuttle simulator).
    """
    data = as_finite_matrix(data, "data")
    center = np.median(data, axis=0)
    radii = np.sqrt(np.sum((data - center) ** 2, axis=1))
    p50, p999 = np.percentile(radii, [50.0, 99.9])
    if p50 == 0.0:
        return float("inf") if p999 > 0 else 1.0
    return float(p999 / p50)


def duplicate_fraction(data: np.ndarray) -> float:
    """Fraction of points that are exact duplicates of an earlier point."""
    data = as_finite_matrix(data, "data")
    unique = np.unique(data, axis=0).shape[0]
    return 1.0 - unique / data.shape[0]


@dataclass(frozen=True)
class DatasetSummary:
    """Compact characterization of one dataset draw."""

    n: int
    dim: int
    mean_std: float
    intrinsic_dim: float
    tail_weight: float
    duplicate_fraction: float

    def as_row(self) -> dict[str, object]:
        """Plain-dict form for benchmark tables."""
        return {
            "n": self.n,
            "d": self.dim,
            "mean_std": self.mean_std,
            "intrinsic_d": self.intrinsic_dim,
            "tail_weight": self.tail_weight,
            "dup_frac": self.duplicate_fraction,
        }


def summarize(data: np.ndarray) -> DatasetSummary:
    """Compute the full :class:`DatasetSummary` for a point matrix."""
    data = as_finite_matrix(data, "data")
    return DatasetSummary(
        n=data.shape[0],
        dim=data.shape[1],
        mean_std=float(np.mean(np.std(data, axis=0))),
        intrinsic_dim=intrinsic_dimension(data),
        tail_weight=tail_weight(data),
        duplicate_fraction=duplicate_fraction(data),
    )
