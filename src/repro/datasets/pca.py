"""Principal component analysis via SVD.

The paper reduces mnist/sift to 64/256 dimensions with PCA before KDE
(Section 4.1, Figure 14); this is the from-scratch substrate for those
sweeps.
"""

from __future__ import annotations

import numpy as np


class PCA:
    """Project data onto its top principal components.

    Parameters
    ----------
    n_components:
        Number of components to keep; must not exceed ``min(n, d)`` of
        the data passed to :meth:`fit`.
    """

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None
        self._explained_variance: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        if self.n_components > min(n, d):
            raise ValueError(
                f"n_components={self.n_components} exceeds min(n, d)={min(n, d)}"
            )
        self._mean = data.mean(axis=0)
        centered = data - self._mean
        # Thin SVD: rows of vt are the principal directions.
        __, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self._components = vt[: self.n_components]
        self._explained_variance = (singular_values[: self.n_components] ** 2) / max(n - 1, 1)
        return self

    @property
    def components(self) -> np.ndarray:
        """Principal directions, shape ``(n_components, d)``."""
        self._require_fitted()
        assert self._components is not None
        return self._components

    @property
    def explained_variance(self) -> np.ndarray:
        """Variance captured by each kept component."""
        self._require_fitted()
        assert self._explained_variance is not None
        return self._explained_variance

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``data`` onto the fitted components."""
        self._require_fitted()
        assert self._mean is not None and self._components is not None
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        return (data - self._mean) @ self._components.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map projections back into the original space (lossy)."""
        self._require_fitted()
        assert self._mean is not None and self._components is not None
        projected = np.atleast_2d(np.asarray(projected, dtype=np.float64))
        return projected @ self._components + self._mean

    def _require_fitted(self) -> None:
        if self._mean is None:
            raise RuntimeError("PCA is not fitted; call fit() first")
