"""Per-query pruning traces: why did tKDC classify this point that way?

The traversal engines maintain a density interval ``[f_l, f_u]`` per
query and stop as soon as a pruning rule fires (threshold high/low,
tolerance, budget) or the frontier empties (Algorithm 2 in the paper).
A :class:`TraceRecorder` captures that decision process per query — the
bound trajectory, node expansions, terminating rule, guard repairs, and
final label — without changing a single arithmetic operation, so labels
with tracing on are bit-identical to labels with tracing off (enforced
by ``tests/property/test_trace_properties.py``).

Recording is opt-in: the engines accept ``trace=None`` by default and
pay only a ``None`` check. The batch engine works on block-local query
indices; :meth:`TraceRecorder.view` remaps them to the caller's global
indices so a trace always names the query the user asked about.

Traces serialize to JSONL through :class:`TraceSink`, which enforces a
byte budget so an accidental trace of a million-query workload cannot
fill a disk. ``repro explain`` renders the JSONL human-readably (see
``repro.obs.explain``).

Terminating rules use the same strings as ``PruneOutcome`` plus the
non-prune terminations: ``threshold_high``, ``threshold_low``,
``tolerance``, ``exhausted``, ``budget``, ``exact`` (guard fallback to
an exact sum), and ``grid`` (answered by the grid cache before any
traversal).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator, Sequence

__all__ = [
    "QueryTrace",
    "TraceRecorder",
    "TraceSink",
    "TraceView",
    "TERMINAL_RULES",
    "read_traces",
]

#: Every way a query's traversal can end. ``hbe_high``/``hbe_low`` are
#: the hashing-based engine's sampling decisions (confidence interval
#: cleared the threshold band before any tree traversal); hbe queries
#: that fall back to the tree terminate with the tree rules.
TERMINAL_RULES = (
    "threshold_high",
    "threshold_low",
    "tolerance",
    "exhausted",
    "budget",
    "exact",
    "grid",
    "hbe_high",
    "hbe_low",
)


@dataclass
class QueryTrace:
    """The recorded decision process for one query."""

    query_index: int
    engine: str = ""
    #: ``[f_l, f_u]`` after each recorded step (first entry is the root
    #: bound, i.e. the interval before any expansion).
    bounds: list[tuple[float, float]] = field(default_factory=list)
    expansions: int = 0
    rule: str = ""
    #: Density interval at termination.
    f_lower: float = 0.0
    f_upper: float = 0.0
    #: Guard repairs applied to this query's arithmetic, if any.
    guard_repairs: int = 0
    #: Final label value (``Label`` int) once the classifier assigns it.
    label: int | None = None

    def step(self, f_lower: float, f_upper: float) -> None:
        self.bounds.append((float(f_lower), float(f_upper)))
        self.f_lower = float(f_lower)
        self.f_upper = float(f_upper)

    def stop(
        self,
        rule: str,
        f_lower: float | None = None,
        f_upper: float | None = None,
        expansions: int | None = None,
    ) -> None:
        if rule not in TERMINAL_RULES:
            raise ValueError(f"unknown terminal rule {rule!r}; expected one of {TERMINAL_RULES}")
        self.rule = rule
        if f_lower is not None:
            self.f_lower = float(f_lower)
        if f_upper is not None:
            self.f_upper = float(f_upper)
        if expansions is not None:
            self.expansions = int(expansions)

    def to_dict(self) -> dict:
        return {
            "query_index": self.query_index,
            "engine": self.engine,
            "bounds": [[lo, hi] for lo, hi in self.bounds],
            "expansions": self.expansions,
            "rule": self.rule,
            "f_lower": self.f_lower,
            "f_upper": self.f_upper,
            "guard_repairs": self.guard_repairs,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryTrace":
        trace = cls(
            query_index=int(payload["query_index"]),
            engine=str(payload.get("engine", "")),
            expansions=int(payload.get("expansions", 0)),
            rule=str(payload.get("rule", "")),
            f_lower=float(payload.get("f_lower", 0.0)),
            f_upper=float(payload.get("f_upper", 0.0)),
            guard_repairs=int(payload.get("guard_repairs", 0)),
        )
        trace.bounds = [(float(lo), float(hi)) for lo, hi in payload.get("bounds", [])]
        label = payload.get("label")
        trace.label = None if label is None else int(label)
        return trace


class TraceRecorder:
    """Collects :class:`QueryTrace` objects for one classify call.

    ``max_steps`` bounds the stored trajectory per query: beyond it the
    trace keeps updating its terminal ``f_lower``/``f_upper`` but stops
    appending steps, so deep traversals cannot make a recorder grow
    without bound. The terminating rule and expansion count are always
    exact.
    """

    def __init__(self, engine: str = "", max_steps: int = 10_000) -> None:
        self.engine = engine
        self.max_steps = max_steps
        self._traces: dict[int, QueryTrace] = {}

    def open(self, query_index: int) -> QueryTrace:
        """The trace for ``query_index``, created on first use."""
        index = int(query_index)
        trace = self._traces.get(index)
        if trace is None:
            trace = QueryTrace(query_index=index, engine=self.engine)
            self._traces[index] = trace
        return trace

    def step(self, query_index: int, f_lower: float, f_upper: float) -> None:
        trace = self.open(query_index)
        if len(trace.bounds) < self.max_steps:
            trace.step(f_lower, f_upper)
        else:
            trace.f_lower = float(f_lower)
            trace.f_upper = float(f_upper)

    def stop(self, query_index: int, rule: str, **kwargs) -> None:
        self.open(query_index).stop(rule, **kwargs)

    def repair(self, query_index: int, count: int = 1) -> None:
        self.open(query_index).guard_repairs += int(count)

    def label(self, query_index: int, label: int) -> None:
        self.open(query_index).label = int(label)

    def view(self, index_map: Sequence[int]) -> "TraceView":
        """A recorder facade mapping local indices through ``index_map``.

        The batch engine numbers queries 0..n-1 within each block; the
        classifier hands it ``view(global_indices_of_this_block)`` so
        recorded traces use the caller's numbering.
        """
        return TraceView(self, index_map)

    def traces(self) -> list[QueryTrace]:
        return [self._traces[k] for k in sorted(self._traces)]

    def get(self, query_index: int) -> QueryTrace | None:
        return self._traces.get(int(query_index))

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[QueryTrace]:
        return iter(self.traces())


class TraceView:
    """Index-remapping facade over a :class:`TraceRecorder`.

    Implements the same recording surface the engines use (``step`` /
    ``stop`` / ``repair``), translating local indices to global ones.
    """

    def __init__(self, recorder: TraceRecorder, index_map: Sequence[int]) -> None:
        self._recorder = recorder
        self._index_map = [int(i) for i in index_map]

    @property
    def max_steps(self) -> int:
        return self._recorder.max_steps

    def step(self, query_index: int, f_lower: float, f_upper: float) -> None:
        self._recorder.step(self._index_map[query_index], f_lower, f_upper)

    def stop(self, query_index: int, rule: str, **kwargs) -> None:
        self._recorder.stop(self._index_map[query_index], rule, **kwargs)

    def repair(self, query_index: int, count: int = 1) -> None:
        self._recorder.repair(self._index_map[query_index], count)

    def view(self, index_map: Sequence[int]) -> "TraceView":
        return TraceView(self._recorder, [self._index_map[i] for i in index_map])


class TraceSink:
    """Bounded-size JSONL writer for traces.

    Writes one JSON object per line. Once ``max_bytes`` have been
    written the sink silently drops further traces and flags
    ``truncated`` (also surfaced via a ``# truncated`` marker line), so
    tracing a huge workload degrades to a prefix instead of an
    unbounded file.
    """

    MARKER = '{"truncated": true}'

    def __init__(self, path: str | Path, max_bytes: int = 32 * 1024 * 1024) -> None:
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.written_bytes = 0
        self.written_traces = 0
        self.truncated = False
        self._handle: IO[str] | None = None

    def __enter__(self) -> "TraceSink":
        self._handle = self.path.open("w", encoding="utf-8")
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def write(self, trace: QueryTrace) -> bool:
        """Write one trace; ``False`` if dropped for the byte budget."""
        if self._handle is None:
            self._handle = self.path.open("w", encoding="utf-8")
        if self.truncated:
            return False
        line = json.dumps(trace.to_dict(), separators=(",", ":")) + "\n"
        encoded = len(line.encode("utf-8"))
        if self.written_bytes + encoded > self.max_bytes:
            self.truncated = True
            self._handle.write(self.MARKER + "\n")
            return False
        self._handle.write(line)
        self.written_bytes += encoded
        self.written_traces += 1
        return True

    def write_all(self, traces: Sequence[QueryTrace] | TraceRecorder) -> int:
        count = 0
        for trace in traces:
            if self.write(trace):
                count += 1
        return count

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_traces(path: str | Path) -> list[QueryTrace]:
    """Load traces back from a :class:`TraceSink` JSONL file."""
    traces: list[QueryTrace] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("truncated") is True and "query_index" not in payload:
                continue
            traces.append(QueryTrace.from_dict(payload))
    return traces
