"""Human-readable rendering of per-query pruning traces.

Backs the ``repro explain`` CLI command: given traces (JSONL from a
:class:`~repro.obs.trace.TraceSink` or in-memory ``QueryTrace``
objects), produce a terminal-friendly account of why each query got its
label — the bound trajectory against the threshold band, how many nodes
were expanded, and which rule ended the traversal.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.trace import QueryTrace

__all__ = ["explain_trace", "explain_traces", "rule_summary"]

_LABEL_NAMES = {0: "LOW", 1: "HIGH", 2: "UNCERTAIN", None: "(unlabeled)"}

_RULE_BLURBS = {
    "threshold_high": "lower bound cleared the upper threshold: density is provably above the cutoff",
    "threshold_low": "upper bound fell below the lower threshold: density is provably below the cutoff",
    "tolerance": "bound width shrank within the epsilon tolerance: midpoint estimate accepted",
    "exhausted": "frontier emptied: the density was computed exactly",
    "budget": "expansion budget hit before any rule fired: degraded (midpoint) answer",
    "exact": "numeric guard abandoned bounding and fell back to an exact sum",
    "grid": "answered from the grid cache before any tree traversal",
    "hbe_high": "LSH-sampling confidence interval cleared the upper threshold: density is above the cutoff at the configured confidence",
    "hbe_low": "LSH-sampling confidence interval fell below the lower threshold: density is below the cutoff at the configured confidence",
}


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def explain_trace(
    trace: QueryTrace,
    thresholds: tuple[float, float] | None = None,
    max_steps: int = 12,
) -> str:
    """Render one trace as indented terminal text."""
    lines = [
        f"query #{trace.query_index}"
        + (f" [{trace.engine}]" if trace.engine else "")
        + f" -> {_LABEL_NAMES.get(trace.label, str(trace.label))}"
    ]
    if thresholds is not None:
        lines.append(
            f"  threshold band: [{_fmt(thresholds[0])}, {_fmt(thresholds[1])}]"
        )
    lines.append(
        f"  final bounds:   [{_fmt(trace.f_lower)}, {_fmt(trace.f_upper)}]"
        f"  after {trace.expansions} node expansion(s)"
    )
    rule = trace.rule or "(none recorded)"
    blurb = _RULE_BLURBS.get(trace.rule, "")
    lines.append(f"  stopped by:     {rule}" + (f" — {blurb}" if blurb else ""))
    if trace.guard_repairs:
        lines.append(f"  guard repairs:  {trace.guard_repairs}")
    if trace.bounds:
        lines.append("  bound trajectory (f_l, f_u):")
        steps = trace.bounds
        if len(steps) <= max_steps:
            indexed = list(enumerate(steps))
        else:
            head = max_steps // 2
            tail = max_steps - head
            indexed = list(enumerate(steps[:head]))
            indexed.append((-1, None))  # elision marker
            indexed.extend(
                (len(steps) - tail + i, s) for i, s in enumerate(steps[-tail:])
            )
        for index, entry in indexed:
            if entry is None:
                lines.append(f"    ... {len(steps) - max_steps} step(s) elided ...")
                continue
            lo, hi = entry
            lines.append(
                f"    step {index:>4}: [{_fmt(lo)}, {_fmt(hi)}]  width={_fmt(hi - lo)}"
            )
    return "\n".join(lines)


def rule_summary(traces: Sequence[QueryTrace]) -> str:
    """One-line-per-rule tally across a set of traces."""
    counts: dict[str, int] = {}
    for trace in traces:
        counts[trace.rule or "(none)"] = counts.get(trace.rule or "(none)", 0) + 1
    total = len(traces)
    lines = [f"{total} trace(s):"]
    for rule, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        share = 100.0 * count / total if total else 0.0
        lines.append(f"  {rule:<15} {count:>7}  ({share:.1f}%)")
    return "\n".join(lines)


def explain_traces(
    traces: Sequence[QueryTrace],
    thresholds: tuple[float, float] | None = None,
    limit: int = 10,
    max_steps: int = 12,
) -> str:
    """Summary plus detailed rendering of the first ``limit`` traces."""
    parts = [rule_summary(traces), ""]
    for trace in traces[:limit]:
        parts.append(explain_trace(trace, thresholds=thresholds, max_steps=max_steps))
        parts.append("")
    if len(traces) > limit:
        parts.append(f"... {len(traces) - limit} more trace(s); use --limit to see them.")
    return "\n".join(parts).rstrip() + "\n"
