"""Build identity: package version plus git-describe, for stamping.

Every durable artifact this repo emits — saved models, ``/statz`` and
``/metrics`` responses, ``BENCH_*.json`` reports — carries the output
of :func:`build_info` so a perf number or a served prediction can be
traced back to the exact tree that produced it.

Git metadata is best-effort: outside a checkout (an installed wheel, a
stripped container) ``git_describe`` degrades to ``"unknown"`` rather
than failing the caller.
"""

from __future__ import annotations

import functools
import platform
import subprocess
from pathlib import Path

import repro

__all__ = ["build_info", "git_describe"]


@functools.lru_cache(maxsize=1)
def git_describe() -> str:
    """``git describe --always --dirty --tags`` for this checkout.

    Returns ``"unknown"`` when git is unavailable, times out, or the
    package does not live inside a repository.
    """
    root = Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    described = proc.stdout.strip()
    if proc.returncode != 0 or not described:
        return "unknown"
    return described


def build_info() -> dict[str, str]:
    """Version + git describe + python, as a JSON-safe flat dict."""
    return {
        "version": repro.__version__,
        "git": git_describe(),
        "python": platform.python_version(),
    }
