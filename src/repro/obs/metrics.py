"""Shared instrument handles for the tKDC pipeline.

Every layer that reports into the process-wide registry declares its
instruments here, so metric names, labels, and buckets live in one
place (and ``docs/observability.md`` documents exactly this file).

Granularity is deliberate: the traversal engines report **per call**
(per-query engine) or **per block** (batch engine), never per node —
that keeps the enabled-path cost to a handful of instrument writes per
thousand queries and the disabled-path cost to one boolean test (see
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.registry import LATENCY_BUCKETS, REGISTRY, WORK_BUCKETS

__all__ = [
    "QUERIES_TOTAL",
    "KERNEL_EVALUATIONS_TOTAL",
    "NODE_EXPANSIONS",
    "GRID_HITS_TOTAL",
    "GUARD_REPAIRS_TOTAL",
    "GUARD_ESCALATIONS_TOTAL",
    "BOOTSTRAP_ITERATIONS_TOTAL",
    "BOOTSTRAP_BACKOFFS_TOTAL",
    "BOOTSTRAP_FAILURES_TOTAL",
    "CLASSIFY_SECONDS",
    "ENGINE_SELECTED_TOTAL",
    "HBE_SAMPLES",
    "HBE_UNDECIDED_TOTAL",
    "STREAM_INGESTED_TOTAL",
    "DRIFT_CHECKS_TOTAL",
    "REFIT_TOTAL",
    "REFIT_SECONDS",
    "STALENESS_SECONDS",
    "WAL_APPENDS_TOTAL",
    "WAL_FSYNCS_TOTAL",
    "WAL_APPEND_SECONDS",
    "WAL_REPLAYED_RECORDS_TOTAL",
    "WAL_TORN_RECORDS_TOTAL",
    "STREAM_RECOVERIES_TOTAL",
    "record_engine_selected",
    "record_hbe_block",
    "record_traversal",
    "record_traversal_block",
    "record_ingest",
    "record_drift_check",
    "record_refit",
    "record_staleness",
    "record_wal_append",
    "record_wal_replay",
    "record_stream_recovery",
]

#: Traversals finished, labeled by engine and terminating rule
#: (threshold_high / threshold_low / tolerance / exhausted / budget /
#: exact). This is the registry's view of Figure 12/16's "which rule
#: fired" breakdown.
QUERIES_TOTAL = REGISTRY.counter(
    "tkdc_queries_total",
    "Density-bounding traversals finished, by engine and terminating rule",
    labels=("engine", "rule"),
)

#: Kernel evaluations against training points (the paper's
#: machine-independent cost proxy), by engine.
KERNEL_EVALUATIONS_TOTAL = REGISTRY.counter(
    "tkdc_kernel_evaluations_total",
    "Kernel evaluations against training points, by engine",
    labels=("engine",),
)

#: Distribution of node expansions per query, by engine.
NODE_EXPANSIONS = REGISTRY.histogram(
    "tkdc_node_expansions",
    "Node expansions per density-bounding traversal",
    labels=("engine",),
    buckets=WORK_BUCKETS,
)

#: Queries answered by the grid cache before any traversal.
GRID_HITS_TOTAL = REGISTRY.counter(
    "tkdc_grid_hits_total",
    "Queries short-circuited by the grid cache",
)

#: Numeric-guard repairs applied, by guard site.
GUARD_REPAIRS_TOTAL = REGISTRY.counter(
    "tkdc_guard_repairs_total",
    "Invariant-guard repairs applied, by site (node/leaf/accumulator/threshold)",
    labels=("site",),
)

#: Guard escalations (warn/raise/exact-fallback events), by site.
GUARD_ESCALATIONS_TOTAL = REGISTRY.counter(
    "tkdc_guard_escalations_total",
    "Invariant-guard escalations beyond silent repair, by site",
    labels=("site",),
)

#: Threshold-bootstrap progress counters.
BOOTSTRAP_ITERATIONS_TOTAL = REGISTRY.counter(
    "tkdc_bootstrap_iterations_total",
    "Threshold-bootstrap refinement iterations executed",
)
BOOTSTRAP_BACKOFFS_TOTAL = REGISTRY.counter(
    "tkdc_bootstrap_backoffs_total",
    "Threshold-bootstrap sample-size backoffs",
)
BOOTSTRAP_FAILURES_TOTAL = REGISTRY.counter(
    "tkdc_bootstrap_failures_total",
    "Threshold bootstraps that exhausted their budget",
)

#: Engine-selection outcomes: one increment per fit/serving resolution
#: of ``engine="auto"`` (and per explicit configuration, so the family
#: always reflects what is actually serving). Reasons come from
#: :func:`repro.estimators.select.select_engine`.
ENGINE_SELECTED_TOTAL = REGISTRY.counter(
    "tkdc_engine_selected_total",
    "Engine-selection outcomes, by chosen engine and selection reason",
    labels=("engine", "reason"),
)

#: Distribution of LSH density samples (tables consulted) per hbe
#: query, by outcome: "decided" (CI cleared the band), "fallback"
#: (straddle, re-run through the tree), "exhausted" (anytime budget
#: spent, surfaced as degraded).
HBE_SAMPLES = REGISTRY.histogram(
    "tkdc_hbe_samples",
    "LSH density samples drawn per hbe query, by outcome",
    labels=("outcome",),
    buckets=WORK_BUCKETS,
)

#: hbe queries the sampler could not decide, by cause: "straddle"
#: queries go to the tree fallback (still certified), "budget" queries
#: had no anytime allowance left and surface as degraded/UNCERTAIN.
HBE_UNDECIDED_TOTAL = REGISTRY.counter(
    "tkdc_hbe_undecided_total",
    "hbe queries not decided by sampling, by cause",
    labels=("cause",),
)


def record_engine_selected(engine: str, reason: str) -> None:
    """Report one engine-selection outcome (fit or serving calibration)."""
    if REGISTRY.enabled:
        ENGINE_SELECTED_TOTAL.labels(engine, reason).inc()


def record_hbe_block(
    decided_samples: Iterable[float],
    fallback_samples: Iterable[float],
    exhausted_samples: Iterable[float],
) -> None:
    """Report one hbe classification block's per-query sampling outcomes."""
    if not REGISTRY.enabled:
        return
    decided = list(decided_samples)
    fallback = list(fallback_samples)
    exhausted = list(exhausted_samples)
    if decided:
        HBE_SAMPLES.labels("decided").observe_many(decided)
    if fallback:
        HBE_SAMPLES.labels("fallback").observe_many(fallback)
        HBE_UNDECIDED_TOTAL.labels("straddle").inc(len(fallback))
    if exhausted:
        HBE_SAMPLES.labels("exhausted").observe_many(exhausted)
        HBE_UNDECIDED_TOTAL.labels("budget").inc(len(exhausted))


#: Wall-clock duration of TKDCClassifier.classify calls, by engine.
CLASSIFY_SECONDS = REGISTRY.histogram(
    "tkdc_classify_seconds",
    "Wall-clock seconds per TKDCClassifier.classify call",
    labels=("engine",),
    buckets=LATENCY_BUCKETS,
)


def record_traversal(engine: str, rule: str, expansions: int, kernels: int) -> None:
    """Report one finished traversal (per-query engine's return path)."""
    if not REGISTRY.enabled:
        return
    QUERIES_TOTAL.labels(engine, rule).inc()
    NODE_EXPANSIONS.labels(engine).observe(expansions)
    if kernels:
        KERNEL_EVALUATIONS_TOTAL.labels(engine).inc(kernels)


# -- streaming pipeline instruments -----------------------------------

#: Points folded into the streaming pipeline (exact buffer + sketch).
STREAM_INGESTED_TOTAL = REGISTRY.counter(
    "tkdc_stream_ingested_points_total",
    "Points ingested into the streaming pipeline",
)

#: Drift checks run against the served threshold, by outcome:
#: "stable", "drifted" (CI violated, hysteresis pending), "fired"
#: (refit triggered), "skipped" (window still filling / interval gate).
DRIFT_CHECKS_TOTAL = REGISTRY.counter(
    "tkdc_drift_checks_total",
    "Drift checks of the served threshold against the fresh-window CI, by outcome",
    labels=("outcome",),
)

#: Background refit lifecycle events: "triggered", "succeeded",
#: "failed" (no artifact produced), "swapped" (verified swap landed),
#: "rolled_back" (artifact refused by the verified reload path).
REFIT_TOTAL = REGISTRY.counter(
    "tkdc_refit_total",
    "Drift-triggered background refit outcomes",
    labels=("outcome",),
)

#: Wall-clock duration of supervised background refits.
REFIT_SECONDS = REGISTRY.histogram(
    "tkdc_refit_seconds",
    "Wall-clock seconds per supervised background refit",
    buckets=LATENCY_BUCKETS,
)

#: Seconds since the oldest unresolved drift detection (0 = current).
STALENESS_SECONDS = REGISTRY.gauge(
    "tkdc_staleness_seconds",
    "Seconds the served threshold has been in confirmed unresolved drift",
)


def record_ingest(points: int) -> None:
    """Report one ingest batch folded into the pipeline."""
    if REGISTRY.enabled and points:
        STREAM_INGESTED_TOTAL.inc(points)


def record_drift_check(outcome: str) -> None:
    """Report one drift check's outcome."""
    if REGISTRY.enabled:
        DRIFT_CHECKS_TOTAL.labels(outcome).inc()


def record_refit(outcome: str, seconds: float | None = None) -> None:
    """Report one refit lifecycle event (and its duration, if finished)."""
    if REGISTRY.enabled:
        REFIT_TOTAL.labels(outcome).inc()
        if seconds is not None:
            REFIT_SECONDS.observe(seconds)


def record_staleness(seconds: float) -> None:
    """Report the current staleness gauge reading."""
    if REGISTRY.enabled:
        STALENESS_SECONDS.set(seconds)


# -- durable ingest (write-ahead log) instruments ----------------------

#: WAL records appended, by record type (ingest / refit_trigger /
#: swap_commit / snapshot).
WAL_APPENDS_TOTAL = REGISTRY.counter(
    "tkdc_wal_appends_total",
    "Write-ahead-log records appended, by record type",
    labels=("type",),
)

#: fsyncs issued by the WAL (policy-dependent: "always" fsyncs every
#: append, "interval" at most once per interval, "off" never).
WAL_FSYNCS_TOTAL = REGISTRY.counter(
    "tkdc_wal_fsyncs_total",
    "fsync calls issued by the write-ahead log",
)

#: Wall-clock duration of one WAL append (including its fsync, when the
#: policy issues one) — the durable-ingest acknowledgement cost.
WAL_APPEND_SECONDS = REGISTRY.histogram(
    "tkdc_wal_append_seconds",
    "Wall-clock seconds per write-ahead-log append (fsync included)",
    labels=("type",),
    buckets=LATENCY_BUCKETS,
)

#: Records replayed from the WAL during crash recovery.
WAL_REPLAYED_RECORDS_TOTAL = REGISTRY.counter(
    "tkdc_wal_replayed_records_total",
    "WAL records replayed during crash recovery, by record type",
    labels=("type",),
)

#: Torn final records truncated while opening a WAL (each one is an
#: interrupted append that was never acknowledged).
WAL_TORN_RECORDS_TOTAL = REGISTRY.counter(
    "tkdc_wal_torn_records_total",
    "Torn final WAL records truncated during recovery",
)

#: Streaming pipelines rebuilt from a WAL after a crash/restart.
STREAM_RECOVERIES_TOTAL = REGISTRY.counter(
    "tkdc_stream_recoveries_total",
    "Streaming pipeline crash recoveries completed from the WAL",
)


def record_wal_append(type_name: str, seconds: float, fsyncs: int) -> None:
    """Report one WAL append (and the fsyncs it issued)."""
    if REGISTRY.enabled:
        WAL_APPENDS_TOTAL.labels(type_name).inc()
        WAL_APPEND_SECONDS.labels(type_name).observe(seconds)
        if fsyncs:
            WAL_FSYNCS_TOTAL.inc(fsyncs)


def record_wal_replay(type_counts: Mapping[str, int], torn_records: int) -> None:
    """Report one WAL replay pass's record mix and torn-tail count."""
    if not REGISTRY.enabled:
        return
    for type_name, count in type_counts.items():
        if count:
            WAL_REPLAYED_RECORDS_TOTAL.labels(type_name).inc(count)
    if torn_records:
        WAL_TORN_RECORDS_TOTAL.inc(torn_records)


def record_stream_recovery() -> None:
    """Report one completed streaming crash recovery."""
    if REGISTRY.enabled:
        STREAM_RECOVERIES_TOTAL.inc()


def record_traversal_block(
    engine: str,
    rule_counts: Mapping[str, int],
    expansions: Iterable[float],
    kernels: int,
) -> None:
    """Report one finished block of traversals (batch engine)."""
    if not REGISTRY.enabled:
        return
    for rule, count in rule_counts.items():
        if count:
            QUERIES_TOTAL.labels(engine, rule).inc(count)
    NODE_EXPANSIONS.labels(engine).observe_many(expansions)
    if kernels:
        KERNEL_EVALUATIONS_TOTAL.labels(engine).inc(kernels)
