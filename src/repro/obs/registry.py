"""A process-wide metrics registry (counters, gauges, histograms).

The paper's evaluation argues through machine-independent cost proxies —
kernel evaluations per query, which pruning rule fired (Figures 12 and
16) — and the serving daemon adds wall-clock ones (request latency,
shed/degraded rates). This module gives every layer one place to report
them: a thread-safe registry of named instruments that renders both a
plain-dict snapshot (``/statz``-style JSON) and Prometheus text
exposition format (``/metrics``, ``repro metrics-dump``).

Design constraints, in order:

1. **Near-zero cost when disabled.** Every instrument write starts with
   one attribute load and a boolean test against its registry's
   ``enabled`` flag. The hot traversal loops additionally report at
   *call/block granularity*, never per node, so even an enabled registry
   costs a handful of instrument writes per thousand queries (measured
   in ``benchmarks/bench_obs_overhead.py``).
2. **Thread safety.** One lock per instrument child; label-child
   creation takes the registry lock. The serving daemon's handler
   threads and the traversal engines share instruments freely.
3. **Determinism.** Histograms use fixed log-spaced buckets chosen at
   construction; nothing about recording depends on wall-clock time
   except the optional ``Histogram.time()`` helper, whose clock is
   injectable for tests.

Instruments follow Prometheus conventions: counters are monotone and
named ``*_total``, gauges are set-or-move, histograms expose cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``. Labels are declared
at registration and bound with :meth:`Instrument.labels`.

The process-wide default registry is :data:`REGISTRY`; the environment
variable ``REPRO_METRICS=0`` (or ``off``/``false``) starts it disabled.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "log_buckets",
    "render_prometheus",
]


def log_buckets(lo: float, hi: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced (geometric) bucket edges from ``lo`` to ``hi``.

    Both endpoints are included; edges are rounded to 6 significant
    digits so the exposition strings stay stable across platforms.

    >>> log_buckets(1.0, 100.0, 3)
    (1.0, 10.0, 100.0)
    """
    if not (0.0 < lo < hi):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if count < 2:
        raise ValueError(f"need at least 2 buckets, got {count}")
    ratio = (hi / lo) ** (1.0 / (count - 1))
    return tuple(float(f"{lo * ratio ** i:.6g}") for i in range(count))


#: Default latency buckets (seconds): 0.5 ms to 60 s, log-spaced.
LATENCY_BUCKETS = log_buckets(0.0005, 60.0, 15)

#: Default work buckets (node expansions / kernel evaluations per
#: query): 1 to ~1M, log-spaced at factor 4.
WORK_BUCKETS = tuple(float(4**i) for i in range(11))


def _check_label_values(names: tuple[str, ...], values: tuple[str, ...]) -> None:
    if len(values) != len(names):
        raise ValueError(
            f"expected label values for {names}, got {len(values)} value(s)"
        )


class Instrument:
    """Common parent/child machinery for one named metric family.

    An instrument declared with labels is a *family*: values live on
    label-bound children obtained via :meth:`labels`. An instrument
    declared without labels is its own single child.
    """

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,  # noqa: A002 - prometheus terminology
        label_names: tuple[str, ...] = (),
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()
        #: label-value tuple -> child instrument (self for the unlabeled).
        self._children: dict[tuple[str, ...], "Instrument"] = {}
        if not label_names:
            self._children[()] = self

    # -- family surface -------------------------------------------------

    def labels(self, *values: object, **kv: object) -> "Instrument":
        """The child bound to these label values (created on first use)."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(kv[name] for name in self.label_names)
        key = tuple(str(v) for v in values)
        _check_label_values(self.label_names, key)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> "Instrument":
        child = object.__new__(type(self))
        child._registry = self._registry
        child.name = self.name
        child.help = self.help
        child.label_names = ()
        child._lock = threading.Lock()
        child._children = {(): child}
        self._prepare_child(child)
        child._init_value()
        return child

    def _prepare_child(self, child: "Instrument") -> None:
        """Copy subclass configuration onto a child before value init."""

    def _init_value(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def children(self) -> Iterable[tuple[tuple[str, ...], "Instrument"]]:
        """Snapshot of ``(label_values, child)`` pairs."""
        with self._lock:
            return list(self._children.items())


class Counter(Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._init_value()

    def _init_value(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(Instrument):
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._init_value()

    def _init_value(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(Instrument):
    """Fixed-bucket distribution with Prometheus cumulative exposition."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,  # noqa: A002
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be a sorted non-empty sequence: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        super().__init__(registry, name, help, label_names)
        if not label_names:
            self._init_value()

    def _prepare_child(self, child: "Instrument") -> None:
        child.buckets = self.buckets  # type: ignore[attr-defined]

    def _init_value(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def _bucket_index(self, value: float) -> int:
        # Linear scan: bucket lists are short (<= ~15) and the constant
        # beats bisect's call overhead at this size.
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                return i
        return len(self.buckets)

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations under one lock acquisition."""
        if not self._registry.enabled:
            return
        values = [float(v) for v in values]
        if not values:
            return
        indices = [self._bucket_index(v) for v in values]
        with self._lock:
            for index in indices:
                self._counts[index] += 1
            self._sum += sum(values)
            self._count += len(values)

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed time of its block."""
        return _HistogramTimer(self)

    def snapshot(self) -> dict:
        """Cumulative bucket counts plus sum/count (a consistent view)."""
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative: list[int] = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": list(self.buckets),
            "cumulative_counts": cumulative,
            "sum": total,
            "count": count,
        }

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


class _HistogramTimer:
    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._clock = histogram._registry.clock

    def __enter__(self) -> "_HistogramTimer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(self._clock() - self._start)


class MetricsRegistry:
    """A named collection of instruments with one enable/disable switch.

    Registration is idempotent: asking for an existing name returns the
    existing instrument (kind and labels must match — a mismatch is a
    programming error and raises). This lets modules declare their
    instruments at import time against the shared :data:`REGISTRY`
    without coordination.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self._lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def _register(self, cls, name: str, help: str, labels, **kwargs) -> Instrument:  # noqa: A002
        label_names = tuple(labels)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.label_names}"
                    )
                return existing
            instrument = cls(self, name, help, label_names, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Iterable[str] = ()  # noqa: A002
    ) -> Counter:
        return self._register(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labels: Iterable[str] = ()  # noqa: A002
    ) -> Gauge:
        return self._register(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)  # type: ignore[return-value]

    def instruments(self) -> list[Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def reset(self) -> None:
        """Zero every instrument (tests only — families are kept)."""
        for instrument in self.instruments():
            for __, child in instrument.children():
                with child._lock:
                    child._init_value()

    def snapshot(self) -> dict:
        """Plain-dict view: ``name{labels}`` -> value (hist: summary)."""
        out: dict[str, object] = {}
        for instrument in self.instruments():
            for label_values, child in instrument.children():
                if child is instrument and instrument.label_names:
                    continue  # a bare family row carries no value
                key = instrument.name
                if label_values:
                    pairs = ",".join(
                        f"{n}={v}"
                        for n, v in zip(instrument.label_names, label_values)
                    )
                    key = f"{instrument.name}{{{pairs}}}"
                if isinstance(child, Histogram):
                    view = child.snapshot()
                    out[key] = {"count": view["count"], "sum": view["sum"]}
                else:
                    out[key] = child.value  # type: ignore[attr-defined]
        return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Render registries as Prometheus text exposition format (0.0.4).

    Later registries may not repeat a metric name used by an earlier one
    (Prometheus forbids duplicate families in one scrape); duplicates
    raise so a wiring mistake fails loudly in tests, not in a scraper.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for registry in registries:
        for instrument in registry.instruments():
            if instrument.name in seen:
                raise ValueError(
                    f"metric {instrument.name!r} appears in more than one registry"
                )
            seen.add(instrument.name)
            lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            for label_values, child in instrument.children():
                if child is instrument and instrument.label_names:
                    continue
                if isinstance(child, Histogram):
                    view = child.snapshot()
                    edges = [*view["buckets"], math.inf]
                    for edge, cumulative in zip(edges, view["cumulative_counts"]):
                        labels = _label_str(
                            instrument.label_names, label_values,
                            extra=f'le="{_format_float(edge)}"',
                        )
                        lines.append(
                            f"{instrument.name}_bucket{labels} {cumulative}"
                        )
                    base = _label_str(instrument.label_names, label_values)
                    lines.append(
                        f"{instrument.name}_sum{base} {_format_float(view['sum'])}"
                    )
                    lines.append(f"{instrument.name}_count{base} {view['count']}")
                else:
                    labels = _label_str(instrument.label_names, label_values)
                    value = child.value  # type: ignore[attr-defined]
                    lines.append(
                        f"{instrument.name}{labels} {_format_float(value)}"
                    )
    return "\n".join(lines) + "\n"


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_METRICS", "").strip().lower()
    return raw not in ("0", "off", "false", "no", "disabled")


#: The process-wide default registry every repro layer reports into.
REGISTRY = MetricsRegistry(enabled=_env_enabled())
