"""Observability: metrics registry, per-query traces, build identity.

Stdlib-only. See ``docs/observability.md`` for the full tour:

- :mod:`repro.obs.registry` — process-wide ``Counter``/``Gauge``/
  ``Histogram`` registry with Prometheus text rendering.
- :mod:`repro.obs.trace` — opt-in per-query pruning traces and the
  bounded JSONL sink behind ``repro explain``.
- :mod:`repro.obs.explain` — human-readable trace rendering.
- :mod:`repro.obs.buildinfo` — version + git-describe stamping.
"""

from repro.obs.buildinfo import build_info, git_describe
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    render_prometheus,
)
from repro.obs.trace import (
    TERMINAL_RULES,
    QueryTrace,
    TraceRecorder,
    TraceSink,
    TraceView,
    read_traces,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "render_prometheus",
    "build_info",
    "git_describe",
    "TERMINAL_RULES",
    "QueryTrace",
    "TraceRecorder",
    "TraceSink",
    "TraceView",
    "read_traces",
]
