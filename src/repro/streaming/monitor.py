"""Drift detection: served threshold vs a fresh-sample order-statistic CI.

The served model claims its threshold ``t`` is the ``p``-quantile of the
data's density distribution. If the stream still follows the training
distribution, then for a fresh window of ``s`` points the number of
densities below the true ``p``-quantile is Binomial(s, p) — so the rank
interval from :func:`repro.quantile.order_stats.binomial_order_ci`
brackets that quantile with probability at least ``1 - delta`` (paper
Equation 10, applied to *monitoring* instead of training). A served
threshold that falls outside the bracket is therefore evidence, at
level ``delta``, that the density distribution has moved: the statistical
trigger for a refit.

Two practical guards sit on top of the test:

- **hysteresis** — a refit fires only after ``hysteresis`` *consecutive*
  violating checks, suppressing one-off unlucky windows (the residual
  false-trigger rate drops from ``delta`` per check to roughly
  ``delta ** hysteresis`` per run of checks);
- **min refit interval** — a refit is never triggered within
  ``min_refit_interval`` seconds of the previous one, bounding refit
  churn when the distribution moves continuously.

Window densities are *estimates* (``eps * t``-precise, from
:meth:`~repro.core.classifier.TKDCClassifier.estimate_density`); callers
pass ``tolerance=eps * t`` so estimation error widens the acceptance
band instead of eroding the ``delta`` guarantee. The comparison is
statistically clean because training thresholds live in
self-contribution-corrected (≈ leave-one-out) density space: a fresh
point's density under the served model is exactly the quantity the
threshold is a quantile of.

The monitor is a pure state machine over injected observations and an
injected clock — no threads, no model access — so its false-positive
behaviour is testable without sleeps (satellite: FP rate bounded by
``delta``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.quantile.order_stats import binomial_order_ci


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one drift check (JSON-ready via ``as_dict``)."""

    checked: bool  #: False when the window is still filling
    drifted: bool  #: threshold outside this window's CI
    fired: bool  #: hysteresis + min-interval passed: trigger a refit
    reason: str  #: "stable" / "window_filling" / "drift_low" / ...
    threshold: float = float("nan")
    ci_lower: float = float("nan")
    ci_upper: float = float("nan")
    window: int = 0
    consecutive: int = 0  #: consecutive violating checks including this one

    def as_dict(self) -> dict:
        return {
            "checked": self.checked,
            "drifted": self.drifted,
            "fired": self.fired,
            "reason": self.reason,
            "threshold": self.threshold,
            "ci_lower": self.ci_lower,
            "ci_upper": self.ci_upper,
            "window": self.window,
            "consecutive": self.consecutive,
        }


class DriftMonitor:
    """Hysteresis-wrapped order-statistic drift test.

    Parameters
    ----------
    p:
        The quantile the served threshold claims to be (the model's
        ``config.p``).
    delta:
        Per-check false-trigger level of the CI test.
    window:
        Fresh points required before a check runs; also the subsample
        size ``s`` of the order-statistic CI.
    hysteresis:
        Consecutive violating checks required before firing.
    min_refit_interval:
        Seconds that must elapse after a refit before the next fires.
    clock:
        Injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        p: float,
        delta: float = 0.01,
        window: int = 256,
        hysteresis: int = 2,
        min_refit_interval: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        if window < 8:
            raise ValueError(f"window must be >= 8, got {window}")
        if hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
        if min_refit_interval < 0:
            raise ValueError(
                f"min_refit_interval must be >= 0, got {min_refit_interval}"
            )
        self.p = p
        self.delta = delta
        self.window = window
        self.hysteresis = hysteresis
        self.min_refit_interval = min_refit_interval
        self._clock = clock
        self._consecutive = 0
        self._last_refit_at: float | None = None
        self.checks = 0
        self.violations = 0
        self.fires = 0

    def observe(
        self,
        densities: np.ndarray,
        served_threshold: float,
        tolerance: float = 0.0,
        window: int | None = None,
    ) -> DriftDecision:
        """Run one drift check over a fresh window of density estimates.

        ``tolerance`` (absolute) widens the acceptance band to absorb
        density-estimation error; pass ``eps * t`` when densities come
        from the tolerance-rule estimator. ``window`` overrides the
        configured window size for this check only (the adaptive-window
        pipeline derives it from the observed check cadence); it is
        clamped below at 8, the CI's minimum sample size.
        """
        size = self.window if window is None else max(8, int(window))
        densities = np.asarray(densities, dtype=np.float64)
        densities = densities[np.isfinite(densities)]
        if densities.shape[0] < size:
            return DriftDecision(
                checked=False, drifted=False, fired=False,
                reason="window_filling", window=int(densities.shape[0]),
            )
        window_values = np.sort(densities[-size:])
        lo_rank, hi_rank = binomial_order_ci(size, self.p, self.delta)
        ci_lower = float(window_values[lo_rank - 1]) - tolerance
        ci_upper = float(window_values[hi_rank - 1]) + tolerance
        self.checks += 1
        if served_threshold < ci_lower:
            drifted, reason = True, "drift_low"
        elif served_threshold > ci_upper:
            drifted, reason = True, "drift_high"
        else:
            drifted, reason = False, "stable"
        if drifted:
            self.violations += 1
            self._consecutive += 1
        else:
            self._consecutive = 0
        fired = False
        if drifted and self._consecutive >= self.hysteresis:
            now = self._clock()
            if (
                self._last_refit_at is None
                or now - self._last_refit_at >= self.min_refit_interval
            ):
                fired = True
                self.fires += 1
            else:
                reason = "refit_interval"
        return DriftDecision(
            checked=True, drifted=drifted, fired=fired, reason=reason,
            threshold=served_threshold, ci_lower=ci_lower, ci_upper=ci_upper,
            window=size, consecutive=self._consecutive,
        )

    def note_refit(self) -> None:
        """Record a completed refit: re-arms hysteresis and the interval."""
        self._last_refit_at = self._clock()
        self._consecutive = 0
