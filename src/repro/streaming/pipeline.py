"""The streaming ingest → drift-refit → verified hot-swap pipeline.

Wires the streaming pieces into one production loop around a serving
:class:`~repro.core.incremental.IncrementalTKDC`:

- :meth:`StreamingPipeline.ingest` folds arriving points into the
  model's exact answer buffer (every inserted point affects the very
  next classification), the bounded mergeable
  :class:`~repro.streaming.sketch.StreamSketch` (refit training data for
  the whole stream), and a fresh-points window (drift evidence);
- a background thread periodically runs the
  :class:`~repro.streaming.monitor.DriftMonitor`'s order-statistic test
  of the served threshold; when drift is confirmed (hysteresis + min
  interval) it launches a crash-isolated refit
  (:func:`repro.streaming.refit.run_refit`) on a sketch snapshot;
- a produced artifact ships through the sha256-verified reload path — a
  :class:`~repro.serve.reload.ModelManager`, a fleet router, or the
  built-in :class:`LocalReloader` (same ``load → canary → swap``
  protocol) — and only a surviving candidate is adopted by the serving
  model, retaining exactly the points that arrived while the refit ran.

**Staleness accounting.** ``staleness_seconds()`` is the age of the
oldest unresolved drift detection; the pipeline's declared worst case
(:meth:`StreamSettings.staleness_bound`) is derived in
``docs/streaming.md`` from the check cadence, the hysteresis depth, and
the supervised refit deadline. **Accounting invariant**
(:meth:`verify_accounting`): every ingested point is represented —
``model.n_total == initial_n + ingested_total`` across any number of
swaps, every triggered refit terminates as succeeded or failed, and
every produced artifact is either swapped or rolled back.

A failed, poisoned, crashed, or corrupted refit never touches the
serving model: failure isolation is the subprocess boundary plus the
verified swap; "rollback" is the absence of the swap.
"""

from __future__ import annotations

import copy
import logging
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.classifier import TKDCClassifier
from repro.core.incremental import IncrementalTKDC
from repro.io.models import load_model, resolve_model_path
from repro.obs.metrics import (
    record_drift_check,
    record_ingest,
    record_refit,
    record_staleness,
)
from repro.robustness.faults import DriftPlan
from repro.robustness.supervisor import SupervisionPolicy
from repro.serve.reload import ReloadResult, prepare_classifier, run_canary
from repro.streaming.monitor import DriftDecision, DriftMonitor
from repro.streaming.refit import RefitOutcome, run_refit
from repro.streaming.sketch import StreamSketch

log = logging.getLogger("repro.streaming")


@dataclass(frozen=True)
class StreamSettings:
    """Knobs of the ingest → refit → swap loop (all validated).

    Attributes
    ----------
    drift_delta:
        Per-check false-trigger level of the order-statistic CI test.
    monitor_window:
        Fresh points per drift check (the CI's subsample size).
    hysteresis:
        Consecutive violating checks required to trigger a refit.
    check_interval:
        Seconds between background drift checks.
    min_refit_interval:
        Seconds after any refit before the next may trigger (also the
        retry backoff after a failed refit).
    refit_deadline / refit_retries / refit_backoff:
        The supervised refit's per-attempt deadline, bounded retries,
        and backoff (see :class:`~repro.robustness.supervisor.SupervisionPolicy`).
    refit_sample_cap:
        Maximum training rows materialized from the sketch per refit.
    sketch_capacity:
        Weighted points retained by the merge-reduce sketch.
    canary_queries / probe_seed:
        The standalone swap verifier's canary workload (ignored when an
        external reloader is attached — it brings its own).
    swap_grace:
        Seconds budgeted for artifact verification + canary + adopt in
        the declared staleness bound.
    """

    drift_delta: float = 0.01
    monitor_window: int = 256
    hysteresis: int = 2
    check_interval: float = 0.25
    min_refit_interval: float = 1.0
    refit_deadline: float = 120.0
    refit_retries: int = 1
    refit_backoff: float = 0.05
    refit_sample_cap: int = 20000
    sketch_capacity: int = 4096
    canary_queries: int = 32
    probe_seed: int = 7
    swap_grace: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 < self.drift_delta < 1.0:
            raise ValueError(f"drift_delta must be in (0, 1), got {self.drift_delta}")
        if self.monitor_window < 8:
            raise ValueError(f"monitor_window must be >= 8, got {self.monitor_window}")
        if self.hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {self.hysteresis}")
        for name in (
            "check_interval", "refit_deadline", "swap_grace",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        for name in ("min_refit_interval", "refit_backoff"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.refit_retries < 0:
            raise ValueError(f"refit_retries must be >= 0, got {self.refit_retries}")
        if self.refit_sample_cap < 2:
            raise ValueError(
                f"refit_sample_cap must be >= 2, got {self.refit_sample_cap}"
            )
        if self.sketch_capacity < 2:
            raise ValueError(
                f"sketch_capacity must be >= 2, got {self.sketch_capacity}"
            )
        if self.canary_queries < 1:
            raise ValueError(f"canary_queries must be >= 1, got {self.canary_queries}")

    @property
    def staleness_bound(self) -> float:
        """Declared worst-case seconds from drift onset to swap.

        Detection: the violating window must survive ``hysteresis``
        checks, plus one check interval of scheduling slack. Refit:
        every attempt is deadline-bounded, plus the retry backoffs.
        Swap: ``swap_grace``. Derivation in ``docs/streaming.md``.
        """
        detection = (self.hysteresis + 1) * self.check_interval
        backoffs = sum(
            self.refit_backoff * (2 ** max(attempt - 1, 0))
            for attempt in range(1, self.refit_retries + 1)
        )
        refit = (self.refit_retries + 1) * self.refit_deadline + backoffs
        return detection + refit + self.swap_grace


class LocalReloader:
    """Verified swap for pipelines with no daemon attached.

    The same three-stage protocol as
    :class:`~repro.serve.reload.ModelManager.reload` — sha256-verified
    load, canary classification, swap-by-assignment — minus the serving
    calibration. Anything with ``reload(path) -> ReloadResult`` and a
    ``classifier`` attribute duck-types as the pipeline's swap target.
    """

    def __init__(self, canary_queries: int = 32, probe_seed: int = 7) -> None:
        self.canary_queries = canary_queries
        self.probe_seed = probe_seed
        self.classifier: TKDCClassifier | None = None

    def reload(self, path: Path | str) -> ReloadResult:
        try:
            candidate_path = resolve_model_path(path)
            candidate = load_model(candidate_path)
        except Exception as exc:
            return ReloadResult(
                ok=False, stage="load", model_path=str(path),
                error=f"{type(exc).__name__}: {exc}",
            )
        candidate = prepare_classifier(candidate)
        try:
            run_canary(candidate, self.canary_queries, seed=self.probe_seed)
        except Exception as exc:
            return ReloadResult(
                ok=False, stage="canary", model_path=str(candidate_path),
                error=f"{type(exc).__name__}: {exc}",
            )
        self.classifier = candidate
        return ReloadResult(
            ok=True, stage="swapped", model_path=str(candidate_path),
            threshold=candidate.threshold.value,
        )


class StreamingPipeline:
    """Owns the serving model, the sketch, the monitor, and the loop.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.incremental.IncrementalTKDC`. Its
        automatic synchronous refits are disabled — the pipeline owns
        refits from here on.
    settings:
        :class:`StreamSettings` (defaults are production-shaped; tests
        shrink them).
    reloader:
        The verified swap target: anything with ``reload(path) ->
        ReloadResult``. Defaults to a :class:`LocalReloader`; attach a
        :class:`~repro.serve.reload.ModelManager` (or fleet router) to
        make the daemon serve each new generation too.
    artifact_dir:
        Where refit artifacts are written (a temp dir by default).
    plan:
        Optional :class:`~repro.robustness.faults.DriftPlan` consulted
        by refit subprocesses (fault injection for tests/benchmarks).
    clock:
        Injectable monotonic clock.
    """

    def __init__(
        self,
        model: IncrementalTKDC,
        settings: StreamSettings | None = None,
        reloader=None,
        artifact_dir: Path | str | None = None,
        plan: DriftPlan | None = None,
        seed_data: np.ndarray | None = None,
        clock=time.monotonic,
    ) -> None:
        model.classifier  # raises if unfitted
        model.auto_refit = False
        self.model = model
        self.settings = settings or StreamSettings()
        self.reloader = (
            reloader
            if reloader is not None
            else LocalReloader(self.settings.canary_queries, self.settings.probe_seed)
        )
        self._artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self.plan = plan
        self._clock = clock
        self._rng = np.random.default_rng(self.settings.probe_seed)
        self._lock = threading.RLock()
        self.sketch = StreamSketch(self.settings.sketch_capacity)
        if seed_data is not None:
            self.sketch.append(seed_data)
        self.monitor = DriftMonitor(
            p=model.config.p,
            delta=self.settings.drift_delta,
            window=self.settings.monitor_window,
            hysteresis=self.settings.hysteresis,
            min_refit_interval=self.settings.min_refit_interval,
            clock=clock,
        )
        self._window: deque[np.ndarray] = deque(maxlen=self.settings.monitor_window)
        self.initial_n = model.n_total
        self._sketch_base = self.sketch.n_seen
        self.ingested_total = 0
        self.refits_triggered = 0
        self.refits_succeeded = 0
        self.refits_failed = 0
        self.swaps = 0
        self.rollbacks = 0
        self.monitor_errors = 0
        self._refit_generation = 0
        self._refit_in_flight = False
        self._drift_since: float | None = None
        self._last_decision: DriftDecision | None = None
        self._last_refit: RefitOutcome | None = None
        self._last_swap: ReloadResult | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @classmethod
    def from_data(
        cls,
        data: np.ndarray,
        config=None,
        settings: StreamSettings | None = None,
        **kwargs,
    ) -> "StreamingPipeline":
        """Fit the initial model on ``data`` and seed the sketch with it."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        model = IncrementalTKDC(config, auto_refit=False).fit(data)
        return cls(model, settings=settings, seed_data=data, **kwargs)

    @classmethod
    def from_classifier(
        cls,
        classifier: TKDCClassifier,
        settings: StreamSettings | None = None,
        **kwargs,
    ) -> "StreamingPipeline":
        """Wrap an already-loaded model (daemon boot path: raw data is
        unavailable, so the sketch starts empty and refits train on the
        ingested stream only)."""
        population = (
            classifier.coreset_.n
            if classifier.coreset_ is not None
            else classifier.tree.size
        )
        model = IncrementalTKDC(classifier.config, auto_refit=False)
        model.adopt(classifier, n_indexed=int(population))
        return cls(model, settings=settings, **kwargs)

    # ------------------------------------------------------------------
    # Ingest + serve
    # ------------------------------------------------------------------

    def ingest(self, points: np.ndarray) -> int:
        """Fold new points into buffer, sketch, and drift window."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            return 0
        with self._lock:
            self.model.insert(points)  # validates dimensionality
            self.sketch.append(points)
            self._window.extend(points)
            self.ingested_total += points.shape[0]
        record_ingest(points.shape[0])
        return int(points.shape[0])

    def classify(self, queries: np.ndarray) -> np.ndarray:
        """Serve labels including every ingested point (exact buffer)."""
        with self._lock:
            return self.model.classify(queries)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        with self._lock:
            return self.model.predict(queries)

    def serving_view(self) -> IncrementalTKDC:
        """A consistent snapshot of the served model for lock-free serving.

        Shallow-copies the incremental model and copies only the live
        buffer rows, so the daemon can run a budgeted classify *outside*
        the pipeline lock without racing a concurrent ingest append or
        an :meth:`IncrementalTKDC.adopt` sliding the buffer in place.
        The classifier reference, counts, and buffer are captured
        atomically, so the shifted-threshold algebra stays coherent
        across a mid-request swap.
        """
        with self._lock:
            view = copy.copy(self.model)
            rows = self.model.buffer_view
            view._buffer_array = rows.copy() if rows.shape[0] else None
            view._buffer_count = int(rows.shape[0])
        return view

    # ------------------------------------------------------------------
    # Drift check + refit + swap
    # ------------------------------------------------------------------

    def check_drift_once(self) -> DriftDecision:
        """One synchronous monitor pass; refits and swaps if it fires.

        The background loop calls this on its cadence; tests call it
        directly for deterministic control flow.
        """
        with self._lock:
            if len(self._window) < self.settings.monitor_window:
                decision = DriftDecision(
                    checked=False, drifted=False, fired=False,
                    reason="window_filling", window=len(self._window),
                )
                self._last_decision = decision
                record_drift_check("skipped")
                self._publish_staleness_locked()
                return decision
            window = np.array(self._window)
            classifier = self.model.classifier
        # Density estimation runs outside the pipeline lock: it only
        # reads the classifier snapshot (a swap replaces the reference,
        # never mutates the old object's index).
        densities = classifier.estimate_density(window)
        threshold = classifier.threshold.value
        tolerance = classifier.config.epsilon * threshold
        decision = self.monitor.observe(densities, threshold, tolerance=tolerance)
        with self._lock:
            self._last_decision = decision
            if decision.drifted and self._drift_since is None:
                self._drift_since = self._clock()
            elif decision.checked and not decision.drifted:
                self._drift_since = None
            record_drift_check(
                "fired" if decision.fired
                else "drifted" if decision.drifted
                else "stable"
            )
            self._publish_staleness_locked()
        if decision.fired:
            self.refit_and_swap()
        return decision

    def refit_and_swap(self) -> RefitOutcome | None:
        """Run one supervised refit and, if it survives, the verified swap.

        Blocking (the caller is the background thread); classification
        and ingest stay live throughout — the pipeline lock is held only
        around the snapshot and the final adopt.
        """
        with self._lock:
            if self._refit_in_flight:
                return None
            self._refit_in_flight = True
            self._refit_generation += 1
            generation = self._refit_generation
            self.refits_triggered += 1
            # Snapshot counters and sketch atomically vs ingest: every
            # point at or before this moment is in the snapshot, every
            # later point stays in the exact buffer across the swap.
            n_snapshot = self.model.n_total
            buffered_at_snapshot = self.model.n_buffered
            snapshot = self.sketch.training_sample(
                self.settings.refit_sample_cap, self._rng
            )
        record_refit("triggered")
        log.info(
            "refit generation %d triggered: %d sketch rows for %d stream points",
            generation, snapshot.shape[0], n_snapshot,
        )
        try:
            policy = SupervisionPolicy(
                timeout=self.settings.refit_deadline,
                max_retries=self.settings.refit_retries,
                backoff=self.settings.refit_backoff,
            )
            out_path = self.artifact_dir / f"model-gen-{generation:04d}.tkdc"
            outcome = run_refit(
                snapshot, self.model.config, out_path, generation,
                policy=policy, plan=self.plan,
            )
            with self._lock:
                self._last_refit = outcome
            if not outcome.ok:
                with self._lock:
                    self.refits_failed += 1
                record_refit("failed", outcome.seconds)
                self.monitor.note_refit()  # min interval = retry backoff
                log.error(
                    "refit generation %d FAILED (%s); serving model untouched",
                    generation, outcome.error,
                )
                return outcome
            with self._lock:
                self.refits_succeeded += 1
            record_refit("succeeded", outcome.seconds)
            swap = self.reloader.reload(outcome.model_path)
            with self._lock:
                self._last_swap = swap
            if not swap.ok:
                with self._lock:
                    self.rollbacks += 1
                record_refit("rolled_back")
                self.monitor.note_refit()
                log.error(
                    "refit generation %d artifact REFUSED at %s stage (%s); "
                    "previous model keeps serving",
                    generation, swap.stage, swap.error,
                )
                return outcome
            candidate = getattr(self.reloader, "classifier", None)
            if candidate is None:  # reloader without a live handle
                candidate = prepare_classifier(load_model(outcome.model_path))
            with self._lock:
                keep = self.model.n_buffered - buffered_at_snapshot
                self.model.adopt(candidate, n_indexed=n_snapshot, keep_last=keep)
                self.swaps += 1
                self._drift_since = None
                self._publish_staleness_locked()
            record_refit("swapped")
            self.monitor.note_refit()
            log.info(
                "refit generation %d swapped in (threshold=%.6g, kept %d "
                "in-flight points buffered)",
                generation, outcome.threshold, keep,
            )
            return outcome
        finally:
            with self._lock:
                self._refit_in_flight = False

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background drift-check thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._monitor_loop, name="tkdc-drift-monitor", daemon=True
            )
            self._thread.start()

    def stop(self, join: bool = True) -> None:
        """Signal the loop to stop; optionally wait for it."""
        self._stop.set()
        thread = self._thread
        if thread is not None and join:
            # A refit may be mid-flight; its attempts are deadline-bounded.
            thread.join(timeout=self.settings.staleness_bound + 5.0)
        with self._lock:
            self._thread = None

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.settings.check_interval):
            try:
                self.check_drift_once()
            except Exception:  # noqa: BLE001 - the loop must never die
                with self._lock:
                    self.monitor_errors += 1
                log.exception("drift check failed; serving unaffected")

    # ------------------------------------------------------------------
    # Accounting + status
    # ------------------------------------------------------------------

    @property
    def artifact_dir(self) -> Path:
        with self._lock:
            if self._artifact_dir is None:
                self._artifact_dir = Path(
                    tempfile.mkdtemp(prefix="tkdc-refit-")
                )
            self._artifact_dir.mkdir(parents=True, exist_ok=True)
            return self._artifact_dir

    def staleness_seconds(self) -> float:
        """Age of the oldest unresolved drift detection (0 = current)."""
        with self._lock:
            if self._drift_since is None:
                return 0.0
            return max(self._clock() - self._drift_since, 0.0)

    def _publish_staleness_locked(self) -> None:
        record_staleness(
            0.0 if self._drift_since is None
            else max(self._clock() - self._drift_since, 0.0)
        )

    def verify_accounting(self) -> dict:
        """Check the pipeline's conservation invariants (JSON-ready).

        - every ingested point is represented by the serving model:
          ``model.n_total == initial_n + ingested_total``;
        - the sketch saw exactly the ingested stream;
        - every triggered refit terminated (succeeded/failed) unless one
          is in flight right now;
        - every produced artifact was swapped or rolled back.
        """
        with self._lock:
            expected_total = self.initial_n + self.ingested_total
            model_total = self.model.n_total
            sketch_ingested = self.sketch.n_seen - self._sketch_base
            in_flight = self._refit_in_flight
            open_refits = self.refits_triggered - (
                self.refits_succeeded + self.refits_failed
            )
            pending_swaps = self.refits_succeeded - (self.swaps + self.rollbacks)
            refits_balanced = open_refits == 0 or (in_flight and open_refits == 1)
            swaps_balanced = pending_swaps == 0 or (in_flight and pending_swaps == 1)
            ok = (
                model_total == expected_total
                and sketch_ingested == self.ingested_total
                and refits_balanced
                and swaps_balanced
            )
            return {
                "ok": bool(ok),
                "expected_total": int(expected_total),
                "model_total": int(model_total),
                "ingested_total": int(self.ingested_total),
                "sketch_ingested": int(sketch_ingested),
                "refits_triggered": int(self.refits_triggered),
                "refits_succeeded": int(self.refits_succeeded),
                "refits_failed": int(self.refits_failed),
                "swaps": int(self.swaps),
                "rollbacks": int(self.rollbacks),
                "refit_in_flight": bool(in_flight),
            }

    def status(self) -> dict:
        """JSON-ready pipeline state for /statz and the CLI."""
        with self._lock:
            last_decision = (
                None if self._last_decision is None else self._last_decision.as_dict()
            )
            last_refit = (
                None if self._last_refit is None else self._last_refit.as_dict()
            )
            last_swap = None if self._last_swap is None else self._last_swap.as_dict()
            return {
                "generation": int(self.model.generation),
                "n_total": int(self.model.n_total),
                "n_buffered": int(self.model.n_buffered),
                "threshold": float(self.model.classifier.threshold.value),
                "ingested_total": int(self.ingested_total),
                "window_fill": len(self._window),
                "staleness_seconds": (
                    0.0 if self._drift_since is None
                    else max(self._clock() - self._drift_since, 0.0)
                ),
                "staleness_bound_seconds": self.settings.staleness_bound,
                "monitor_errors": int(self.monitor_errors),
                "sketch": self.sketch.snapshot(),
                "accounting": self.verify_accounting(),
                "last_decision": last_decision,
                "last_refit": last_refit,
                "last_swap": last_swap,
            }
