"""The streaming ingest → drift-refit → verified hot-swap pipeline.

Wires the streaming pieces into one production loop around a serving
:class:`~repro.core.incremental.IncrementalTKDC`:

- :meth:`StreamingPipeline.ingest` folds arriving points into the
  model's exact answer buffer (every inserted point affects the very
  next classification), the bounded mergeable
  :class:`~repro.streaming.sketch.StreamSketch` (refit training data for
  the whole stream), and a fresh-points window (drift evidence);
- a background thread periodically runs the
  :class:`~repro.streaming.monitor.DriftMonitor`'s order-statistic test
  of the served threshold; when drift is confirmed (hysteresis + min
  interval) it launches a crash-isolated refit
  (:func:`repro.streaming.refit.run_refit`) on a sketch snapshot;
- a produced artifact ships through the sha256-verified reload path — a
  :class:`~repro.serve.reload.ModelManager`, a fleet router, or the
  built-in :class:`LocalReloader` (same ``load → canary → swap``
  protocol) — and only a surviving candidate is adopted by the serving
  model, retaining exactly the points that arrived while the refit ran.

**Staleness accounting.** ``staleness_seconds()`` is the age of the
oldest unresolved drift detection; the pipeline's declared worst case
(:meth:`StreamSettings.staleness_bound`) is derived in
``docs/streaming.md`` from the check cadence, the hysteresis depth, and
the supervised refit deadline. **Accounting invariant**
(:meth:`verify_accounting`): every ingested point is represented —
``model.n_total == initial_n + ingested_total`` across any number of
swaps, every triggered refit terminates as succeeded or failed, and
every produced artifact is either swapped or rolled back.

A failed, poisoned, crashed, or corrupted refit never touches the
serving model: failure isolation is the subprocess boundary plus the
verified swap; "rollback" is the absence of the swap.
"""

from __future__ import annotations

import copy
import logging
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.classifier import TKDCClassifier
from repro.core.incremental import IncrementalTKDC
from repro.io.models import load_model, resolve_model_path
from repro.obs.metrics import (
    record_drift_check,
    record_ingest,
    record_refit,
    record_staleness,
    record_stream_recovery,
    record_wal_replay,
)
from repro.robustness.faults import DriftPlan
from repro.robustness.supervisor import SupervisionPolicy
from repro.serve.reload import ReloadResult, prepare_classifier, run_canary
from repro.streaming.monitor import DriftDecision, DriftMonitor
from repro.streaming.refit import RefitOutcome, run_refit
from repro.streaming.sketch import StreamSketch
from repro.streaming.wal import (
    FSYNC_POLICIES,
    RECORD_INGEST,
    RECORD_REFIT_TRIGGER,
    RECORD_SNAPSHOT,
    RECORD_SWAP_COMMIT,
    WalError,
    WriteAheadLog,
)

log = logging.getLogger("repro.streaming")


@dataclass(frozen=True)
class StreamSettings:
    """Knobs of the ingest → refit → swap loop (all validated).

    Attributes
    ----------
    drift_delta:
        Per-check false-trigger level of the order-statistic CI test.
    monitor_window:
        Fresh points per drift check (the CI's subsample size).
    hysteresis:
        Consecutive violating checks required to trigger a refit.
    check_interval:
        Seconds between background drift checks.
    min_refit_interval:
        Seconds after any refit before the next may trigger (also the
        retry backoff after a failed refit).
    refit_deadline / refit_retries / refit_backoff:
        The supervised refit's per-attempt deadline, bounded retries,
        and backoff (see :class:`~repro.robustness.supervisor.SupervisionPolicy`).
    refit_sample_cap:
        Maximum training rows materialized from the sketch per refit.
    sketch_capacity:
        Weighted points retained by the merge-reduce sketch.
    canary_queries / probe_seed:
        The standalone swap verifier's canary workload (ignored when an
        external reloader is attached — it brings its own).
    swap_grace:
        Seconds budgeted for artifact verification + canary + adopt in
        the declared staleness bound.
    fsync_policy / fsync_interval:
        When WAL appends are forced to stable storage (``always`` /
        ``interval`` / ``off``; see :mod:`repro.streaming.wal`). Only
        consulted when a WAL is attached.
    wal_segment_bytes:
        WAL segment rotation size.
    wal_compact_bytes:
        Write a snapshot + truncate once the WAL exceeds this size even
        without a swap (keeps a swap-free ingest-only log bounded, e.g.
        the fleet's ingest owner which never runs the drift loop).
    adaptive_window:
        Size each drift check's window from the observed check cadence
        (EWMA of points per check gap, clamped to
        ``[monitor_window_min, monitor_window]``) instead of the fixed
        ``monitor_window`` — detection latency stays flat as
        ``check_interval`` shrinks.
    monitor_window_min:
        Floor of the adaptive window (>= 8, the CI's minimum sample).
        Defaults to ``min(64, monitor_window)``.
    """

    drift_delta: float = 0.01
    monitor_window: int = 256
    hysteresis: int = 2
    check_interval: float = 0.25
    min_refit_interval: float = 1.0
    refit_deadline: float = 120.0
    refit_retries: int = 1
    refit_backoff: float = 0.05
    refit_sample_cap: int = 20000
    sketch_capacity: int = 4096
    canary_queries: int = 32
    probe_seed: int = 7
    swap_grace: float = 5.0
    fsync_policy: str = "always"
    fsync_interval: float = 0.05
    wal_segment_bytes: int = 4 << 20
    wal_compact_bytes: int = 64 << 20
    adaptive_window: bool = False
    monitor_window_min: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.drift_delta < 1.0:
            raise ValueError(f"drift_delta must be in (0, 1), got {self.drift_delta}")
        if self.monitor_window < 8:
            raise ValueError(f"monitor_window must be >= 8, got {self.monitor_window}")
        if self.hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {self.hysteresis}")
        for name in (
            "check_interval", "refit_deadline", "swap_grace",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        for name in ("min_refit_interval", "refit_backoff"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.refit_retries < 0:
            raise ValueError(f"refit_retries must be >= 0, got {self.refit_retries}")
        if self.refit_sample_cap < 2:
            raise ValueError(
                f"refit_sample_cap must be >= 2, got {self.refit_sample_cap}"
            )
        if self.sketch_capacity < 2:
            raise ValueError(
                f"sketch_capacity must be >= 2, got {self.sketch_capacity}"
            )
        if self.canary_queries < 1:
            raise ValueError(f"canary_queries must be >= 1, got {self.canary_queries}")
        if self.fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, "
                f"got {self.fsync_policy!r}"
            )
        if self.fsync_interval < 0:
            raise ValueError(
                f"fsync_interval must be >= 0, got {self.fsync_interval}"
            )
        if self.wal_segment_bytes < 1024:
            raise ValueError(
                f"wal_segment_bytes must be >= 1024, got {self.wal_segment_bytes}"
            )
        if self.wal_compact_bytes < self.wal_segment_bytes:
            raise ValueError(
                "wal_compact_bytes must be >= wal_segment_bytes, got "
                f"{self.wal_compact_bytes} < {self.wal_segment_bytes}"
            )
        if self.monitor_window_min is None:
            object.__setattr__(
                self, "monitor_window_min", min(64, self.monitor_window)
            )
        if not 8 <= self.monitor_window_min <= self.monitor_window:
            raise ValueError(
                "monitor_window_min must be in [8, monitor_window], got "
                f"{self.monitor_window_min} (monitor_window={self.monitor_window})"
            )

    @property
    def staleness_bound(self) -> float:
        """Declared worst-case seconds from drift onset to swap.

        Detection: the violating window must survive ``hysteresis``
        checks, plus one check interval of scheduling slack. Refit:
        every attempt is deadline-bounded, plus the retry backoffs.
        Swap: ``swap_grace``. Derivation in ``docs/streaming.md``.
        """
        detection = (self.hysteresis + 1) * self.check_interval
        backoffs = sum(
            self.refit_backoff * (2 ** max(attempt - 1, 0))
            for attempt in range(1, self.refit_retries + 1)
        )
        refit = (self.refit_retries + 1) * self.refit_deadline + backoffs
        return detection + refit + self.swap_grace


class LocalReloader:
    """Verified swap for pipelines with no daemon attached.

    The same three-stage protocol as
    :class:`~repro.serve.reload.ModelManager.reload` — sha256-verified
    load, canary classification, swap-by-assignment — minus the serving
    calibration. Anything with ``reload(path) -> ReloadResult`` and a
    ``classifier`` attribute duck-types as the pipeline's swap target.
    """

    def __init__(self, canary_queries: int = 32, probe_seed: int = 7) -> None:
        self.canary_queries = canary_queries
        self.probe_seed = probe_seed
        self.classifier: TKDCClassifier | None = None

    def reload(self, path: Path | str) -> ReloadResult:
        try:
            candidate_path = resolve_model_path(path)
            candidate = load_model(candidate_path)
        except Exception as exc:
            return ReloadResult(
                ok=False, stage="load", model_path=str(path),
                error=f"{type(exc).__name__}: {exc}",
            )
        candidate = prepare_classifier(candidate)
        try:
            run_canary(candidate, self.canary_queries, seed=self.probe_seed)
        except Exception as exc:
            return ReloadResult(
                ok=False, stage="canary", model_path=str(candidate_path),
                error=f"{type(exc).__name__}: {exc}",
            )
        self.classifier = candidate
        return ReloadResult(
            ok=True, stage="swapped", model_path=str(candidate_path),
            threshold=candidate.threshold.value,
        )


class StreamingPipeline:
    """Owns the serving model, the sketch, the monitor, and the loop.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.incremental.IncrementalTKDC`. Its
        automatic synchronous refits are disabled — the pipeline owns
        refits from here on.
    settings:
        :class:`StreamSettings` (defaults are production-shaped; tests
        shrink them).
    reloader:
        The verified swap target: anything with ``reload(path) ->
        ReloadResult``. Defaults to a :class:`LocalReloader`; attach a
        :class:`~repro.serve.reload.ModelManager` (or fleet router) to
        make the daemon serve each new generation too.
    artifact_dir:
        Where refit artifacts are written (a temp dir by default; under
        ``wal_dir/artifacts`` when a WAL is attached, so swap-committed
        artifacts survive a restart and recovery can reload them).
    plan:
        Optional :class:`~repro.robustness.faults.DriftPlan` consulted
        by refit subprocesses (fault injection for tests/benchmarks).
    wal / wal_dir:
        Attach a :class:`~repro.streaming.wal.WriteAheadLog` (or build
        one in ``wal_dir`` from the settings' fsync knobs). With a WAL
        attached every accepted ingest batch is appended — and, under
        ``fsync_policy="always"``, fsynced — *before* it is applied in
        memory, so the acknowledgement implies crash durability. Use
        :meth:`recover` to rebuild the pipeline from an existing WAL.
    clock:
        Injectable monotonic clock.
    """

    #: Out-of-order tolerance for exact-duplicate ingest detection: at
    #: most this many applied-but-non-contiguous seqs are remembered
    #: per source. A seq that never arrives (its batch was refused
    #: before reaching the WAL) would pin the watermark forever; once
    #: the window overflows, the oldest gap is declared permanently
    #: failed and collapsed — by then the router's single same-seq
    #: retry has long since happened or never will.
    REORDER_WINDOW = 4096

    def __init__(
        self,
        model: IncrementalTKDC,
        settings: StreamSettings | None = None,
        reloader=None,
        artifact_dir: Path | str | None = None,
        plan: DriftPlan | None = None,
        seed_data: np.ndarray | None = None,
        wal: WriteAheadLog | None = None,
        wal_dir: Path | str | None = None,
        clock=time.monotonic,
    ) -> None:
        model.classifier  # raises if unfitted
        model.auto_refit = False
        self.model = model
        self.settings = settings or StreamSettings()
        self.reloader = (
            reloader
            if reloader is not None
            else LocalReloader(self.settings.canary_queries, self.settings.probe_seed)
        )
        if wal is None and wal_dir is not None:
            wal = WriteAheadLog(
                wal_dir,
                fsync_policy=self.settings.fsync_policy,
                fsync_interval=self.settings.fsync_interval,
                segment_bytes=self.settings.wal_segment_bytes,
            )
        self.wal = wal
        if artifact_dir is None and wal is not None:
            artifact_dir = wal.directory / "artifacts"
        self._artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self.plan = plan
        self._clock = clock
        self._rng = np.random.default_rng(self.settings.probe_seed)
        self._lock = threading.RLock()
        self.sketch = StreamSketch(self.settings.sketch_capacity)
        if seed_data is not None:
            self.sketch.append(seed_data)
        self.monitor = DriftMonitor(
            p=model.config.p,
            delta=self.settings.drift_delta,
            window=self.settings.monitor_window,
            hysteresis=self.settings.hysteresis,
            min_refit_interval=self.settings.min_refit_interval,
            clock=clock,
        )
        self._window: deque[np.ndarray] = deque(maxlen=self.settings.monitor_window)
        self.initial_n = model.n_total
        self._sketch_base = self.sketch.n_seen
        self.ingested_total = 0
        self.duplicates_skipped = 0
        self.refits_triggered = 0
        self.refits_succeeded = 0
        self.refits_failed = 0
        self.swaps = 0
        self.rollbacks = 0
        self.monitor_errors = 0
        self._refit_generation = 0
        self._refit_in_flight = False
        self._drift_since: float | None = None
        self._last_decision: DriftDecision | None = None
        self._last_refit: RefitOutcome | None = None
        self._last_swap: ReloadResult | None = None
        #: Per-source contiguous watermarks for idempotent ingest (the
        #: fleet router stamps each forwarded batch with (epoch, seq)).
        #: A watermark only advances through consecutive seqs; applied
        #: seqs above it wait in :attr:`_ingest_pending_seqs`, so a
        #: lower-seq batch that merely *arrives* late (two concurrent
        #: forwards racing) is never mistaken for a duplicate.
        self._ingest_watermarks: dict[str, int] = {}
        #: Applied-but-not-yet-contiguous seqs per source (the
        #: out-of-order window above each watermark).
        self._ingest_pending_seqs: dict[str, set[int]] = {}
        #: Artifact path of the currently adopted classifier, when it
        #: came from a swapped refit (None for the initial model — the
        #: recovery path falls back to a caller-provided classifier).
        self._classifier_path: str | None = None
        #: Populated by :meth:`recover`; surfaced in status()/"/statz".
        self.recovery: dict | None = None
        #: Adaptive-window cadence estimate (EWMA of points per check gap).
        self._last_check_at: float | None = None
        self._ingested_at_last_check = 0
        self._points_per_gap_ewma: float | None = None
        self._check_gap_ewma: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if self.wal is not None and self.wal.empty:
            # A fresh WAL gets a base snapshot immediately: recovery
            # always finds a checkpoint to replay from.
            self._write_wal_snapshot()

    @classmethod
    def from_data(
        cls,
        data: np.ndarray,
        config=None,
        settings: StreamSettings | None = None,
        **kwargs,
    ) -> "StreamingPipeline":
        """Fit the initial model on ``data`` and seed the sketch with it."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        model = IncrementalTKDC(config, auto_refit=False).fit(data)
        return cls(model, settings=settings, seed_data=data, **kwargs)

    @classmethod
    def from_classifier(
        cls,
        classifier: TKDCClassifier,
        settings: StreamSettings | None = None,
        **kwargs,
    ) -> "StreamingPipeline":
        """Wrap an already-loaded model (daemon boot path: raw data is
        unavailable, so the sketch starts empty and refits train on the
        ingested stream only)."""
        population = (
            classifier.coreset_.n
            if classifier.coreset_ is not None
            else classifier.tree.size
        )
        model = IncrementalTKDC(classifier.config, auto_refit=False)
        model.adopt(classifier, n_indexed=int(population))
        return cls(model, settings=settings, **kwargs)

    @classmethod
    def recover(
        cls,
        wal_dir: Path | str,
        settings: StreamSettings | None = None,
        fallback_classifier: TKDCClassifier | None = None,
        reloader=None,
        artifact_dir: Path | str | None = None,
        plan: DriftPlan | None = None,
        clock=time.monotonic,
    ) -> "StreamingPipeline":
        """Rebuild a pipeline from its WAL after a crash or restart.

        Opens the WAL (validating checksums; a torn final record is
        truncated and counted, mid-log corruption raises
        :class:`~repro.streaming.wal.WalCorruptionError`), restores the
        newest snapshot's full state — exact buffer, sketch,
        conservation counters, idempotency watermarks, accounting
        generation — then replays every later record: acknowledged
        ingest batches are re-applied (exact duplicates skipped),
        committed swaps re-adopt their recorded artifact, and a refit
        trigger with no matching commit is accounted as failed (the
        refit died with the process; the monitor will re-detect).

        ``fallback_classifier`` serves two cases: a snapshot taken
        before any swap records no artifact path (the initial model
        lives outside the WAL — pass the daemon's ``--model``), and a
        recorded artifact that no longer loads. Recovery statistics land
        in :attr:`recovery` (and ``/statz``'s ``streaming.recovery``).

        A fresh snapshot is written at the end, so the next recovery
        starts from the recovered state rather than re-replaying.
        """
        settings = settings or StreamSettings()
        started = time.perf_counter()
        wal = WriteAheadLog(
            wal_dir,
            fsync_policy=settings.fsync_policy,
            fsync_interval=settings.fsync_interval,
            segment_bytes=settings.wal_segment_bytes,
        )
        try:
            return cls._recover_from(
                wal, settings, fallback_classifier, reloader,
                artifact_dir, plan, clock, started,
            )
        except BaseException:
            wal.close()
            raise

    @classmethod
    def _recover_from(
        cls, wal, settings, fallback_classifier, reloader,
        artifact_dir, plan, clock, started,
    ) -> "StreamingPipeline":
        records = iter(wal.replay())
        state: dict | None = None
        first = next(records, None)
        if first is not None and first.type == RECORD_SNAPSHOT:
            state = first.snapshot_payload()
        elif first is not None:
            # No checkpoint survived (crash before the base snapshot);
            # everything in the log replays over the fallback model.
            records = iter([first, *records])

        used_fallback = False
        if state is not None:
            classifier = None
            path = state.get("classifier_path")
            if path is not None:
                try:
                    classifier = prepare_classifier(
                        load_model(resolve_model_path(path))
                    )
                except Exception as exc:  # noqa: BLE001 - fail soft to fallback
                    log.warning(
                        "recovery: snapshot classifier %s failed to load "
                        "(%s: %s); falling back to the provided model",
                        path, type(exc).__name__, exc,
                    )
            if classifier is None:
                if fallback_classifier is None:
                    raise WalError(
                        "WAL snapshot has no loadable classifier "
                        f"(classifier_path={path!r}) and no "
                        "fallback_classifier was provided"
                    )
                classifier = fallback_classifier
                used_fallback = True
            model = IncrementalTKDC(classifier.config, auto_refit=False)
            model.adopt(
                classifier,
                n_indexed=int(state["n_indexed"]),
                generation=int(state["model_generation"]),
            )
        else:
            if fallback_classifier is None:
                raise WalError(
                    f"WAL at {wal.directory} holds no snapshot and no "
                    "fallback_classifier was provided"
                )
            classifier = fallback_classifier
            used_fallback = True
            population = (
                classifier.coreset_.n
                if classifier.coreset_ is not None
                else classifier.tree.size
            )
            model = IncrementalTKDC(classifier.config, auto_refit=False)
            model.adopt(classifier, n_indexed=int(population))

        pipeline = cls(
            model, settings=settings, reloader=reloader,
            artifact_dir=artifact_dir, plan=plan, wal=wal, clock=clock,
        )
        if state is not None:
            pipeline.sketch = StreamSketch.restore(state["sketch"])
            pipeline._sketch_base = int(state["sketch_base"])
            pipeline.initial_n = int(state["initial_n"])
            pipeline.ingested_total = int(state["ingested_total"])
            pipeline.duplicates_skipped = int(state["duplicates_skipped"])
            pipeline.refits_triggered = int(state["refits_triggered"])
            pipeline.refits_succeeded = int(state["refits_succeeded"])
            pipeline.refits_failed = int(state["refits_failed"])
            pipeline.swaps = int(state["swaps"])
            pipeline.rollbacks = int(state["rollbacks"])
            pipeline._refit_generation = int(state["refit_generation"])
            pipeline._ingest_watermarks = dict(state["watermarks"])
            pipeline._ingest_pending_seqs = {
                s: set(p) for s, p in state.get("pending_seqs", {}).items()
            }
            pipeline._classifier_path = state.get("classifier_path")
            if state["buffer"] is not None:
                pipeline.model.insert(state["buffer"])
            if state["window"] is not None:
                pipeline._window.extend(state["window"])

        counts: dict[str, int] = {}
        points_replayed = 0
        skipped_swaps = 0
        pending_triggers: dict[int, dict] = {}
        for record in records:
            counts[record.type_name] = counts.get(record.type_name, 0) + 1
            if record.type == RECORD_INGEST:
                points, meta = record.ingest_payload()
                source, seq = meta.get("source"), meta.get("seq")
                if source is not None and seq is not None:
                    seq = int(seq)
                    if seq >= 1:
                        if pipeline._seq_is_duplicate_locked(source, seq):
                            pipeline.duplicates_skipped += 1
                            continue
                        pipeline._mark_seq_applied_locked(source, seq)
                pipeline.model.insert(points)
                pipeline.sketch.append(points)
                pipeline._window.extend(points)
                pipeline.ingested_total += points.shape[0]
                points_replayed += points.shape[0]
            elif record.type == RECORD_REFIT_TRIGGER:
                payload = record.marker_payload()
                pipeline.refits_triggered += 1
                pending_triggers[int(payload["generation"])] = payload
            elif record.type == RECORD_SWAP_COMMIT:
                payload = record.marker_payload()
                generation = int(payload["generation"])
                if generation in pending_triggers:
                    del pending_triggers[generation]
                else:  # trigger compacted away; count the refit anyway
                    pipeline.refits_triggered += 1
                pipeline.refits_succeeded += 1
                pipeline._refit_generation = max(
                    pipeline._refit_generation, generation
                )
                candidate = None
                try:
                    candidate = prepare_classifier(
                        load_model(resolve_model_path(payload["artifact"]))
                    )
                except Exception as exc:  # noqa: BLE001 - fail soft
                    log.warning(
                        "recovery: committed artifact %s no longer loads "
                        "(%s: %s); skipping the swap — its points stay in "
                        "the exact buffer, conservation holds",
                        payload["artifact"], type(exc).__name__, exc,
                    )
                if candidate is None:
                    pipeline.rollbacks += 1
                    skipped_swaps += 1
                    continue
                # keep = points not represented by the committed model;
                # derived from totals so that conservation survives an
                # earlier skipped swap too.
                keep = pipeline.model.n_total - int(payload["n_indexed"])
                keep = max(0, min(keep, pipeline.model.n_buffered))
                pipeline.model.adopt(
                    candidate,
                    n_indexed=int(payload["n_indexed"]),
                    keep_last=keep,
                    generation=payload.get("model_generation"),
                )
                pipeline.swaps += 1
                pipeline._classifier_path = payload["artifact"]
        # A trigger whose commit never landed: the refit was in flight
        # when the process died — it failed.
        unresolved = len(pending_triggers)
        pipeline.refits_failed += unresolved
        if pending_triggers:
            pipeline._refit_generation = max(
                pipeline._refit_generation, *pending_triggers
            )

        pipeline.recovery = {
            "recovered": state is not None,
            "records_replayed": int(sum(counts.values())),
            "replayed_by_type": counts,
            "points_replayed": int(points_replayed),
            "recovered_torn_records": int(wal.recovered_torn_records),
            "skipped_swaps": int(skipped_swaps),
            "unresolved_refits": int(unresolved),
            "used_fallback_classifier": bool(used_fallback),
            "seconds": float(time.perf_counter() - started),
        }
        record_wal_replay(counts, wal.recovered_torn_records)
        if state is not None or counts:
            # A first boot over a brand-new empty WAL restores nothing;
            # only count runs that actually carried state forward.
            record_stream_recovery()
        pipeline._write_wal_snapshot()
        log.info(
            "recovered streaming pipeline from %s: %d records (%d points) "
            "replayed in %.3fs, %d torn, %d skipped swaps, %d unresolved "
            "refits",
            wal.directory, pipeline.recovery["records_replayed"],
            points_replayed, pipeline.recovery["seconds"],
            wal.recovered_torn_records, skipped_swaps, unresolved,
        )
        return pipeline

    # ------------------------------------------------------------------
    # Ingest + serve
    # ------------------------------------------------------------------

    def ingest(self, points: np.ndarray) -> int:
        """Fold new points into buffer, sketch, and drift window."""
        return int(self.ingest_batch(points)["accepted"])

    def _seq_is_duplicate_locked(self, source: str, seq: int) -> bool:
        """Exact-duplicate check for one idempotency key (lock held).

        A batch is a duplicate only if that *exact* seq was already
        applied: at or below the source's contiguous watermark, or in
        the out-of-order window above it. Concurrent forwards from the
        router can reach this worker out of seq order, so a lower seq
        arriving after a higher one is new data, not a retry.
        """
        if seq <= self._ingest_watermarks.get(source, 0):
            return True
        return seq in self._ingest_pending_seqs.get(source, ())

    def _mark_seq_applied_locked(self, source: str, seq: int) -> None:
        """Record an applied seq; advance the watermark only through
        consecutive values (lock held)."""
        pending = self._ingest_pending_seqs.setdefault(source, set())
        pending.add(seq)
        watermark = self._ingest_watermarks.get(source, 0)
        while watermark + 1 in pending:
            watermark += 1
            pending.discard(watermark)
        while len(pending) > self.REORDER_WINDOW:
            # Window overflow: the lowest gap's batch is never coming
            # (see REORDER_WINDOW); jump the watermark over it.
            watermark = min(pending)
            pending.discard(watermark)
            while watermark + 1 in pending:
                watermark += 1
                pending.discard(watermark)
        self._ingest_watermarks[source] = watermark
        if not pending:
            del self._ingest_pending_seqs[source]

    def ingest_batch(
        self,
        points: np.ndarray,
        source: str | None = None,
        source_seq: int | None = None,
    ) -> dict:
        """Durable, idempotent ingest of one batch.

        With a WAL attached the batch is appended (and, per the fsync
        policy, made durable) *before* it touches the in-memory state —
        returning from this method is the acknowledgement contract.

        ``(source, source_seq)`` is an optional idempotency key with
        *exact-duplicate* semantics: a batch is refused only when that
        precise seq was already applied — at or below the source's
        contiguous watermark, or in the bounded out-of-order window
        above it (:attr:`REORDER_WINDOW`). The fleet router retries a
        forwarded batch with the same key after an owner failure, so a
        retry that raced a successful append cannot double-ingest; and
        because concurrent forwards can arrive here out of seq order, a
        late lower-seq batch is applied, not dropped. Sequence numbers
        are assigned per source from 1 upward, each used exactly once
        (``source_seq`` must be >= 1).
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        rows = int(points.shape[0])
        if rows == 0:
            return {"accepted": 0, "duplicate": False}
        dim = self.model.classifier.kernel.dim
        if points.ndim != 2 or points.shape[1] != dim:
            raise ValueError(
                f"ingest dimensionality {points.shape[-1]} does not match "
                f"the model dimensionality {dim}"
            )
        keyed = source is not None and source_seq is not None
        if keyed:
            source_seq = int(source_seq)
            if source_seq < 1:
                raise ValueError(
                    f"source_seq must be a positive integer, got {source_seq}"
                )
        with self._lock:
            if keyed and self._seq_is_duplicate_locked(source, source_seq):
                self.duplicates_skipped += 1
                return {"accepted": 0, "duplicate": True}
            if self.wal is not None:
                meta = (
                    {"source": source, "seq": source_seq} if keyed else {}
                )
                self.wal.append_ingest(points, meta)
            if keyed:
                self._mark_seq_applied_locked(source, source_seq)
            self.model.insert(points)
            self.sketch.append(points)
            self._window.extend(points)
            self.ingested_total += rows
            compact_due = (
                self.wal is not None
                and self.wal.size_bytes() > self.settings.wal_compact_bytes
            )
        record_ingest(rows)
        if compact_due:
            # Swap-free ingest (e.g. the fleet's ingest owner) would
            # otherwise grow the log without bound; checkpoint + truncate.
            self._write_wal_snapshot()
        return {"accepted": rows, "duplicate": False}

    # ------------------------------------------------------------------
    # WAL checkpointing
    # ------------------------------------------------------------------

    def _wal_state_locked(self) -> dict:
        """Full pipeline state for a WAL snapshot (caller holds the lock).

        The adopted classifier itself is NOT pickled — snapshots record
        its artifact path (swapped refits live under the durable
        ``artifact_dir``); the initial, never-swapped model has no path
        and :meth:`recover` falls back to a caller-provided classifier.
        """
        rows = self.model.buffer_view
        return {
            "version": 1,
            "model_generation": int(self.model.generation),
            "n_indexed": int(self.model.n_indexed),
            "buffer": rows.copy() if rows.shape[0] else None,
            "classifier_path": self._classifier_path,
            "initial_n": int(self.initial_n),
            "ingested_total": int(self.ingested_total),
            "duplicates_skipped": int(self.duplicates_skipped),
            "refits_triggered": int(self.refits_triggered),
            "refits_succeeded": int(self.refits_succeeded),
            "refits_failed": int(self.refits_failed),
            "swaps": int(self.swaps),
            "rollbacks": int(self.rollbacks),
            "refit_generation": int(self._refit_generation),
            "sketch": self.sketch.state(),
            "sketch_base": int(self._sketch_base),
            "watermarks": dict(self._ingest_watermarks),
            "pending_seqs": {
                s: set(p) for s, p in self._ingest_pending_seqs.items()
            },
            "window": np.array(self._window) if self._window else None,
        }

    def _write_wal_snapshot(self) -> None:
        """Checkpoint state into the WAL and truncate replayed history.

        Holds the pipeline lock across capture *and* truncation, so a
        concurrent acknowledged append can never fall between the
        snapshot's state and the records it deletes.
        """
        wal = self.wal
        if wal is None or wal.closed:
            return
        with self._lock:
            wal.write_snapshot(self._wal_state_locked())

    def classify(self, queries: np.ndarray) -> np.ndarray:
        """Serve labels including every ingested point (exact buffer)."""
        with self._lock:
            return self.model.classify(queries)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        with self._lock:
            return self.model.predict(queries)

    def serving_view(self) -> IncrementalTKDC:
        """A consistent snapshot of the served model for lock-free serving.

        Shallow-copies the incremental model and copies only the live
        buffer rows, so the daemon can run a budgeted classify *outside*
        the pipeline lock without racing a concurrent ingest append or
        an :meth:`IncrementalTKDC.adopt` sliding the buffer in place.
        The classifier reference, counts, and buffer are captured
        atomically, so the shifted-threshold algebra stays coherent
        across a mid-request swap.
        """
        with self._lock:
            view = copy.copy(self.model)
            rows = self.model.buffer_view
            view._buffer_array = rows.copy() if rows.shape[0] else None
            view._buffer_count = int(rows.shape[0])
        return view

    # ------------------------------------------------------------------
    # Drift check + refit + swap
    # ------------------------------------------------------------------

    def check_drift_once(self) -> DriftDecision:
        """One synchronous monitor pass; refits and swaps if it fires.

        The background loop calls this on its cadence; tests call it
        directly for deterministic control flow.
        """
        with self._lock:
            self._update_cadence_locked()
            effective = self._effective_window_locked()
            if len(self._window) < effective:
                decision = DriftDecision(
                    checked=False, drifted=False, fired=False,
                    reason="window_filling", window=len(self._window),
                )
                self._last_decision = decision
                record_drift_check("skipped")
                self._publish_staleness_locked()
                return decision
            window = np.array(self._window)
            classifier = self.model.classifier
        # Density estimation runs outside the pipeline lock: it only
        # reads the classifier snapshot (a swap replaces the reference,
        # never mutates the old object's index).
        densities = classifier.estimate_density(window)
        threshold = classifier.threshold.value
        tolerance = classifier.config.epsilon * threshold
        decision = self.monitor.observe(
            densities, threshold, tolerance=tolerance,
            window=effective if self.settings.adaptive_window else None,
        )
        with self._lock:
            self._last_decision = decision
            if decision.drifted and self._drift_since is None:
                self._drift_since = self._clock()
            elif decision.checked and not decision.drifted:
                self._drift_since = None
            record_drift_check(
                "fired" if decision.fired
                else "drifted" if decision.drifted
                else "stable"
            )
            self._publish_staleness_locked()
        if decision.fired:
            self.refit_and_swap()
        return decision

    def _update_cadence_locked(self) -> None:
        """Fold one observed check gap into the cadence EWMAs."""
        now = self._clock()
        if self._last_check_at is not None:
            alpha = 0.2
            gap = max(now - self._last_check_at, 0.0)
            points = self.ingested_total - self._ingested_at_last_check
            self._check_gap_ewma = (
                gap if self._check_gap_ewma is None
                else (1.0 - alpha) * self._check_gap_ewma + alpha * gap
            )
            self._points_per_gap_ewma = (
                float(points) if self._points_per_gap_ewma is None
                else (1.0 - alpha) * self._points_per_gap_ewma + alpha * points
            )
        self._last_check_at = now
        self._ingested_at_last_check = self.ingested_total

    def _effective_window_locked(self) -> int:
        """The drift window this check should use.

        Fixed ``monitor_window`` unless ``adaptive_window`` is on, in
        which case the window tracks the points actually arriving per
        check gap (EWMA), clamped to ``[monitor_window_min,
        monitor_window]`` — a fast check cadence then checks small fresh
        windows instead of re-testing a mostly-stale large one.
        """
        settings = self.settings
        if not settings.adaptive_window or self._points_per_gap_ewma is None:
            return settings.monitor_window
        return int(min(
            settings.monitor_window,
            max(settings.monitor_window_min, round(self._points_per_gap_ewma)),
        ))

    def refit_and_swap(self) -> RefitOutcome | None:
        """Run one supervised refit and, if it survives, the verified swap.

        Blocking (the caller is the background thread); classification
        and ingest stay live throughout — the pipeline lock is held only
        around the snapshot and the final adopt.
        """
        with self._lock:
            if self._refit_in_flight:
                return None
            self._refit_in_flight = True
            self._refit_generation += 1
            generation = self._refit_generation
            self.refits_triggered += 1
            # Snapshot counters and sketch atomically vs ingest: every
            # point at or before this moment is in the snapshot, every
            # later point stays in the exact buffer across the swap.
            n_snapshot = self.model.n_total
            buffered_at_snapshot = self.model.n_buffered
            snapshot = self.sketch.training_sample(
                self.settings.refit_sample_cap, self._rng
            )
            sketch_info = self.sketch.snapshot()
            if self.wal is not None and not self.wal.closed:
                self.wal.append_marker(RECORD_REFIT_TRIGGER, {
                    "generation": generation,
                    "n_snapshot": int(n_snapshot),
                    "buffered_at_snapshot": int(buffered_at_snapshot),
                })
        record_refit("triggered")
        log.info(
            "refit generation %d triggered: %d sketch rows for %d stream points",
            generation, snapshot.shape[0], n_snapshot,
        )
        try:
            policy = SupervisionPolicy(
                timeout=self.settings.refit_deadline,
                max_retries=self.settings.refit_retries,
                backoff=self.settings.refit_backoff,
            )
            out_path = self.artifact_dir / f"model-gen-{generation:04d}.tkdc"
            outcome = run_refit(
                snapshot, self.model.config, out_path, generation,
                policy=policy, plan=self.plan,
                sketch_displacement=sketch_info["raw_displacement"],
                sketch_n=sketch_info["n_seen"],
            )
            with self._lock:
                self._last_refit = outcome
            if not outcome.ok:
                with self._lock:
                    self.refits_failed += 1
                record_refit("failed", outcome.seconds)
                self.monitor.note_refit()  # min interval = retry backoff
                log.error(
                    "refit generation %d FAILED (%s); serving model untouched",
                    generation, outcome.error,
                )
                return outcome
            with self._lock:
                self.refits_succeeded += 1
            record_refit("succeeded", outcome.seconds)
            swap = self.reloader.reload(outcome.model_path)
            with self._lock:
                self._last_swap = swap
            if not swap.ok:
                with self._lock:
                    self.rollbacks += 1
                record_refit("rolled_back")
                self.monitor.note_refit()
                log.error(
                    "refit generation %d artifact REFUSED at %s stage (%s); "
                    "previous model keeps serving",
                    generation, swap.stage, swap.error,
                )
                return outcome
            candidate = getattr(self.reloader, "classifier", None)
            if candidate is None:  # reloader without a live handle
                candidate = prepare_classifier(load_model(outcome.model_path))
            with self._lock:
                keep = self.model.n_buffered - buffered_at_snapshot
                self.model.adopt(candidate, n_indexed=n_snapshot, keep_last=keep)
                self.swaps += 1
                self._drift_since = None
                self._classifier_path = str(outcome.model_path)
                if self.wal is not None and not self.wal.closed:
                    self.wal.append_marker(RECORD_SWAP_COMMIT, {
                        "generation": generation,
                        "model_generation": int(self.model.generation),
                        "n_indexed": int(n_snapshot),
                        "buffered_at_snapshot": int(buffered_at_snapshot),
                        "artifact": str(outcome.model_path),
                        "threshold": float(outcome.threshold),
                        "eta": float(outcome.eta),
                        "eta_applied": float(outcome.eta_applied),
                    })
                self._publish_staleness_locked()
            # Compaction rides every successful swap: the snapshot
            # embodies the new generation, so the replayed-history
            # prefix (including this swap's markers) is truncated.
            self._write_wal_snapshot()
            record_refit("swapped")
            self.monitor.note_refit()
            log.info(
                "refit generation %d swapped in (threshold=%.6g, kept %d "
                "in-flight points buffered)",
                generation, outcome.threshold, keep,
            )
            return outcome
        finally:
            with self._lock:
                self._refit_in_flight = False

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background drift-check thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._monitor_loop, name="tkdc-drift-monitor", daemon=True
            )
            self._thread.start()

    def stop(self, join: bool = True) -> None:
        """Signal the loop to stop; optionally wait for it.

        With a WAL attached, a final snapshot is written and the log is
        closed (fsync + lock release) — a clean shutdown recovers with
        zero records to replay.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None and join:
            # A refit may be mid-flight; its attempts are deadline-bounded.
            thread.join(timeout=self.settings.staleness_bound + 5.0)
        with self._lock:
            self._thread = None
        if self.wal is not None and not self.wal.closed:
            self._write_wal_snapshot()
            self.wal.close()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.settings.check_interval):
            try:
                self.check_drift_once()
            except Exception:  # noqa: BLE001 - the loop must never die
                with self._lock:
                    self.monitor_errors += 1
                log.exception("drift check failed; serving unaffected")

    # ------------------------------------------------------------------
    # Accounting + status
    # ------------------------------------------------------------------

    @property
    def artifact_dir(self) -> Path:
        with self._lock:
            if self._artifact_dir is None:
                self._artifact_dir = Path(
                    tempfile.mkdtemp(prefix="tkdc-refit-")
                )
            self._artifact_dir.mkdir(parents=True, exist_ok=True)
            return self._artifact_dir

    def staleness_seconds(self) -> float:
        """Age of the oldest unresolved drift detection (0 = current)."""
        with self._lock:
            if self._drift_since is None:
                return 0.0
            return max(self._clock() - self._drift_since, 0.0)

    def _publish_staleness_locked(self) -> None:
        record_staleness(
            0.0 if self._drift_since is None
            else max(self._clock() - self._drift_since, 0.0)
        )

    def verify_accounting(self) -> dict:
        """Check the pipeline's conservation invariants (JSON-ready).

        - every ingested point is represented by the serving model:
          ``model.n_total == initial_n + ingested_total``;
        - the sketch saw exactly the ingested stream;
        - every triggered refit terminated (succeeded/failed) unless one
          is in flight right now;
        - every produced artifact was swapped or rolled back.
        """
        with self._lock:
            expected_total = self.initial_n + self.ingested_total
            model_total = self.model.n_total
            sketch_ingested = self.sketch.n_seen - self._sketch_base
            in_flight = self._refit_in_flight
            open_refits = self.refits_triggered - (
                self.refits_succeeded + self.refits_failed
            )
            pending_swaps = self.refits_succeeded - (self.swaps + self.rollbacks)
            refits_balanced = open_refits == 0 or (in_flight and open_refits == 1)
            swaps_balanced = pending_swaps == 0 or (in_flight and pending_swaps == 1)
            ok = (
                model_total == expected_total
                and sketch_ingested == self.ingested_total
                and refits_balanced
                and swaps_balanced
            )
            return {
                "ok": bool(ok),
                "expected_total": int(expected_total),
                "model_total": int(model_total),
                "ingested_total": int(self.ingested_total),
                "sketch_ingested": int(sketch_ingested),
                "refits_triggered": int(self.refits_triggered),
                "refits_succeeded": int(self.refits_succeeded),
                "refits_failed": int(self.refits_failed),
                "swaps": int(self.swaps),
                "rollbacks": int(self.rollbacks),
                "refit_in_flight": bool(in_flight),
            }

    def status(self) -> dict:
        """JSON-ready pipeline state for /statz and the CLI."""
        with self._lock:
            last_decision = (
                None if self._last_decision is None else self._last_decision.as_dict()
            )
            last_refit = (
                None if self._last_refit is None else self._last_refit.as_dict()
            )
            last_swap = None if self._last_swap is None else self._last_swap.as_dict()
            return {
                "generation": int(self.model.generation),
                "n_total": int(self.model.n_total),
                "n_buffered": int(self.model.n_buffered),
                "threshold": float(self.model.classifier.threshold.value),
                "ingested_total": int(self.ingested_total),
                "window_fill": len(self._window),
                "staleness_seconds": (
                    0.0 if self._drift_since is None
                    else max(self._clock() - self._drift_since, 0.0)
                ),
                "staleness_bound_seconds": self.settings.staleness_bound,
                "monitor_errors": int(self.monitor_errors),
                "monitor_window_effective": int(self._effective_window_locked()),
                "check_gap_ewma_seconds": (
                    None if self._check_gap_ewma is None
                    else float(self._check_gap_ewma)
                ),
                "duplicates_skipped": int(self.duplicates_skipped),
                "sketch": self.sketch.snapshot(),
                "accounting": self.verify_accounting(),
                "wal": None if self.wal is None else self.wal.stats(),
                "recovery": self.recovery,
                "last_decision": last_decision,
                "last_refit": last_refit,
                "last_swap": last_swap,
            }
