"""Bounded mergeable sketch of the full point stream.

The serving model's exact-buffer path answers for *recent* inserts, but
a drift-triggered refit needs training data representing the *whole*
stream — unboundedly many points. :class:`StreamSketch` keeps that
history in bounded memory by reusing the merge-reduce halving round
(:func:`repro.coresets.merge_reduce._pair_round`): whenever the weighted
point set outgrows ``capacity`` it is halved by grid pairing, keeping
the heavier member of each pair with the combined weight.

Two properties make it the right substrate for streaming refits:

- **Mergeable**: appending a batch and halving commutes with halving
  first (Phillips & Tai's merge-reduce framework), so ingest cost is
  amortized O(1) per point and two sketches can be combined by
  concatenation + halving (:meth:`merge`).
- **Certified**: each pair merge displaces mass ``min(w_a, w_b)`` by
  ``||a - b||`` in *raw* space. The sketch accumulates that raw
  displacement sum; for any kernel with per-dimension bandwidths ``h``
  the scaled-space displacement is at most ``||a - b|| / min_j h_j``,
  so

      sup_x |f_stream(x) - f_sketch(x)|
        <= L * raw_displacement / (n * min_j h_j)

  (:meth:`eta_for`). The bound is conservative by the anisotropy ratio
  ``min h / h_j`` per dimension — the price of sketching *before* a
  bandwidth exists: the kernel is refit from the sketch afterwards.

Unlike :func:`~repro.coresets.merge_reduce.merge_reduce_coreset` (which
compresses a known dataset in scaled space, under a known kernel), the
sketch lives in raw data space because every refit re-estimates the
bandwidth from the current sketch.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.coresets.merge_reduce import _pair_round


class StreamSketch:
    """Weighted merge-reduce summary of everything ever ingested.

    Thread-safe: ingest happens on request threads while the background
    refit thread snapshots training data.

    Parameters
    ----------
    capacity:
        Maximum retained weighted points. Halving triggers when the set
        exceeds this, so memory is O(capacity * dim) regardless of
        stream length.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._points: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        #: Accumulated sum of min(w_a, w_b) * ||a - b|| over every pair
        #: merge, in raw (unscaled) space.
        self.raw_displacement = 0.0
        self.n_seen = 0
        self.rounds = 0

    @property
    def size(self) -> int:
        """Weighted points currently retained."""
        with self._lock:
            return 0 if self._points is None else self._points.shape[0]

    def append(self, points: np.ndarray) -> None:
        """Fold a batch of raw points into the sketch."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            return
        with self._lock:
            if self._points is None:
                self._points = points.copy()
                self._weights = np.ones(points.shape[0])
            else:
                if points.shape[1] != self._points.shape[1]:
                    raise ValueError(
                        f"append dimensionality {points.shape[1]} does not "
                        f"match sketch dimensionality {self._points.shape[1]}"
                    )
                self._points = np.concatenate([self._points, points])
                self._weights = np.concatenate(
                    [self._weights, np.ones(points.shape[0])]
                )
            self.n_seen += points.shape[0]
            self._reduce_locked()

    def merge(self, other: "StreamSketch") -> None:
        """Absorb another sketch (mergeability: concatenate + halve)."""
        with other._lock:
            points = None if other._points is None else other._points.copy()
            weights = None if other._weights is None else other._weights.copy()
            displacement = other.raw_displacement
            seen = other.n_seen
        if points is None:
            return
        with self._lock:
            if self._points is None:
                self._points = points
                self._weights = weights
            else:
                self._points = np.concatenate([self._points, points])
                self._weights = np.concatenate([self._weights, weights])
            self.raw_displacement += displacement
            self.n_seen += seen
            self._reduce_locked()

    def _reduce_locked(self) -> None:
        """Halve by grid pairing until back under capacity."""
        while self._points is not None and self._points.shape[0] > self.capacity:
            first, second, survivor = _pair_round(self._points)
            if first.size == 0:
                break  # single point left; cannot compress further
            dists = np.linalg.norm(
                self._points[first] - self._points[second], axis=1
            )
            pair_min = np.minimum(self._weights[first], self._weights[second])
            self.raw_displacement += float(np.sum(pair_min * dists))
            # Keep the heavier member (ties keep `first`): the error
            # multiplier above is then the *smaller* weight.
            keep_second = self._weights[second] > self._weights[first]
            kept = np.where(keep_second, second, first)
            self._points = np.concatenate(
                [self._points[kept], self._points[survivor]]
            )
            self._weights = np.concatenate(
                [self._weights[first] + self._weights[second],
                 self._weights[survivor]]
            )
            self.rounds += 1

    def eta_for(self, kernel) -> float:
        """Certified sup-norm KDE error of the sketch under ``kernel``.

        ``L * raw_displacement / (n_seen * min_j h_j)`` — valid for any
        kernel Lipschitz in scaled distance; ``inf`` otherwise.
        """
        with self._lock:
            if self.n_seen == 0 or self.raw_displacement == 0.0:
                return 0.0
            lipschitz = kernel.lipschitz_constant
            if not np.isfinite(lipschitz):
                return float("inf")
            min_bandwidth = float(np.min(kernel.bandwidth))
            return float(
                lipschitz * self.raw_displacement / (self.n_seen * min_bandwidth)
            )

    def training_sample(
        self, cap: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Materialize refit training data from the sketch.

        Merge-reduce weights are integer-valued (sums of unit weights),
        so when the stream still fits under ``cap`` the weighted
        empirical measure is reconstructed *exactly* by repetition.
        Beyond that, a weighted bootstrap resample of size ``cap`` draws
        from the sketch's empirical distribution — a uniform subsample
        of the (already certified) sketch, so the usual coreset
        composition argument applies to the refit's quality.
        """
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        with self._lock:
            if self._points is None:
                raise RuntimeError("cannot sample an empty sketch")
            points = self._points
            weights = self._weights
            total = float(weights.sum())
            if total <= cap:
                counts = np.rint(weights).astype(np.int64)
                return np.repeat(points, counts, axis=0).copy()
            rng = np.random.default_rng() if rng is None else rng
            picks = rng.choice(
                points.shape[0], size=cap, replace=True, p=weights / total
            )
            return points[picks].copy()

    def state(self) -> dict:
        """Full picklable state for WAL snapshots (see :meth:`restore`)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "points": None if self._points is None else self._points.copy(),
                "weights": None if self._weights is None else self._weights.copy(),
                "raw_displacement": float(self.raw_displacement),
                "n_seen": int(self.n_seen),
                "rounds": int(self.rounds),
            }

    @classmethod
    def restore(cls, state: dict) -> "StreamSketch":
        """Rebuild a sketch from :meth:`state` output, bit-for-bit."""
        sketch = cls(capacity=int(state["capacity"]))
        points = state["points"]
        weights = state["weights"]
        with sketch._lock:
            sketch._points = None if points is None else np.array(points, dtype=np.float64)
            sketch._weights = None if weights is None else np.array(weights, dtype=np.float64)
            sketch.raw_displacement = float(state["raw_displacement"])
            sketch.n_seen = int(state["n_seen"])
            sketch.rounds = int(state["rounds"])
        return sketch

    def snapshot(self) -> dict:
        """JSON-ready summary for /statz and pipeline status."""
        with self._lock:
            return {
                "n_seen": self.n_seen,
                "size": 0 if self._points is None else int(self._points.shape[0]),
                "capacity": self.capacity,
                "rounds": self.rounds,
                "raw_displacement": self.raw_displacement,
            }
