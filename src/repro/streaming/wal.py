"""Durable ingest: an append-only, checksummed write-ahead log.

PR 8's streaming pipeline serves every ingested point exactly — but
only from process memory. A daemon crash silently forgets every point
accepted since the last refit, which breaks the conservation invariant
``n_total == initial + ingested`` the moment the process restarts. The
WAL closes that hole: every state-changing streaming event is appended
here *before* it is applied in memory, so the acknowledgement a client
receives implies the batch survives a crash.

**Record format.** Each record is length-prefixed and CRC32-protected::

    <u32 payload length> <u32 crc32(payload)> <payload>
    payload := <u8 record type> <u64 sequence number> <body>

Segments start with an 8-byte magic (``TKDCWAL1``). Record types:

- ``INGEST`` — one accepted batch; body is a JSON meta header
  (idempotency source/sequence) plus the raw float64 row matrix;
- ``REFIT_TRIGGER`` — a drift-triggered refit launched (informational:
  a trigger with no matching commit died with the process);
- ``SWAP_COMMIT`` — a verified hot swap landed; body names the artifact
  path, the represented population, and the in-flight buffer retained;
- ``SNAPSHOT`` — a pickled full-state checkpoint (counters, sketch,
  exact buffer, idempotency watermarks). Compaction writes one at the
  head of a fresh segment and deletes everything older, so the log is
  bounded by the work since the last snapshot.

**Torn tails vs corruption.** Replay tolerates exactly one failure
mode silently: a *torn final record* — the crash interrupted the last
append, so the bytes from the failed record's start to end-of-file do
not form a complete, checksum-valid record. That tail is truncated,
warned about, and counted in ``recovered_torn_records``. Any checksum
or framing failure *before* the physical tail (a complete record whose
CRC fails mid-log, a sequence-number gap, a missing segment) is data
loss the WAL cannot account for and raises :class:`WalCorruptionError`
— recovery must fail loudly rather than serve an accounting lie.

**Fsync policy.** ``always`` fsyncs every append (the acknowledgement
IS the durability point), ``interval`` fsyncs at most once per
``fsync_interval`` seconds (bounded loss window, near-zero overhead),
``off`` never fsyncs (the OS decides; crash-of-process still loses
nothing, crash-of-kernel may). ``docs/streaming.md`` has the trade-off
table.

A ``wal.lock`` file (BSD ``flock``, auto-released on process death)
guarantees single-writer access: a fleet ingest-owner takeover cannot
double-append while the old owner is still alive.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs.metrics import record_wal_append

try:  # pragma: no cover - fcntl exists everywhere the fleet runs
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

log = logging.getLogger("repro.streaming")

#: Segment file header; a file not starting with this is not a WAL.
SEGMENT_MAGIC = b"TKDCWAL1"

#: Record envelope: payload length, CRC32 of payload.
_ENVELOPE = struct.Struct("<II")
#: Payload prefix: record type, sequence number.
_PREFIX = struct.Struct("<BQ")
#: Ingest body framing: meta length; then rows, dim before the matrix.
_U32 = struct.Struct("<I")

#: Framing sanity cap — a length prefix beyond this mid-log is
#: corruption, not a huge record.
_MAX_RECORD_BYTES = 1 << 30

RECORD_INGEST = 1
RECORD_REFIT_TRIGGER = 2
RECORD_SWAP_COMMIT = 3
RECORD_SNAPSHOT = 4

RECORD_NAMES = {
    RECORD_INGEST: "ingest",
    RECORD_REFIT_TRIGGER: "refit_trigger",
    RECORD_SWAP_COMMIT: "swap_commit",
    RECORD_SNAPSHOT: "snapshot",
}

FSYNC_POLICIES = ("always", "interval", "off")


class WalError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WalCorruptionError(WalError):
    """Mid-log damage replay cannot account for (fail loudly)."""


class WalLockedError(WalError):
    """Another live process holds this WAL's writer lock."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    type: int
    seq: int
    body: bytes

    @property
    def type_name(self) -> str:
        return RECORD_NAMES.get(self.type, f"unknown({self.type})")

    # -- body codecs -------------------------------------------------------

    def ingest_payload(self) -> tuple[np.ndarray, dict]:
        """Decode an INGEST body into ``(points, meta)``."""
        if self.type != RECORD_INGEST:
            raise WalError(f"record {self.seq} is {self.type_name}, not ingest")
        (meta_len,) = _U32.unpack_from(self.body, 0)
        offset = _U32.size
        meta = json.loads(self.body[offset:offset + meta_len].decode("utf-8"))
        offset += meta_len
        rows, dim = struct.unpack_from("<II", self.body, offset)
        offset += 8
        points = np.frombuffer(
            self.body, dtype="<f8", count=rows * dim, offset=offset
        ).reshape(rows, dim).copy()
        return points, meta

    def marker_payload(self) -> dict:
        """Decode a REFIT_TRIGGER / SWAP_COMMIT body (JSON)."""
        if self.type not in (RECORD_REFIT_TRIGGER, RECORD_SWAP_COMMIT):
            raise WalError(f"record {self.seq} is {self.type_name}, not a marker")
        return json.loads(self.body.decode("utf-8"))

    def snapshot_payload(self) -> dict:
        """Decode a SNAPSHOT body (pickled state dict)."""
        if self.type != RECORD_SNAPSHOT:
            raise WalError(f"record {self.seq} is {self.type_name}, not snapshot")
        return pickle.loads(self.body)


def encode_ingest_body(points: np.ndarray, meta: dict | None = None) -> bytes:
    """Serialize one ingest batch: JSON meta + raw float64 matrix."""
    points = np.ascontiguousarray(np.atleast_2d(points), dtype="<f8")
    meta_blob = json.dumps(meta or {}).encode("utf-8")
    rows, dim = points.shape
    return b"".join([
        _U32.pack(len(meta_blob)),
        meta_blob,
        struct.pack("<II", rows, dim),
        points.tobytes(),
    ])


class WriteAheadLog:
    """Single-writer, segment-rotated, checksummed append log.

    Opening scans every existing segment (validating checksums and
    sequence continuity), truncates a torn final record, and positions
    the appender after the last good byte — so construction *is* the
    integrity check. Use :meth:`replay` to read everything at or after
    the newest snapshot.

    Parameters
    ----------
    directory:
        The log directory (created if missing). One WAL per directory.
    fsync_policy:
        ``always`` / ``interval`` / ``off`` — when appends are forced
        to stable storage. With ``always`` the return of :meth:`append`
        is the durability point.
    fsync_interval:
        Minimum seconds between fsyncs under the ``interval`` policy.
    segment_bytes:
        Rotate to a fresh segment file once the current one exceeds
        this size (bounds the blast radius of a torn tail and keeps
        deletion-based compaction cheap).
    """

    def __init__(
        self,
        directory: Path | str,
        fsync_policy: str = "always",
        fsync_interval: float = 0.05,
        segment_bytes: int = 4 << 20,
        clock=time.monotonic,
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, got {fsync_policy!r}"
            )
        if fsync_interval < 0:
            raise ValueError(f"fsync_interval must be >= 0, got {fsync_interval}")
        if segment_bytes < 1024:
            raise ValueError(f"segment_bytes must be >= 1024, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync_policy
        self.fsync_interval = fsync_interval
        self.segment_bytes = segment_bytes
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = None
        self._lock_handle = None
        self.closed = False

        self.next_seq = 1
        self.recovered_torn_records = 0
        self.appends = 0
        self.fsyncs = 0
        self.dir_fsyncs = 0
        self.rotations = 0
        self.snapshots_written = 0
        self.bytes_appended = 0
        self._last_fsync = float("-inf")
        #: (path, byte offset) of the newest snapshot record, if any.
        self._snapshot_position: tuple[Path, int] | None = None

        self._acquire_writer_lock()
        try:
            self._scan_existing()
            self._open_current_segment()
        except BaseException:
            self._release_writer_lock()
            raise

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    def _acquire_writer_lock(self) -> None:
        lock_path = self.directory / "wal.lock"
        handle = open(lock_path, "a+b")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                handle.close()
                raise WalLockedError(
                    f"{self.directory} is already owned by a live writer "
                    f"(wal.lock is flocked): {exc}"
                ) from exc
        handle.seek(0)
        handle.truncate()
        handle.write(f"{os.getpid()}\n".encode("ascii"))
        handle.flush()
        self._lock_handle = handle

    def _release_writer_lock(self) -> None:
        if self._lock_handle is not None:
            # Closing drops the flock; the file itself stays (stale pid
            # contents are harmless — only the flock is authoritative).
            self._lock_handle.close()
            self._lock_handle = None

    # ------------------------------------------------------------------
    # Opening scan
    # ------------------------------------------------------------------

    def _segment_paths(self) -> list[Path]:
        return sorted(self.directory.glob("wal-*.seg"))

    def _scan_existing(self) -> None:
        """Validate every segment; truncate a torn tail; set next_seq."""
        paths = self._segment_paths()
        expected_seq: int | None = None
        for position, path in enumerate(paths):
            is_last = position == len(paths) - 1
            expected_seq = self._scan_segment(path, is_last, expected_seq)
        if expected_seq is not None:
            self.next_seq = expected_seq

    def _scan_segment(
        self, path: Path, is_last: bool, expected_seq: int | None
    ) -> int:
        data = path.read_bytes()
        if len(data) < len(SEGMENT_MAGIC) or not data.startswith(SEGMENT_MAGIC):
            if is_last and len(data) < len(SEGMENT_MAGIC):
                # Crash between creating the file and writing its magic.
                self._truncate_tail(path, 0, "segment header")
                return expected_seq if expected_seq is not None else 1
            raise WalCorruptionError(
                f"{path} does not start with the WAL segment magic"
            )
        offset = len(SEGMENT_MAGIC)
        while offset < len(data):
            parsed = self._parse_record_at(data, offset, path, is_last)
            if parsed is None:  # torn tail; file already truncated
                break
            record, next_offset = parsed
            if expected_seq is not None and record.seq != expected_seq:
                raise WalCorruptionError(
                    f"{path} offset {offset}: sequence gap (expected "
                    f"{expected_seq}, found {record.seq}) — a segment or "
                    "record is missing"
                )
            expected_seq = record.seq + 1
            if record.type == RECORD_SNAPSHOT:
                self._snapshot_position = (path, offset)
            offset = next_offset
        return expected_seq if expected_seq is not None else 1

    def _parse_record_at(
        self, data: bytes, offset: int, path: Path, is_last: bool
    ) -> tuple[WalRecord, int] | None:
        """Parse one record; ``None`` means a torn tail was truncated.

        The torn-tail rule: the failure is tolerable only when the bad
        record's declared extent reaches the physical end of the *last*
        segment — exactly the footprint of an interrupted append.
        Anything else is mid-log corruption.
        """
        def torn(kind: str) -> None:
            self._truncate_tail(path, offset, kind)

        end = len(data)
        if offset + _ENVELOPE.size > end:
            if is_last:
                torn("record header")
                return None
            raise WalCorruptionError(
                f"{path} offset {offset}: truncated record header in a "
                "non-final segment"
            )
        length, crc = _ENVELOPE.unpack_from(data, offset)
        payload_start = offset + _ENVELOPE.size
        payload_end = payload_start + length
        if length > _MAX_RECORD_BYTES:
            if is_last and payload_end >= end:
                torn("oversized length prefix")
                return None
            raise WalCorruptionError(
                f"{path} offset {offset}: implausible record length {length}"
            )
        if payload_end > end:
            if is_last:
                torn("record body")
                return None
            raise WalCorruptionError(
                f"{path} offset {offset}: truncated record body in a "
                "non-final segment"
            )
        payload = data[payload_start:payload_end]
        if zlib.crc32(payload) != crc:
            if is_last and payload_end == end:
                torn("checksum mismatch in the final record")
                return None
            raise WalCorruptionError(
                f"{path} offset {offset}: CRC32 mismatch mid-log — the "
                "record is damaged but not the physical tail; refusing to "
                "replay past unaccountable loss"
            )
        if length < _PREFIX.size:
            raise WalCorruptionError(
                f"{path} offset {offset}: record too short for its prefix"
            )
        rtype, seq = _PREFIX.unpack_from(payload, 0)
        if rtype not in RECORD_NAMES:
            raise WalCorruptionError(
                f"{path} offset {offset}: unknown record type {rtype}"
            )
        return WalRecord(rtype, seq, payload[_PREFIX.size:]), payload_end

    def _truncate_tail(self, path: Path, offset: int, kind: str) -> None:
        self.recovered_torn_records += 1
        log.warning(
            "WAL %s: torn final record (%s) at offset %d — truncating the "
            "tail; the interrupted append was never acknowledged",
            path.name, kind, offset,
        )
        with open(path, "r+b") as handle:
            handle.truncate(max(offset, 0))
            handle.flush()
            os.fsync(handle.fileno())
        # The crashed writer may never have made this file's directory
        # entry durable (a zero-length header file is exactly that
        # footprint); pin entry and truncation down together.
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        """fsync the log directory itself.

        Record fsyncs make *contents* durable; segment creation,
        deletion, and truncation also change the directory, and only a
        directory fsync makes those entries survive a power loss. The
        ``always``/``interval`` ack contract depends on the segment the
        ack landed in still being linked after a crash.
        """
        fd = os.open(self.directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        self.dir_fsyncs += 1

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _segment_path_for(self, seq: int) -> Path:
        return self.directory / f"wal-{seq:016d}.seg"

    def _open_current_segment(self) -> None:
        paths = self._segment_paths()
        if paths:
            current = paths[-1]
            # Unbuffered append: every write() reaches the OS, so replay
            # from another descriptor observes it and fsync() is the
            # only durability variable.
            self._handle = open(current, "ab", buffering=0)
            self._current_path = current
        else:
            self._start_segment(self.next_seq)

    def _start_segment(self, first_seq: int) -> None:
        path = self._segment_path_for(first_seq)
        handle = open(path, "ab", buffering=0)
        if handle.tell() == 0:
            handle.write(SEGMENT_MAGIC)
        self._handle = handle
        self._current_path = path
        if self.fsync_policy != "off":
            # Make the new segment's directory entry durable before any
            # acknowledged record lands in it — an fsynced record in an
            # unlinked-after-crash file is still lost data.
            self._fsync_directory()

    def _rotate_locked(self) -> None:
        self._fsync_locked(force=True)
        self._handle.close()
        self._start_segment(self.next_seq)
        self.rotations += 1

    def _fsync_locked(self, force: bool = False) -> None:
        if self._handle is None:
            return
        if force or self.fsync_policy == "always":
            os.fsync(self._handle.fileno())
            self.fsyncs += 1
            self._last_fsync = self._clock()
        elif self.fsync_policy == "interval":
            now = self._clock()
            if now - self._last_fsync >= self.fsync_interval:
                os.fsync(self._handle.fileno())
                self.fsyncs += 1
                self._last_fsync = now
        # "off": never

    def _append_locked(self, rtype: int, body: bytes) -> int:
        if self.closed:
            raise WalError("append on a closed WAL")
        seq = self.next_seq
        payload = _PREFIX.pack(rtype, seq) + body
        blob = _ENVELOPE.pack(len(payload), zlib.crc32(payload)) + payload
        self._handle.write(blob)
        self.next_seq = seq + 1
        self.appends += 1
        self.bytes_appended += len(blob)
        self._fsync_locked()
        if self._handle.tell() > self.segment_bytes:
            self._rotate_locked()
        return seq

    def _append_timed(self, rtype: int, body: bytes) -> int:
        started = time.perf_counter()
        with self._lock:
            fsyncs_before = self.fsyncs
            seq = self._append_locked(rtype, body)
            fsyncs = self.fsyncs - fsyncs_before
        record_wal_append(
            RECORD_NAMES[rtype], time.perf_counter() - started, fsyncs
        )
        return seq

    def append_ingest(
        self, points: np.ndarray, meta: dict | None = None
    ) -> int:
        """Append one accepted batch; returns its WAL sequence number."""
        return self._append_timed(RECORD_INGEST, encode_ingest_body(points, meta))

    def append_marker(self, rtype: int, payload: dict) -> int:
        """Append a refit-trigger or swap-commit marker."""
        if rtype not in (RECORD_REFIT_TRIGGER, RECORD_SWAP_COMMIT):
            raise ValueError(f"not a marker record type: {rtype}")
        return self._append_timed(rtype, json.dumps(payload).encode("utf-8"))

    def sync(self) -> None:
        """Force an fsync regardless of policy."""
        with self._lock:
            self._fsync_locked(force=True)

    # ------------------------------------------------------------------
    # Snapshot + compaction
    # ------------------------------------------------------------------

    def write_snapshot(self, state: dict) -> int:
        """Checkpoint full state and truncate all history before it.

        The snapshot record opens a brand-new segment; once it is
        durable (always fsynced, regardless of policy) every older
        segment is deleted — replay needs nothing before a snapshot
        that contains the whole state by construction.
        """
        body = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        started = time.perf_counter()
        with self._lock:
            if self.closed:
                raise WalError("snapshot on a closed WAL")
            fsyncs_before = self.fsyncs
            self._fsync_locked(force=True)
            self._handle.close()
            old_paths = [
                p for p in self._segment_paths() if p != self._segment_path_for(self.next_seq)
            ]
            self._start_segment(self.next_seq)
            seq = self._append_locked(RECORD_SNAPSHOT, body)
            self._fsync_locked(force=True)
            # The snapshot must be durable — contents AND directory
            # entry — before the history it replaces is deleted, and
            # the deletions must be pinned down too or a crash replays
            # pre-snapshot segments against post-snapshot state.
            self._fsync_directory()
            self._snapshot_position = (self._current_path, len(SEGMENT_MAGIC))
            for path in old_paths:
                if path != self._current_path:
                    path.unlink(missing_ok=True)
            self._fsync_directory()
            self.snapshots_written += 1
            fsyncs = self.fsyncs - fsyncs_before
        record_wal_append(
            RECORD_NAMES[RECORD_SNAPSHOT], time.perf_counter() - started, fsyncs
        )
        return seq

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay(self):
        """Yield every record at or after the newest snapshot, in order.

        The opening scan already validated checksums and truncated any
        torn tail, so replay is a plain decode pass.
        """
        paths = self._segment_paths()
        start_path, start_offset = (
            self._snapshot_position
            if self._snapshot_position is not None
            else (None, len(SEGMENT_MAGIC))
        )
        started = start_path is None
        for position, path in enumerate(paths):
            if not started:
                if path != start_path:
                    continue
                started = True
                offset = start_offset
            else:
                offset = len(SEGMENT_MAGIC)
            data = path.read_bytes()
            while offset < len(data):
                parsed = self._parse_record_at(
                    data, offset, path, position == len(paths) - 1
                )
                if parsed is None:  # pragma: no cover - scan truncated already
                    break
                record, offset = parsed
                yield record

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when the log holds no records at all."""
        return self.next_seq == 1

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._segment_paths())

    def stats(self) -> dict:
        """JSON-ready counters for /statz and benchmarks."""
        return {
            "directory": str(self.directory),
            "fsync_policy": self.fsync_policy,
            "next_seq": int(self.next_seq),
            "appends": int(self.appends),
            "fsyncs": int(self.fsyncs),
            "dir_fsyncs": int(self.dir_fsyncs),
            "rotations": int(self.rotations),
            "snapshots_written": int(self.snapshots_written),
            "bytes_appended": int(self.bytes_appended),
            "segments": len(self._segment_paths()),
            "size_bytes": int(self.size_bytes()),
            "recovered_torn_records": int(self.recovered_torn_records),
        }

    def close(self) -> None:
        """Flush, fsync, and release the writer lock. Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            if self._handle is not None:
                try:
                    os.fsync(self._handle.fileno())
                except OSError:  # pragma: no cover - best-effort at exit
                    pass
                self._handle.close()
                self._handle = None
            self._release_writer_lock()

    def abandon(self) -> None:
        """Drop the handle and lock WITHOUT a final fsync (test hook).

        Simulates a process death for crash-recovery tests that cannot
        afford a real subprocess; never call this in production code.
        """
        with self._lock:
            self.closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._release_writer_lock()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
