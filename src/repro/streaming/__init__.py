"""Streaming ingest → drift-triggered refit → verified hot swap.

See ``docs/streaming.md`` for the pipeline diagram, the staleness-bound
derivation, the failure matrix, and the durability (write-ahead log)
section.
"""

from repro.streaming.monitor import DriftDecision, DriftMonitor
from repro.streaming.pipeline import LocalReloader, StreamingPipeline, StreamSettings
from repro.streaming.refit import RefitOutcome, run_refit
from repro.streaming.sketch import StreamSketch
from repro.streaming.wal import (
    WalCorruptionError,
    WalError,
    WalLockedError,
    WriteAheadLog,
)

__all__ = [
    "DriftDecision",
    "DriftMonitor",
    "LocalReloader",
    "RefitOutcome",
    "StreamSettings",
    "StreamSketch",
    "StreamingPipeline",
    "WalCorruptionError",
    "WalError",
    "WalLockedError",
    "WriteAheadLog",
    "run_refit",
]
