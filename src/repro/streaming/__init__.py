"""Streaming ingest → drift-triggered refit → verified hot swap.

See ``docs/streaming.md`` for the pipeline diagram, the staleness-bound
derivation, and the failure matrix.
"""

from repro.streaming.monitor import DriftDecision, DriftMonitor
from repro.streaming.pipeline import LocalReloader, StreamingPipeline, StreamSettings
from repro.streaming.refit import RefitOutcome, run_refit
from repro.streaming.sketch import StreamSketch

__all__ = [
    "DriftDecision",
    "DriftMonitor",
    "LocalReloader",
    "RefitOutcome",
    "StreamSettings",
    "StreamSketch",
    "StreamingPipeline",
    "run_refit",
]
