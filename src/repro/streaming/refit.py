"""Crash-isolated background refit: fit, save, verify — never in-process.

A refit on drifted data is the riskiest operation in the streaming
pipeline: the snapshot may be poisoned (adversarial rows that blow up
bandwidth estimation), the fit may crash the interpreter, or the saved
artifact may be corrupted on the way to disk. None of that may ever
touch the serving model, so every refit attempt runs in a *subprocess*
under the supervised dispatch machinery
(:func:`repro.robustness.supervisor.supervised_map`, one chunk): a
per-attempt deadline, bounded retries (a transient crash clears on
retry), and a final in-process fallback that deliberately **refuses**
to run when the fault plan says the work itself is poisoned — an
``os._exit`` enacted in-process would take the serving process with it,
which is precisely what crash isolation exists to prevent.

The product is a model artifact written through
:func:`repro.io.models.save_model` (atomic write + sha256 footer), so
the downstream hot swap verifies integrity before unpickling. A
:class:`~repro.robustness.faults.DriftPlan` can deterministically crash
or poison chosen ``(generation, attempt)`` pairs and flip a byte in a
chosen generation's artifact, making every failure branch testable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.io.models import save_model
from repro.robustness.faults import REFIT_CRASH, REFIT_RAISE, DriftPlan
from repro.robustness.supervisor import SupervisionPolicy, supervised_map

#: Exit code of a deliberately crashed refit subprocess (tests grep it).
_CRASH_EXIT_CODE = 23


@dataclass(frozen=True)
class RefitOutcome:
    """Result of one supervised refit attempt chain (JSON-ready)."""

    ok: bool
    generation: int
    model_path: str | None = None
    threshold: float | None = None
    error: str | None = None
    seconds: float = 0.0
    crashes: int = 0
    errors: int = 0
    timeouts: int = 0
    retries: int = 0
    serial_refusals: int = 0
    #: Sketch displacement certificate offered to the fit (eta units).
    eta: float = 0.0
    #: The eta actually folded into the threshold bracket (0 = none).
    eta_applied: float = 0.0

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "generation": self.generation,
            "model_path": self.model_path,
            "threshold": self.threshold,
            "error": self.error,
            "seconds": self.seconds,
            "crashes": self.crashes,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "serial_refusals": self.serial_refusals,
            "eta": self.eta,
            "eta_applied": self.eta_applied,
        }


def _flip_byte(path: Path) -> None:
    """Corrupt a saved artifact in place (models a bad disk/transfer)."""
    size = path.stat().st_size
    offset = max(size // 3, 0)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def _stream_eta(classifier: TKDCClassifier, displacement: float, n_seen: int) -> float:
    """Sketch certificate under the *fitted* kernel's bandwidth.

    The sketch accumulates raw displacement before any bandwidth exists;
    only after the refit's kernel is fitted can the certificate be
    scaled: ``L * displacement / (n_seen * min_j h_j)`` (the same bound
    :meth:`StreamSketch.eta_for` documents).
    """
    if displacement <= 0.0 or n_seen <= 0:
        return 0.0
    kernel = classifier.kernel
    lipschitz = kernel.lipschitz_constant
    if not np.isfinite(lipschitz):
        return float("inf")
    min_bandwidth = float(np.min(kernel.bandwidth))
    return float(lipschitz * displacement / (n_seen * min_bandwidth))


def _fit_and_save(payload: dict) -> dict:
    """The actual refit work; runs in the subprocess (or fallback)."""
    classifier = TKDCClassifier(payload["config"]).fit(payload["data"])
    # Fold the sketch's displacement certificate into the threshold
    # bracket BEFORE saving, so the artifact itself carries the widened
    # bounds and the swap manifest can surface eta_applied.
    eta = _stream_eta(
        classifier,
        float(payload.get("sketch_displacement", 0.0)),
        int(payload.get("sketch_n", 0)),
    )
    eta_applied = classifier.widen_threshold_bracket(eta)
    path = save_model(payload["path"], classifier)
    plan: DriftPlan | None = payload.get("plan")
    generation: int = payload["generation"]
    if plan is not None and plan.corrupts_artifact(generation):
        _flip_byte(path)
    return {
        "ok": True,
        "path": str(path),
        "threshold": float(classifier.threshold.value),
        "error": None,
        "eta": float(eta),
        "eta_applied": float(eta_applied),
    }


def _refit_worker(chunk_index: int, attempt: int, payload: dict) -> dict:
    """Subprocess entry: enact planned faults, then fit and save."""
    plan: DriftPlan | None = payload.get("plan")
    generation: int = payload["generation"]
    if plan is not None:
        fault = plan.refit_fault(generation, attempt)
        if fault == REFIT_CRASH:
            os._exit(_CRASH_EXIT_CODE)
        if fault == REFIT_RAISE:
            raise RuntimeError(
                f"injected refit poison (generation {generation}, "
                f"attempt {attempt})"
            )
    return _fit_and_save(payload)


def _refit_context():
    """Fork keeps the snapshot copy-on-write; spawn is the fallback."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


def run_refit(
    data: np.ndarray,
    config: TKDCConfig,
    out_path: Path | str,
    generation: int,
    policy: SupervisionPolicy | None = None,
    plan: DriftPlan | None = None,
    sketch_displacement: float = 0.0,
    sketch_n: int = 0,
) -> RefitOutcome:
    """Fit a fresh model on ``data`` in a supervised subprocess.

    ``sketch_displacement`` / ``sketch_n`` carry the training sketch's
    raw displacement certificate; once the refit's kernel exists the
    certificate is scaled to an eta and folded into the saved model's
    threshold bracket (``RefitOutcome.eta_applied``).

    Returns a :class:`RefitOutcome`; ``ok=False`` means every attempt
    failed (crash, poison, deadline) and **nothing was produced** — the
    caller's serving model must remain untouched. ``ok=True`` means a
    sha256-footed artifact exists at ``model_path`` (it may still be
    refused downstream by the verified swap, e.g. when the plan
    corrupted it after saving — that is the swap layer's test).
    """
    data = np.ascontiguousarray(np.atleast_2d(np.asarray(data, dtype=np.float64)))
    if data.shape[0] < 2:
        return RefitOutcome(
            ok=False, generation=generation,
            error=f"refit snapshot too small: {data.shape[0]} rows",
        )
    policy = policy or SupervisionPolicy()
    payload = {
        "data": data,
        "config": config,
        "path": str(out_path),
        "generation": generation,
        "plan": plan,
        "sketch_displacement": float(sketch_displacement),
        "sketch_n": int(sketch_n),
    }

    def serial_fallback(chunk_index: int, chunk: dict) -> dict:
        # Attempts are exhausted by the time the fallback runs. If the
        # plan says this refit's faults are still live (a permanently
        # poisoned refit), refuse rather than enact a crash in the
        # serving process; otherwise run the work in-process but trap
        # any exception — a failed refit must report, not propagate.
        if plan is not None and plan.refit_fault(
            generation, policy.max_retries + 1
        ) is not None:
            return {
                "ok": False, "path": None, "threshold": None,
                "error": "refit permanently faulted; refused in-process "
                         "execution to protect the serving process",
            }
        try:
            return _fit_and_save(chunk)
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            return {
                "ok": False, "path": None, "threshold": None,
                "error": f"{type(exc).__name__}: {exc}",
            }

    started = time.perf_counter()
    results, report = supervised_map(
        _refit_worker,
        [payload],
        n_jobs=1,
        policy=policy,
        serial_fallback=serial_fallback,
        mp_context=_refit_context(),
    )
    elapsed = time.perf_counter() - started
    outcome = results[0]
    refused = int(
        report.serial_fallbacks and not outcome.get("ok", False)
    )
    return RefitOutcome(
        ok=bool(outcome.get("ok", False)),
        generation=generation,
        model_path=outcome.get("path"),
        threshold=outcome.get("threshold"),
        error=outcome.get("error"),
        seconds=elapsed,
        crashes=report.crashes,
        errors=report.errors,
        timeouts=report.timeouts,
        retries=report.retries,
        serial_refusals=refused,
        eta=float(outcome.get("eta") or 0.0),
        eta_applied=float(outcome.get("eta_applied") or 0.0),
    )
