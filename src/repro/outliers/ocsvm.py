"""One-Class SVM (Schölkopf et al. 2001) with an SMO solver.

The paper discusses OCSVM as the machine-learning approach to the
support-estimation problem density classification also solves (Sections
2 and 5), noting its O(n^2.5)-O(n^3) training cost — the comparison
point for tKDC's scalability argument. This is a from-scratch
implementation of the nu-parameterized dual:

    minimize    (1/2) sum_ij alpha_i alpha_j K(x_i, x_j)
    subject to  0 <= alpha_i <= 1 / (nu * n),   sum_i alpha_i = 1

solved by sequential minimal optimization over maximally KKT-violating
pairs (the equality constraint is preserved by moving mass between two
coordinates at a time). The decision function is
``f(x) = sum_i alpha_i K(x_i, x) - rho``; negative values are outliers,
and ``nu`` upper-bounds the training outlier fraction.
"""

from __future__ import annotations

import numpy as np

from repro.validation import as_finite_matrix

#: Convergence tolerance on the maximal KKT violation.
_DEFAULT_TOL = 1e-4

#: Hard cap on SMO iterations (pair updates).
_DEFAULT_MAX_ITER = 100_000


def rbf_gamma_scale(data: np.ndarray) -> float:
    """The common "scale" heuristic: ``1 / (d * var(X))``."""
    variance = float(np.var(data))
    if variance <= 0:
        variance = 1.0
    return 1.0 / (data.shape[1] * variance)


class OneClassSVM:
    """nu-One-Class SVM with an RBF kernel.

    Parameters
    ----------
    nu:
        Upper bound on the training outlier fraction and lower bound on
        the support-vector fraction; in ``(0, 1]``.
    gamma:
        RBF width ``exp(-gamma * ||x - y||^2)``; defaults to the
        ``1 / (d * var)`` scale heuristic at fit time.
    tol, max_iter:
        SMO stopping controls.

    Notes
    -----
    Training materializes the n x n kernel matrix: O(n^2) memory and
    O(n^2)-O(n^3) time — the cost profile the paper contrasts tKDC
    against. Intended for the comparison example/bench at moderate n.
    """

    name = "ocsvm"

    def __init__(
        self,
        nu: float = 0.05,
        gamma: float | None = None,
        tol: float = _DEFAULT_TOL,
        max_iter: int = _DEFAULT_MAX_ITER,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValueError(f"nu must be in (0, 1], got {nu}")
        if gamma is not None and gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        self.nu = nu
        self.gamma = gamma
        self.tol = tol
        self.max_iter = max_iter
        self._gamma: float | None = None
        self._support_vectors: np.ndarray | None = None
        self._support_alphas: np.ndarray | None = None
        self._rho: float | None = None
        self._training_decisions: np.ndarray | None = None
        self.iterations_ = 0

    def fit(self, data: np.ndarray) -> "OneClassSVM":
        """Train by SMO on the one-class dual."""
        data = as_finite_matrix(data, "training data")
        n = data.shape[0]
        if n < 2:
            raise ValueError(f"need at least 2 training points, got {n}")
        gamma = self.gamma if self.gamma is not None else rbf_gamma_scale(data)
        self._gamma = gamma

        kernel_matrix = self._rbf_matrix(data, data, gamma)
        upper = 1.0 / (self.nu * n)

        # Feasible start: spread the unit of mass over ceil(nu * n)
        # points (each at its box bound except possibly the last).
        alpha = np.zeros(n)
        full = int(np.floor(self.nu * n))
        alpha[:full] = upper
        remainder = 1.0 - full * upper
        if remainder > 1e-15 and full < n:
            alpha[full] = remainder
        gradient = kernel_matrix @ alpha

        for iteration in range(self.max_iter):
            # Most-violating pair: raiseable coordinate with the
            # smallest gradient vs. lowerable coordinate with the
            # largest gradient.
            can_raise = alpha < upper - 1e-15
            can_lower = alpha > 1e-15
            i = int(np.argmin(np.where(can_raise, gradient, np.inf)))
            j = int(np.argmax(np.where(can_lower, gradient, -np.inf)))
            violation = gradient[j] - gradient[i]
            if violation <= self.tol:
                self.iterations_ = iteration
                break
            # Optimal step along e_i - e_j for the quadratic objective.
            curvature = kernel_matrix[i, i] + kernel_matrix[j, j] - 2.0 * kernel_matrix[i, j]
            step = violation / max(curvature, 1e-12)
            step = min(step, upper - alpha[i], alpha[j])
            alpha[i] += step
            alpha[j] -= step
            gradient += step * (kernel_matrix[:, i] - kernel_matrix[:, j])
        else:
            self.iterations_ = self.max_iter

        support = alpha > 1e-12
        self._support_vectors = data[support]
        self._support_alphas = alpha[support]
        # rho = f(x) for margin support vectors (0 < alpha < upper).
        margin = support & (alpha < upper - 1e-9)
        reference = margin if np.any(margin) else support
        self._rho = float(np.mean(gradient[reference]))
        self._training_decisions = gradient - self._rho
        return self

    @property
    def rho(self) -> float:
        """The decision offset (f(x) = kernel expansion - rho)."""
        self._require_fitted()
        assert self._rho is not None
        return self._rho

    @property
    def n_support(self) -> int:
        """Number of support vectors."""
        self._require_fitted()
        assert self._support_alphas is not None
        return self._support_alphas.shape[0]

    @property
    def training_decisions_(self) -> np.ndarray:
        """Decision values of the training points (negative = outlier)."""
        self._require_fitted()
        assert self._training_decisions is not None
        return self._training_decisions

    def decision_function(self, queries: np.ndarray) -> np.ndarray:
        """Signed distance-like score; negative values are outliers."""
        self._require_fitted()
        assert self._support_vectors is not None
        assert self._support_alphas is not None and self._gamma is not None
        queries = as_finite_matrix(queries, "queries")
        cross = self._rbf_matrix(queries, self._support_vectors, self._gamma)
        return cross @ self._support_alphas - self.rho

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """1 where the query is an outlier (decision below zero)."""
        return (self.decision_function(queries) < 0.0).astype(np.int64)

    def training_labels(self) -> np.ndarray:
        """1 where a training point falls outside the learned support.

        Points within the solver tolerance of the boundary count as
        inliers — SMO only guarantees KKT satisfaction up to ``tol``, so
        decisions in ``(-tol, 0)`` are boundary noise, and counting them
        would break the nu-property (outlier fraction <= nu).
        """
        return (self.training_decisions_ < -self.tol).astype(np.int64)

    @staticmethod
    def _rbf_matrix(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
        sq = (
            np.sum(a * a, axis=1)[:, None]
            + np.sum(b * b, axis=1)[None, :]
            - 2.0 * (a @ b.T)
        )
        np.maximum(sq, 0.0, out=sq)
        return np.exp(-gamma * sq)

    def _require_fitted(self) -> None:
        if self._support_vectors is None:
            raise RuntimeError("OneClassSVM is not fitted; call fit() first")
