"""kNN-distance outlier scoring (Ramaswamy, Rastogi & Shim, SIGMOD 2000).

A point's outlier score is its distance to its k-th nearest neighbour:
points in sparse regions are far from even their closest peers. Simple,
non-parametric, and the most common baseline the density-classification
literature compares against (paper Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.index.kdtree import KDTree
from repro.index.knn import k_nearest, k_nearest_all
from repro.quantile.order_stats import quantile_of_sorted
from repro.validation import as_finite_matrix

#: Literature-standard default neighbourhood size.
DEFAULT_K = 10


class KNNDistanceDetector:
    """Outlier detection by distance to the k-th nearest neighbour.

    Parameters
    ----------
    k:
        Neighbourhood size (default 10).
    contamination:
        Fraction of the training data labelled outlier by
        :meth:`training_labels` — the analogue of tKDC's ``p``.
    """

    name = "knn"

    def __init__(self, k: int = DEFAULT_K, contamination: float = 0.01) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0.0 < contamination < 1.0:
            raise ValueError(f"contamination must be in (0, 1), got {contamination}")
        self.k = k
        self.contamination = contamination
        self._tree: KDTree | None = None
        self._training_scores: np.ndarray | None = None
        self._threshold: float | None = None

    def fit(self, data: np.ndarray) -> "KNNDistanceDetector":
        """Index the data and score every training point."""
        data = as_finite_matrix(data, "training data")
        if data.shape[0] <= self.k:
            raise ValueError(
                f"need more than k={self.k} points, got {data.shape[0]}"
            )
        self._tree = KDTree(data)
        __, sq = k_nearest_all(self._tree, self.k, self_exclude=True)
        self._training_scores = np.sqrt(sq[:, -1])
        # High scores are outliers: the threshold is the (1 - c)-quantile.
        self._threshold = quantile_of_sorted(
            np.sort(self._training_scores), 1.0 - self.contamination
        )
        return self

    @property
    def training_scores_(self) -> np.ndarray:
        """k-th-NN distance of each training point."""
        self._require_fitted()
        assert self._training_scores is not None
        return self._training_scores

    @property
    def threshold(self) -> float:
        """Score above which points are labelled outliers."""
        self._require_fitted()
        assert self._threshold is not None
        return self._threshold

    def score(self, queries: np.ndarray) -> np.ndarray:
        """k-th-NN distances of query points (larger = more outlying)."""
        self._require_fitted()
        assert self._tree is not None
        queries = as_finite_matrix(queries, "queries")
        out = np.empty(queries.shape[0])
        for i in range(queries.shape[0]):
            __, sq = k_nearest(self._tree, queries[i], self.k)
            out[i] = float(np.sqrt(sq[-1]))
        return out

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """1 where the query is an outlier (score above threshold)."""
        return (self.score(queries) > self.threshold).astype(np.int64)

    def training_labels(self) -> np.ndarray:
        """1 where a training point's score exceeds the threshold."""
        return (self.training_scores_ > self.threshold).astype(np.int64)

    def _require_fitted(self) -> None:
        if self._tree is None:
            raise RuntimeError("KNNDistanceDetector is not fitted; call fit() first")
