"""Local Outlier Factor (Breunig, Kriegel, Ng & Sander, SIGMOD 2000).

LOF compares a point's local density against its neighbours': scores
near 1 mean comparable density (inlier); scores well above 1 mean the
point is locally much sparser than its neighbourhood. Unlike global
kNN-distance scoring, LOF adapts to clusters of different densities —
and unlike KDE, its scores are ratios, not probability densities (the
interpretability distinction the paper draws in Section 5).

Definitions (neighbourhood size k):

- ``k_dist(o)`` — distance from ``o`` to its k-th nearest neighbour;
- ``reach_dist(p, o) = max(k_dist(o), d(p, o))``;
- ``lrd(p) = 1 / mean_{o in N_k(p)} reach_dist(p, o)``;
- ``LOF(p) = mean_{o in N_k(p)} lrd(o) / lrd(p)``.
"""

from __future__ import annotations

import numpy as np

from repro.index.kdtree import KDTree
from repro.index.knn import k_nearest, k_nearest_all
from repro.quantile.order_stats import quantile_of_sorted
from repro.validation import as_finite_matrix

#: The original paper's recommended lower bound for k.
DEFAULT_K = 10

#: Guard against division by zero for exactly duplicated points.
_MIN_REACH = 1e-300


class LocalOutlierFactor:
    """LOF outlier detection over the shared k-d tree substrate.

    Parameters
    ----------
    k:
        Neighbourhood size (``MinPts`` in the original paper).
    contamination:
        Fraction of the training data labelled outlier, for threshold
        selection comparable to tKDC's ``p``.
    """

    name = "lof"

    def __init__(self, k: int = DEFAULT_K, contamination: float = 0.01) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0.0 < contamination < 1.0:
            raise ValueError(f"contamination must be in (0, 1), got {contamination}")
        self.k = k
        self.contamination = contamination
        self._tree: KDTree | None = None
        self._k_dist: np.ndarray | None = None
        self._lrd: np.ndarray | None = None
        self._training_scores: np.ndarray | None = None
        self._threshold: float | None = None

    def fit(self, data: np.ndarray) -> "LocalOutlierFactor":
        """Index the data and compute k-distances, lrd, and LOF scores."""
        data = as_finite_matrix(data, "training data")
        n = data.shape[0]
        if n <= self.k:
            raise ValueError(f"need more than k={self.k} points, got {n}")
        self._tree = KDTree(data)
        neighbour_idx, neighbour_sq = k_nearest_all(self._tree, self.k, self_exclude=True)
        dists = np.sqrt(neighbour_sq)
        self._k_dist = dists[:, -1]

        # reach_dist(p, o) = max(k_dist(o), d(p, o)), vectorized over the
        # neighbour matrix.
        reach = np.maximum(self._k_dist[neighbour_idx], dists)
        self._lrd = 1.0 / np.maximum(reach.mean(axis=1), _MIN_REACH)
        self._training_scores = self._lrd[neighbour_idx].mean(axis=1) / self._lrd
        self._threshold = quantile_of_sorted(
            np.sort(self._training_scores), 1.0 - self.contamination
        )
        return self

    @property
    def training_scores_(self) -> np.ndarray:
        """LOF score of each training point (ascending = more inlying)."""
        self._require_fitted()
        assert self._training_scores is not None
        return self._training_scores

    @property
    def threshold(self) -> float:
        """LOF score above which points are labelled outliers."""
        self._require_fitted()
        assert self._threshold is not None
        return self._threshold

    def score(self, queries: np.ndarray) -> np.ndarray:
        """LOF scores of query points against the training neighbourhoods."""
        self._require_fitted()
        assert self._tree is not None and self._k_dist is not None
        assert self._lrd is not None
        queries = as_finite_matrix(queries, "queries")
        out = np.empty(queries.shape[0])
        for i in range(queries.shape[0]):
            neighbour_idx, neighbour_sq = k_nearest(self._tree, queries[i], self.k)
            dists = np.sqrt(neighbour_sq)
            reach = np.maximum(self._k_dist[neighbour_idx], dists)
            lrd_query = 1.0 / max(float(reach.mean()), _MIN_REACH)
            out[i] = float(self._lrd[neighbour_idx].mean()) / lrd_query
        return out

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """1 where the query is an outlier (LOF above threshold)."""
        return (self.score(queries) > self.threshold).astype(np.int64)

    def training_labels(self) -> np.ndarray:
        """1 where a training point's LOF exceeds the threshold."""
        return (self.training_scores_ > self.threshold).astype(np.int64)

    def _require_fitted(self) -> None:
        if self._tree is None:
            raise RuntimeError("LocalOutlierFactor is not fitted; call fit() first")
