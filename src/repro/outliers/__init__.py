"""Alternative outlier detectors the paper positions tKDC against.

Section 5 of the paper situates density classification among the
classic unsupervised outlier-detection methods: kNN-distance scoring
(Ramaswamy et al. 2000) and Local Outlier Factor (Breunig et al. 2000).
Unlike KDE, their scores are not statistically interpretable
probability densities — the paper's core argument for tKDC — but they
are the standard comparison points, so this package implements both on
top of the same k-d tree substrate for the cross-method example and
bench.
"""

from repro.outliers.knn_distance import KNNDistanceDetector
from repro.outliers.lof import LocalOutlierFactor
from repro.outliers.ocsvm import OneClassSVM

__all__ = ["KNNDistanceDetector", "LocalOutlierFactor", "OneClassSVM"]
