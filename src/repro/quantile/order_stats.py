"""Confidence intervals on quantiles from subsample order statistics.

Paper Section 3.5: given a set ``D`` of ``n`` reals and a random
subsample ``D_s`` of size ``s``, the binomial theorem (Equation 10,
Gibbons & Chakraborti) gives

    Pr( d_s^(l) <= d^(np) <= d_s^(u) ) = sum_{i=l..u} C(s, i) p^i (1-p)^(s-i)

and for large ``s`` the binomial is well approximated by a normal, giving
the paper's Equation 11 with rank offsets ``± z * sqrt(s p (1-p))``.

Ranks here are **1-based order statistics** (the paper's convention);
:func:`quantile_index` converts to a 0-based array index.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats


def quantile_index(size: int, p: float) -> int:
    """0-based index of the ``(size * p)``-th order statistic.

    The paper defines ``q_p(S)`` as the ``(np)``-th smallest element; we
    use ``ceil(size * p)`` clamped into ``[1, size]``, minus one for
    0-based indexing.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rank = math.ceil(size * p)
    rank = min(max(rank, 1), size)
    return rank - 1


def quantile_of_sorted(sorted_values: np.ndarray, p: float) -> float:
    """The ``p``-quantile (order statistic) of an ascending-sorted array."""
    sorted_values = np.asarray(sorted_values)
    return float(sorted_values[quantile_index(sorted_values.shape[0], p)])


def normal_order_ci(sample_size: int, p: float, delta: float) -> tuple[int, int]:
    """Normal-approximation rank bounds for the population ``p``-quantile.

    Paper Equation 11: with probability at least ``1 - delta`` the
    population quantile lies between the ``l``-th and ``u``-th order
    statistics of the subsample, where

        l = s p - z * sqrt(s p (1 - p)),   u = s p + z * sqrt(s p (1 - p))

    and ``z = Phi^-1(1 - delta / 2)`` (the paper's worked example uses
    z = 2.576 for delta = 0.01, the two-sided critical value).

    Returns 1-based ranks clamped into ``[1, sample_size]``.
    """
    _validate(sample_size, p, delta)
    z = stats.norm.ppf(1.0 - delta / 2.0)
    center = sample_size * p
    spread = z * math.sqrt(sample_size * p * (1.0 - p))
    lower = int(math.floor(center - spread))
    upper = int(math.ceil(center + spread))
    return _clamp_ranks(lower, upper, sample_size)


def binomial_order_ci(sample_size: int, p: float, delta: float) -> tuple[int, int]:
    """Exact binomial rank bounds (Equation 10) via binomial quantiles.

    Chooses symmetric tail masses of ``delta / 2`` each. The coverage
    guarantee ``>= 1 - delta`` holds whenever the unclamped ranks fall
    inside ``[1, sample_size]`` — i.e. the sample is large enough that an
    order statistic can carry each tail. For very small ``sample_size *
    p`` (or ``* (1-p)``) the ranks clamp to the sample extremes and the
    interval is best-effort; tKDC's bootstrap tolerates this because
    invalid bounds are detected and backed off (Algorithm 3).
    Returns 1-based ranks clamped into ``[1, sample_size]``.
    """
    _validate(sample_size, p, delta)
    # The number of subsample values below the population quantile is
    # Binomial(s, p); rank bounds are its delta/2 and 1-delta/2 quantiles.
    lower = int(stats.binom.ppf(delta / 2.0, sample_size, p))
    upper = int(stats.binom.ppf(1.0 - delta / 2.0, sample_size, p)) + 1
    return _clamp_ranks(lower, upper, sample_size)


def order_statistic_coverage(sample_size: int, p: float, lower: int, upper: int) -> float:
    """Probability that order statistics ``[lower, upper]`` bracket the quantile.

    Evaluates the paper's Equation 10 directly:
    ``sum_{i=lower..upper} C(s, i) p^i (1 - p)^(s - i)``.
    Ranks are 1-based; useful for verifying CI calibration in tests.
    """
    if not 1 <= lower <= upper <= sample_size:
        raise ValueError(f"need 1 <= lower <= upper <= {sample_size}, got [{lower}, {upper}]")
    return float(
        stats.binom.cdf(upper, sample_size, p) - stats.binom.cdf(lower - 1, sample_size, p)
    )


def _validate(sample_size: int, p: float, delta: float) -> None:
    if sample_size < 1:
        raise ValueError(f"sample_size must be >= 1, got {sample_size}")
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def _clamp_ranks(lower: int, upper: int, sample_size: int) -> tuple[int, int]:
    lower = min(max(lower, 1), sample_size)
    upper = min(max(upper, lower), sample_size)
    return lower, upper
