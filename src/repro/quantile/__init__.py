"""Order-statistics machinery for probabilistic quantile bounds.

Implements the paper's Equations 10-11: confidence intervals on a
population quantile derived from the order statistics of a random
subsample, used by tKDC's bootstrapped threshold estimation.
"""

from repro.quantile.order_stats import (
    binomial_order_ci,
    normal_order_ci,
    order_statistic_coverage,
    quantile_index,
    quantile_of_sorted,
)

__all__ = [
    "binomial_order_ci",
    "normal_order_ci",
    "order_statistic_coverage",
    "quantile_index",
    "quantile_of_sorted",
]
