"""Likelihood cross-validation for the bandwidth scale factor.

The paper uses Scott's rule with a user factor ``b`` (Equation 4) and
cites the bandwidth-selection literature for tuning it. This module
implements the standard leave-one-out likelihood criterion over a grid
of candidate factors:

    score(b) = mean_i log f_{-i}(x_i)

where ``f_{-i}`` is the KDE trained without point ``i``. Evaluated on a
random scoring subsample for tractability; the exact per-point LOO
density is recovered algebraically from the full-sample density
(``f_{-i}(x) = (n f(x) - K_b(0)) / (n - 1)``), so no model refits are
needed inside a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.bandwidth import scotts_rule
from repro.kernels.factory import KERNELS
from repro.validation import as_finite_matrix

#: Default candidate multipliers around Scott's rule.
DEFAULT_CANDIDATES = (0.25, 0.5, 1.0, 2.0, 4.0)

#: Floor for log-densities so empty neighbourhoods don't produce -inf.
_LOG_FLOOR = -745.0


@dataclass(frozen=True)
class BandwidthSelection:
    """Outcome of the cross-validation sweep."""

    scale: float
    bandwidth: np.ndarray
    scores: dict[float, float]  # candidate scale -> mean LOO log-density


def loo_log_likelihood(
    data: np.ndarray,
    scale: float,
    kernel_name: str = "gaussian",
    sample_size: int = 500,
    seed: int | None = 0,
) -> float:
    """Mean leave-one-out log-density over a scoring subsample."""
    data = as_finite_matrix(data, "data")
    n = data.shape[0]
    if n < 3:
        raise ValueError(f"need at least 3 points for LOO scoring, got {n}")
    kernel = KERNELS[kernel_name](scotts_rule(data, scale=scale))
    scaled = kernel.scale(data)
    rng = np.random.default_rng(seed)
    sample = rng.choice(n, size=min(sample_size, n), replace=False)

    logs = np.empty(sample.shape[0])
    for out_index, i in enumerate(sample):
        diffs = scaled - scaled[i]
        sq = np.einsum("ij,ij->i", diffs, diffs)
        total = float(np.sum(kernel.value(sq)))
        loo = (total - kernel.max_value) / (n - 1)
        logs[out_index] = np.log(loo) if loo > 0 else _LOG_FLOOR
    return float(np.mean(logs))


def select_bandwidth_scale(
    data: np.ndarray,
    candidates: tuple[float, ...] = DEFAULT_CANDIDATES,
    kernel_name: str = "gaussian",
    sample_size: int = 500,
    seed: int | None = 0,
) -> BandwidthSelection:
    """Pick the Scott's-rule factor maximizing LOO log-likelihood.

    >>> import numpy as np
    >>> data = np.random.default_rng(0).normal(size=(800, 2))
    >>> selection = select_bandwidth_scale(data, sample_size=200)
    >>> 0.25 <= selection.scale <= 4.0
    True
    """
    if not candidates:
        raise ValueError("at least one candidate scale is required")
    if any(candidate <= 0 for candidate in candidates):
        raise ValueError(f"candidate scales must be positive, got {candidates}")
    data = as_finite_matrix(data, "data")
    scores = {
        float(candidate): loo_log_likelihood(
            data, candidate, kernel_name=kernel_name,
            sample_size=sample_size, seed=seed,
        )
        for candidate in candidates
    }
    best = max(scores, key=scores.get)  # type: ignore[arg-type]
    return BandwidthSelection(
        scale=best,
        bandwidth=scotts_rule(data, scale=best),
        scores=scores,
    )
