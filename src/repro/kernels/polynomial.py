"""The polynomial (spherical Beta) kernel family: profile (1 - s)^k.

Degree 0 is the spherical uniform kernel, degree 1 the Epanechnikov
kernel (implemented separately in :mod:`repro.kernels.epanechnikov` for
historical parity with the paper), degree 2 the biweight and degree 3
the triweight. All have unit support radius in bandwidth-scaled space,
which lets tKDC's threshold rule discard distant tree nodes exactly.

Normalization: ``∫_{B_d} (1 - |u|^2)^k du = π^(d/2) Γ(k+1) / Γ(k + d/2 + 1)``,
so the scaled-space constant is its reciprocal, divided by ``prod(h)``
for the original-space density.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.base import Kernel


class PolynomialKernel(Kernel):
    """Base class: profile ``max(0, 1 - s)^degree`` on the unit ball."""

    #: Polynomial degree k; subclasses pin it.
    degree: int = 1

    def _compute_norm_constant(self) -> float:
        d, k = self.dim, self.degree
        ball_integral = (
            math.pi ** (d / 2.0) * math.gamma(k + 1.0) / math.gamma(k + d / 2.0 + 1.0)
        )
        return 1.0 / (ball_integral * float(np.prod(self.bandwidth)))

    def profile(self, sq_dists: np.ndarray) -> np.ndarray:
        inside = sq_dists < 1.0
        if self.degree == 0:
            # (1 - s)^0 would be 1 everywhere (0^0 == 1); the uniform
            # profile is the indicator of the open unit ball.
            return inside.astype(np.float64)
        return np.where(inside, np.maximum(0.0, 1.0 - sq_dists) ** self.degree, 0.0)

    def value_scalar(self, sq_dist: float) -> float:
        if sq_dist >= 1.0:
            return 0.0
        return self._norm_constant * (1.0 - sq_dist) ** self.degree

    @property
    def support_sq_radius(self) -> float:
        return 1.0

    @property
    def lipschitz_constant(self) -> float:
        # |d/dr c·(1 - r²)^k| = 2·k·c·r·(1 - r²)^(k-1), maximized on
        # [0, 1] at r = 1/sqrt(2k - 1) for k >= 1. Degree 0 (spherical
        # uniform) is discontinuous at the support edge: genuinely
        # non-Lipschitz, so it keeps the base class's inf.
        k = self.degree
        if k == 0:
            return math.inf
        if k == 1:  # maximum sits at the support edge instead
            return 2.0 * self._norm_constant
        r_star_sq = 1.0 / (2.0 * k - 1.0)
        return (
            2.0 * k * self._norm_constant
            * math.sqrt(r_star_sq) * (1.0 - r_star_sq) ** (k - 1)
        )

    def inverse_profile(self, value: float) -> float:
        if not 0.0 < value <= 1.0:
            raise ValueError(f"value must be in (0, 1], got {value}")
        if self.degree == 0:
            # The uniform profile is the indicator of the unit ball: any
            # value below 1 is only reached at (and beyond) the support
            # edge.
            return 0.0 if value >= 1.0 else 1.0
        return 1.0 - value ** (1.0 / self.degree)


class UniformKernel(PolynomialKernel):
    """Spherical uniform (boxcar) kernel: constant on the unit ball."""

    name = "uniform"
    degree = 0


class BiweightKernel(PolynomialKernel):
    """Biweight (quartic) kernel: profile ``(1 - s)^2``."""

    name = "biweight"
    degree = 2


class TriweightKernel(PolynomialKernel):
    """Triweight kernel: profile ``(1 - s)^3``."""

    name = "triweight"
    degree = 3
