"""Kernel functions and bandwidth selection for kernel density estimation.

Kernels in this package are *radial profiles over bandwidth-scaled space*:
once the data is rescaled by a diagonal bandwidth ``h`` (i.e. ``u = x / h``),
the kernel value depends only on the squared Euclidean distance in the
scaled space. For the Gaussian product kernel this is exactly the paper's
Equation 2 with ``H = diag(h_1^2, ..., h_d^2)``; working in scaled space is
what lets the k-d tree derive density bounds from plain Euclidean distances
to bounding boxes.
"""

from repro.kernels.bandwidth import scotts_rule, silverman_rule
from repro.kernels.base import Kernel
from repro.kernels.crossval import select_bandwidth_scale
from repro.kernels.epanechnikov import EpanechnikovKernel
from repro.kernels.factory import KERNELS, kernel_for_data
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.polynomial import (
    BiweightKernel,
    PolynomialKernel,
    TriweightKernel,
    UniformKernel,
)

__all__ = [
    "Kernel",
    "GaussianKernel",
    "EpanechnikovKernel",
    "PolynomialKernel",
    "UniformKernel",
    "BiweightKernel",
    "TriweightKernel",
    "KERNELS",
    "kernel_for_data",
    "select_bandwidth_scale",
    "scotts_rule",
    "silverman_rule",
]
