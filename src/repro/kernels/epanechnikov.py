"""Spherical Epanechnikov kernel (finite-support extension).

The paper's techniques are kernel-agnostic (Section 2.4: "the techniques
in this work do not depend on specific kernel and bandwidth choices").
The Epanechnikov kernel's finite support lets the threshold pruning rule
discard distant tree nodes *exactly* (their contribution is zero rather
than exponentially small), which we exercise in the kernel ablation bench.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.base import Kernel


def _unit_ball_volume(d: int) -> float:
    """Volume of the d-dimensional unit ball."""
    return math.pi ** (d / 2.0) / math.gamma(d / 2.0 + 1.0)


class EpanechnikovKernel(Kernel):
    """Spherical Epanechnikov kernel in bandwidth-scaled space.

    Profile ``max(0, 1 - s)`` of the squared scaled distance ``s``, with
    support radius 1 (in scaled space). The normalizing constant is
    ``(d + 2) / (2 V_d)`` divided by ``prod(h_i)`` where ``V_d`` is the
    unit-ball volume, which makes the scaled-space kernel integrate to 1.
    """

    name = "epanechnikov"

    def _compute_norm_constant(self) -> float:
        d = self.dim
        scaled_const = (d + 2.0) / (2.0 * _unit_ball_volume(d))
        return scaled_const / float(np.prod(self.bandwidth))

    def profile(self, sq_dists: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - sq_dists)

    def value_scalar(self, sq_dist: float) -> float:
        if sq_dist >= 1.0:
            return 0.0
        return self._norm_constant * (1.0 - sq_dist)

    @property
    def support_sq_radius(self) -> float:
        return 1.0

    @property
    def lipschitz_constant(self) -> float:
        # |d/dr c·(1 - r²)| = 2·c·r, maximized at the support edge r = 1.
        return 2.0 * self._norm_constant

    def inverse_profile(self, value: float) -> float:
        if not 0.0 < value <= 1.0:
            raise ValueError(f"value must be in (0, 1], got {value}")
        return 1.0 - value
