"""Abstract kernel interface.

A :class:`Kernel` is bound to a concrete dimensionality ``d`` and diagonal
bandwidth vector ``h`` at construction time. All distance arguments are
*squared Euclidean distances in bandwidth-scaled space* (``u = x / h``),
so that

    K_H(x_q - x_i) = norm_constant * profile(||u_q - u_i||^2)

where ``profile`` is a monotone non-increasing function with
``profile(0) == 1``. Monotonicity is what makes bounding-box density
bounds valid: the contribution of any point inside a box lies between the
kernel evaluated at the box's max and min squared distances.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Kernel(ABC):
    """A normalized product/radial kernel with diagonal bandwidth.

    Parameters
    ----------
    bandwidth:
        Per-dimension bandwidth vector ``h`` of shape ``(d,)``. Every entry
        must be strictly positive.
    normalize:
        When False the normalizing constant is replaced by 1.0, yielding
        *unnormalized* densities. In very high dimensions (the paper's
        mnist d=256/784 sweeps) the true constant underflows float64;
        classification, quantile thresholds, and pruning are all
        invariant to a global density scale, so unnormalized densities
        preserve every experiment's behaviour.
    """

    #: Short machine-readable kernel name (e.g. ``"gaussian"``).
    name: str = "abstract"

    def __init__(self, bandwidth: np.ndarray, normalize: bool = True) -> None:
        bandwidth = np.asarray(bandwidth, dtype=np.float64)
        if bandwidth.ndim != 1:
            raise ValueError(f"bandwidth must be a 1-d vector, got shape {bandwidth.shape}")
        if not np.all(bandwidth > 0):
            raise ValueError("all bandwidth entries must be strictly positive")
        self._bandwidth = bandwidth
        self._dim = bandwidth.shape[0]
        self.normalized = normalize
        self._norm_constant = self._compute_norm_constant() if normalize else 1.0

    @property
    def bandwidth(self) -> np.ndarray:
        """The per-dimension bandwidth vector ``h``."""
        return self._bandwidth

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` the kernel is bound to."""
        return self._dim

    @property
    def norm_constant(self) -> float:
        """Multiplicative constant that makes the kernel integrate to 1."""
        return self._norm_constant

    @property
    def max_value(self) -> float:
        """The kernel's value at zero distance, ``K_H(0)``."""
        return self._norm_constant

    @property
    def lipschitz_constant(self) -> float:
        """Bound on ``|d K_H / d r|`` w.r.t. the *scaled* distance ``r``.

        Moving a point by ``delta`` in bandwidth-scaled space changes its
        kernel contribution by at most ``lipschitz_constant * delta`` —
        the extent bound the deterministic coreset certificate
        (:mod:`repro.coresets.merge_reduce`) is built on. The base
        implementation returns ``inf`` (no certificate); kernels with a
        differentiable profile override it. Discontinuous kernels
        (spherical uniform) are genuinely non-Lipschitz and keep ``inf``,
        which degrades coreset certification to best-effort.
        """
        return float("inf")

    @abstractmethod
    def _compute_norm_constant(self) -> float:
        """Return the normalizing constant for this kernel/bandwidth."""

    @abstractmethod
    def profile(self, sq_dists: np.ndarray) -> np.ndarray:
        """Unnormalized kernel profile at squared scaled distances.

        ``profile(0) == 1`` and the profile is monotone non-increasing.
        """

    @property
    @abstractmethod
    def support_sq_radius(self) -> float:
        """Squared scaled radius beyond which the kernel is exactly zero.

        ``math.inf`` for kernels with unbounded support (Gaussian).
        """

    @abstractmethod
    def inverse_profile(self, value: float) -> float:
        """Smallest squared scaled distance ``s`` with ``profile(s) <= value``.

        Used to derive guaranteed-error cutoff radii (e.g. for the radial
        KDE baseline). ``value`` must be in ``(0, 1]``.
        """

    def value(self, sq_dists: np.ndarray | float) -> np.ndarray | float:
        """Normalized kernel value(s) at squared scaled distance(s)."""
        return self._norm_constant * self.profile(np.asarray(sq_dists, dtype=np.float64))

    def value_scalar(self, sq_dist: float) -> float:
        """Fast scalar kernel value for the per-node traversal hot path.

        Subclasses override with ``math``-based implementations; the
        default falls back to the array path.
        """
        return float(self.value(sq_dist))

    def scale(self, points: np.ndarray) -> np.ndarray:
        """Map raw coordinates into bandwidth-scaled space (``x / h``)."""
        points = np.asarray(points, dtype=np.float64)
        return points / self._bandwidth

    def sum_at(self, scaled_points: np.ndarray, scaled_query: np.ndarray) -> float:
        """Sum of kernel values from ``scaled_points`` at one scaled query.

        ``scaled_points`` has shape ``(m, d)``; returns the *unaveraged*
        total (callers divide by the training-set size).
        """
        diffs = scaled_points - scaled_query
        sq_dists = np.einsum("ij,ij->i", diffs, diffs)
        return float(np.sum(self.value(sq_dists)))

    def cutoff_radius(self, max_tail_value: float) -> float:
        """Scaled radius beyond which a single point contributes at most
        ``max_tail_value`` (an *unnormalized-by-n* kernel value).

        Raises ``ValueError`` if ``max_tail_value`` exceeds ``max_value``
        (every radius would do; pass something smaller).
        """
        if max_tail_value <= 0:
            raise ValueError("max_tail_value must be positive")
        ratio = max_tail_value / self._norm_constant
        if ratio >= 1.0:
            return 0.0
        return float(np.sqrt(self.inverse_profile(ratio)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(d={self._dim}, h~{np.mean(self._bandwidth):.4g})"
