"""Gaussian product kernel (the paper's default, Equation 2)."""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.base import Kernel


class GaussianKernel(Kernel):
    """Gaussian kernel with diagonal bandwidth matrix ``H = diag(h_i^2)``.

    In bandwidth-scaled space the product of per-dimension Gaussians
    collapses to a radial profile ``exp(-s / 2)`` of the squared Euclidean
    distance ``s``, with normalizing constant
    ``(2 pi)^(-d/2) / prod(h_i)`` — exactly the paper's Equation 2.
    """

    name = "gaussian"

    def _compute_norm_constant(self) -> float:
        log_const = -0.5 * self.dim * math.log(2.0 * math.pi) - float(
            np.sum(np.log(self.bandwidth))
        )
        return math.exp(log_const)

    def profile(self, sq_dists: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * sq_dists)

    def value_scalar(self, sq_dist: float) -> float:
        # math.exp underflows to an OverflowError-free 0.0 only above
        # ~1490 of scaled distance; clamp to avoid raising on extreme
        # outliers.
        exponent = -0.5 * sq_dist
        if exponent < -745.0:
            return 0.0
        return self._norm_constant * math.exp(exponent)

    @property
    def support_sq_radius(self) -> float:
        return math.inf

    @property
    def lipschitz_constant(self) -> float:
        # |d/dr c·exp(-r²/2)| = c·r·exp(-r²/2), maximized at r = 1.
        return self._norm_constant * math.exp(-0.5)

    def inverse_profile(self, value: float) -> float:
        if not 0.0 < value <= 1.0:
            raise ValueError(f"value must be in (0, 1], got {value}")
        return -2.0 * math.log(value)
