"""Bandwidth selection rules (paper Equation 4).

The paper uses Scott's rule with a user-adjustable scale factor ``b``:

    h_i = b * n^(-1 / (d + 4)) * sigma_i

where ``sigma_i`` is the per-dimension standard deviation. We also provide
Silverman's rule as a common alternative. Degenerate dimensions (zero
variance) receive a small floor so the bandwidth matrix stays invertible;
the mnist-like simulator exercises this path.
"""

from __future__ import annotations

import numpy as np

#: Relative floor applied to zero-variance dimensions, as a fraction of the
#: largest per-dimension standard deviation (absolute floor if all are zero).
_SIGMA_FLOOR_FRACTION = 1e-9
_ABSOLUTE_SIGMA_FLOOR = 1e-12


def _guarded_std(data: np.ndarray) -> np.ndarray:
    """Per-dimension standard deviations with a positivity floor."""
    sigma = np.std(data, axis=0)
    largest = float(np.max(sigma)) if sigma.size else 0.0
    floor = max(largest * _SIGMA_FLOOR_FRACTION, _ABSOLUTE_SIGMA_FLOOR)
    return np.maximum(sigma, floor)


def scotts_rule(data: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """Scott's-rule diagonal bandwidth (paper Equation 4).

    Parameters
    ----------
    data:
        Training points of shape ``(n, d)``.
    scale:
        The paper's user-defined factor ``b`` for fine-tuning.

    Returns
    -------
    Bandwidth vector ``h`` of shape ``(d,)``.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n, d = data.shape
    if n < 2:
        raise ValueError(f"need at least 2 points to select a bandwidth, got {n}")
    if scale <= 0:
        raise ValueError(f"bandwidth scale must be positive, got {scale}")
    return scale * n ** (-1.0 / (d + 4)) * _guarded_std(data)


def silverman_rule(data: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """Silverman's rule-of-thumb diagonal bandwidth.

    ``h_i = scale * (4 / (d + 2))^(1 / (d + 4)) * n^(-1 / (d + 4)) * sigma_i``
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n, d = data.shape
    if n < 2:
        raise ValueError(f"need at least 2 points to select a bandwidth, got {n}")
    if scale <= 0:
        raise ValueError(f"bandwidth scale must be positive, got {scale}")
    factor = (4.0 / (d + 2.0)) ** (1.0 / (d + 4))
    return scale * factor * n ** (-1.0 / (d + 4)) * _guarded_std(data)
