"""Kernel construction helpers shared by the classifier and baselines."""

from __future__ import annotations

import numpy as np

from repro.kernels.bandwidth import scotts_rule
from repro.kernels.base import Kernel
from repro.kernels.epanechnikov import EpanechnikovKernel
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.polynomial import BiweightKernel, TriweightKernel, UniformKernel

#: Kernel families available by name.
KERNELS: dict[str, type[Kernel]] = {
    "gaussian": GaussianKernel,
    "epanechnikov": EpanechnikovKernel,
    "uniform": UniformKernel,
    "biweight": BiweightKernel,
    "triweight": TriweightKernel,
}


def kernel_for_data(
    data: np.ndarray,
    name: str = "gaussian",
    scale: float = 1.0,
    normalize: bool = True,
) -> Kernel:
    """Bind a named kernel to a Scott's-rule bandwidth for ``data``.

    This is the paper's default configuration: product kernel, diagonal
    bandwidth from Equation 4 with user factor ``scale`` (= ``b``).
    ``normalize=False`` yields unnormalized densities for very high
    dimensions where the true constant underflows (see
    :class:`repro.kernels.base.Kernel`).
    """
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; choose from {sorted(KERNELS)}")
    return KERNELS[name](scotts_rule(data, scale=scale), normalize=normalize)
