# Convenience targets for the tKDC reproduction.

PYTHON ?= python

.PHONY: install test test-fast test-faults bench bench-batch bench-coreset bench-coreset-smoke bench-robustness experiments demo clean

install:
	pip install -e ".[test]"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/unit -q

# Deterministic fault-injection suite: injected corruption, killed and
# stalled pool workers, budget degradation, input hardening.
test-faults:
	$(PYTHON) -m pytest tests/robustness -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-batch:
	$(PYTHON) benchmarks/bench_batch_traversal.py

bench-coreset:
	$(PYTHON) benchmarks/bench_coreset.py

# Tiny-size smoke of the coreset bench (CI; finishes in seconds and
# does not overwrite BENCH_coreset.json).
bench-coreset-smoke:
	$(PYTHON) benchmarks/bench_coreset.py --smoke

bench-robustness:
	$(PYTHON) benchmarks/bench_robustness.py

experiments:
	$(PYTHON) -m repro run all --save

demo:
	$(PYTHON) -m repro demo

clean:
	rm -rf results/ .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
