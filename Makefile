# Convenience targets for the tKDC reproduction.

PYTHON ?= python

.PHONY: install test test-fast test-faults test-recovery test-serve test-streaming serve-smoke bench bench-batch bench-coreset bench-coreset-smoke bench-gate bench-hbe bench-hbe-smoke bench-robustness bench-serving bench-serving-smoke bench-suite experiments demo clean

install:
	pip install -e ".[test]"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/unit -q

# Deterministic fault-injection suite: injected corruption, killed and
# stalled pool workers, budget degradation, input hardening.
test-faults:
	$(PYTHON) -m pytest tests/robustness -q

# Serving-daemon suite: admission control, deadlines, circuit breaker,
# verified hot reload, and the overload+faults soak test.
test-serve:
	$(PYTHON) -m pytest tests/serve -q

# Streaming-ingest suite: coreset sketch, drift monitor, crash-isolated
# refits, verified hot swap, and the drift+faults soak test.
test-streaming:
	$(PYTHON) -m pytest tests/streaming -q

# Durability suite: WAL checksums and torn-tail handling, crash
# recovery, the kill -9 ingest soak, and fleet /ingest owner takeover.
test-recovery:
	$(PYTHON) -m pytest tests/streaming/test_wal.py tests/streaming/test_recovery.py "tests/streaming/test_soak.py::test_kill9_soak_zero_acknowledged_loss" tests/serve/test_fleet_ingest.py -q

# End-to-end daemon smoke as a real subprocess: start, classify, drain
# on SIGTERM. CI wraps this in a hard `timeout`.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-batch:
	$(PYTHON) benchmarks/bench_batch_traversal.py

bench-coreset:
	$(PYTHON) benchmarks/bench_coreset.py

# Tiny-size smoke of the coreset bench (CI; finishes in seconds and
# does not overwrite BENCH_coreset.json).
bench-coreset-smoke:
	$(PYTHON) benchmarks/bench_coreset.py --smoke

# Regression gate: rerun the smoke benchmarks and compare key metrics
# (labels, kernels/query, batch speedup, coreset agreement) against the
# committed BENCH_*.json baselines. Exits non-zero on regression.
bench-gate:
	$(PYTHON) scripts/bench_gate.py

# Orchestrated smoke-suite end to end (docs/benchmarking.md): run the
# gate-compatible smoke grid twice as two named experiments in a fresh
# store, then render the comparative report — table to stdout, HTML to
# results/bench_report.html. Exercises spec expansion, journaling, the
# store, and the significance machinery on a seconds-scale workload.
# CI wraps this in a hard `timeout` and uploads the HTML artifact.
bench-suite:
	rm -rf .repro-bench-suite
	$(PYTHON) -m repro bench run --suite smoke --experiment smoke-a --store .repro-bench-suite
	$(PYTHON) -m repro bench run --suite smoke --experiment smoke-b --store .repro-bench-suite
	mkdir -p results
	$(PYTHON) -m repro bench report smoke-a smoke-b --store .repro-bench-suite --html results/bench_report.html

# HBE engine vs batch across dimensionality (n=50k; regenerates
# BENCH_hbe.json — takes tens of minutes at full size).
bench-hbe:
	$(PYTHON) benchmarks/bench_hbe.py

# Tiny-size smoke of the hbe bench (CI; d=32, report not written).
bench-hbe-smoke:
	$(PYTHON) benchmarks/bench_hbe.py --smoke

bench-robustness:
	$(PYTHON) benchmarks/bench_robustness.py

bench-serving:
	$(PYTHON) benchmarks/bench_serving.py

# Tiny-size smoke of the serving bench (CI; report not written).
bench-serving-smoke:
	$(PYTHON) benchmarks/bench_serving.py --smoke

experiments:
	$(PYTHON) -m repro run all --save

demo:
	$(PYTHON) -m repro demo

clean:
	rm -rf results/ .pytest_cache .hypothesis .repro-bench .repro-bench-suite
	find . -name __pycache__ -type d -exec rm -rf {} +
