# Convenience targets for the tKDC reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench experiments demo clean

install:
	pip install -e ".[test]"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/unit -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PYTHON) -m repro run all --save

demo:
	$(PYTHON) -m repro demo

clean:
	rm -rf results/ .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
