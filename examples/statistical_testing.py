"""Density-based statistical testing on a galaxy-survey-like sky map.

The paper's Section 2.1 physics use case: given a spatial distribution
of galaxy mass, bound the probability density of an observation and turn
it into a p-value ("how unusual is a detection at this location?").
Low-density regions (voids) are the scientifically interesting ones.

Run:  python examples/statistical_testing.py
"""

import numpy as np

from repro import TKDCClassifier, TKDCConfig
from repro.datasets.generators import make_galaxy_like


def density_p_value(clf: TKDCClassifier, observation: np.ndarray) -> float:
    """Empirical tail probability of an observation's density.

    The fraction of the training distribution with density at most the
    observation's — small values mean the observation sits in a rarely
    occupied (void-like) region of the sky.
    """
    scores = np.asarray(clf.training_scores_)
    density = clf.estimate_density(observation[None, :])[0]
    return float(np.mean(scores <= density))


def main() -> None:
    sky = make_galaxy_like(15_000, seed=3)
    clf = TKDCClassifier(TKDCConfig(p=0.05, seed=3)).fit(sky)

    print("=== density-based significance of sky detections ===")
    print(f"survey: {sky.shape[0]} galaxies; t(0.05) = {clf.threshold.value:.4g}\n")

    # Three hypothetical detections: inside a cluster node, on a
    # filament, and deep in a void.
    names = ["cluster core", "mid filament", "deep void"]
    detections = np.array([
        sky[np.argmax(clf.training_scores_)],       # densest observed spot
        0.5 * (sky[0] + sky[1]),                    # between two galaxies
        [58.0, -58.0],                              # survey edge
    ])
    for name, detection in zip(names, detections):
        p_value = density_p_value(clf, detection)
        label = clf.classify(detection[None, :])[0]
        verdict = "typical" if p_value > 0.05 else "rare (candidate void)"
        print(f"{name:13s} at ({detection[0]:7.2f}, {detection[1]:7.2f}): "
              f"density-rank p-value = {p_value:.4f} -> {verdict} [{label.name}]")

    # Bounded densities also feed likelihood-ratio style statistics: the
    # certified interval from decision_bounds is deterministic.
    bounds = clf.decision_bounds(detections)[0]
    print(f"\ncertified density interval at the cluster core: "
          f"[{bounds.lower:.4g}, {bounds.upper:.4g}]")
    print(f"kernel evaluations per query so far: {clf.stats.kernels_per_query:.1f} "
          f"of {sky.shape[0]}")


if __name__ == "__main__":
    main()
