"""Quickstart: classify points by density with tKDC in ~20 lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TKDCClassifier, TKDCConfig


def main() -> None:
    # A bimodal 2-d dataset: two clusters with a sparse gap.
    rng = np.random.default_rng(0)
    cluster_a = rng.normal(size=(3000, 2)) * 0.5 + [-2.0, 0.0]
    cluster_b = rng.normal(size=(3000, 2)) * 0.5 + [2.0, 0.0]
    data = np.concatenate([cluster_a, cluster_b])

    # Classify the lowest-density 5% of the distribution as LOW.
    config = TKDCConfig(p=0.05, epsilon=0.01, seed=0)
    clf = TKDCClassifier(config).fit(data)

    print(f"estimated threshold t(p=0.05) = {clf.threshold.value:.5g}")
    print(f"bracket: [{clf.threshold.lower:.5g}, {clf.threshold.upper:.5g}]")

    # Classify new observations.
    queries = np.array([
        [-2.0, 0.0],   # center of cluster A  -> HIGH
        [0.0, 0.0],    # the sparse gap       -> LOW
        [2.2, 0.3],    # inside cluster B     -> HIGH
        [6.0, 6.0],    # far away             -> LOW
    ])
    for point, label in zip(queries, clf.classify(queries)):
        print(f"  {point} -> {label.name}")

    # The whole point of tKDC: classification costs a tiny fraction of
    # the n kernel evaluations exact KDE would need per query.
    stats = clf.stats
    print(f"\nkernel evaluations per query: {stats.kernels_per_query:.1f} "
          f"(naive KDE would need {data.shape[0]})")
    print(f"pruning-rule stops: {stats.prunes}, grid shortcuts: {stats.grid_hits}")


if __name__ == "__main__":
    main()
