"""tKDC vs kNN-distance vs LOF: three unsupervised outlier detectors.

Paper Section 5 positions density classification among the classic
outlier detectors. This example runs all three on the same workload —
two clusters of *different* densities with planted anomalies — and
highlights the qualitative differences:

- **kNN distance** is a global criterion: it over-flags the sparse
  cluster's legitimate members.
- **LOF** adapts locally but returns dimensionless ratios.
- **tKDC** flags globally-low-probability-density points *and* its
  scores are interpretable probability densities (usable for p-values,
  contours, likelihoods downstream).

Run:  python examples/outlier_method_comparison.py
"""

import numpy as np

from repro import TKDCClassifier, TKDCConfig
from repro.analysis.accuracy import precision_recall
from repro.bench.reporting import ConsoleTable
from repro.outliers import KNNDistanceDetector, LocalOutlierFactor, OneClassSVM


def build_workload(rng: np.random.Generator):
    dense = rng.normal(size=(4000, 2)) * 0.3
    sparse = rng.normal(size=(1000, 2)) * 2.0 + [12.0, 0.0]
    anomalies = np.column_stack([
        rng.uniform(-10.0, -6.0, size=25),
        rng.uniform(6.0, 10.0, size=25),
    ])
    data = np.concatenate([dense, sparse, anomalies])
    truth = np.concatenate([
        np.zeros(len(dense) + len(sparse)), np.ones(len(anomalies))
    ]).astype(int)
    sparse_slice = slice(len(dense), len(dense) + len(sparse))
    return data, truth, sparse_slice


def main() -> None:
    rng = np.random.default_rng(17)
    data, truth, sparse_slice = build_workload(rng)
    contamination = 0.01

    tkdc = TKDCClassifier(TKDCConfig(p=contamination, seed=17)).fit(data)
    tkdc_labels = (np.asarray(tkdc.training_labels_) == 0).astype(int)

    knn = KNNDistanceDetector(k=10, contamination=contamination).fit(data)
    knn_labels = knn.training_labels()

    lof = LocalOutlierFactor(k=10, contamination=contamination).fit(data)
    lof_labels = lof.training_labels()

    ocsvm = OneClassSVM(nu=contamination).fit(data)
    ocsvm_labels = ocsvm.training_labels()

    print("=== unsupervised outlier detectors on a mixed-density workload ===")
    print(f"{data.shape[0]} points: dense cluster (4000), sparse cluster (1000), "
          f"25 planted anomalies; flagging the top {contamination:.0%}\n")

    table = ConsoleTable(
        ["method", "recall", "precision", "sparse_cluster_flagged", "score_semantics"]
    )
    semantics = {
        "tkdc": "probability density",
        "knn-distance": "distance (unitful)",
        "lof": "density ratio",
        "ocsvm": "margin distance",
    }
    for name, labels in (
        ("tkdc", tkdc_labels), ("knn-distance", knn_labels),
        ("lof", lof_labels), ("ocsvm", ocsvm_labels),
    ):
        precision, recall = precision_recall(truth, labels)
        table.add_row({
            "method": name,
            "recall": recall,
            "precision": precision,
            "sparse_cluster_flagged": float(np.mean(labels[sparse_slice])),
            "score_semantics": semantics[name],
        })
    table.print()

    print("\nreading the table:")
    print("- the 25 anomalies form a loose micro-cluster: LOF sees them as")
    print("  locally consistent (its classic blind spot) and flags none;")
    print("- knn-distance and tKDC both catch them; tKDC additionally keeps")
    print("  the sparse-but-legitimate cluster's flag rate near the 1% base")
    print("  rate while its scores remain actual probability densities.")

    # Only the KDE-based score supports downstream statistics directly:
    anomaly = np.array([[-8.0, 8.0]])
    density = tkdc.estimate_density(anomaly)[0]
    p_value = float(np.mean(np.asarray(tkdc.training_scores_) <= density))
    print(f"\ntKDC extra: the anomaly at (-8, 8) has probability density "
          f"{density:.3g},")
    print(f"giving an empirical density-rank p-value of {p_value:.4f} — "
          "a statistically interpretable quantity the paper's use cases need.")


if __name__ == "__main__":
    main()
