"""Streaming anomaly monitoring with the incremental classifier.

A monitoring scenario on top of the paper's algorithm: energy-load
telemetry (the tmy3 simulator) arrives in batches. Each batch is first
*screened* against the current model — points in low-density regions are
flagged — then inserted, with the model refitting itself once enough new
data has accumulated. A mid-stream regime change (a new building type
coming online) shows both behaviours: its first batches are flagged as
anomalous, and after refits the model absorbs the new mode.

Run:  python examples/streaming_monitoring.py
"""

import numpy as np

from repro import IncrementalTKDC, Label, TKDCConfig
from repro.datasets.generators import make_tmy3


def new_regime(n: int, rng: np.random.Generator) -> np.ndarray:
    """Load profiles from a building type the training data never saw."""
    hours = np.linspace(0.0, 2.0 * np.pi, 8, endpoint=False)
    level = 6.0 + 0.3 * rng.normal(size=(n, 1))
    curve = level + 1.5 * np.sin(3.0 * hours[None, :])
    return curve + rng.normal(scale=0.08, size=(n, 8))


def main() -> None:
    rng = np.random.default_rng(11)
    # One coherent telemetry stream: the first 6000 profiles train the
    # model, later slices arrive as "normal" batches from the same
    # distribution.
    stream = make_tmy3(6000 + 4 * 400, seed=11)
    model = IncrementalTKDC(TKDCConfig(p=0.01, seed=11), refit_fraction=0.2)
    model.fit(stream[:6000])
    print("=== streaming energy-load monitoring (tmy3) ===")
    print(f"initial model: {model.n_indexed} profiles, "
          f"t(0.01) = {model.classifier.threshold.value:.4g}\n")

    batches = 8
    for batch_index in range(batches):
        if batch_index < 4:
            start = 6000 + batch_index * 400
            batch = stream[start : start + 400]
            kind = "normal"
        else:
            batch = new_regime(400, rng)
            kind = "NEW REGIME"
        flags = model.classify(batch)
        flagged = int(np.sum([label is Label.LOW for label in flags]))
        refits_before = model.refits
        model.insert(batch)
        refit_note = "  -> model refit" if model.refits > refits_before else ""
        print(f"batch {batch_index + 1} ({kind:10s}): "
              f"{flagged:3d}/400 flagged anomalous{refit_note}")

    print(f"\nfinal model: {model.n_total} profiles after {model.refits} refits")
    print("note: the new regime's first batch is fully flagged; once its")
    print("points are inserted they form a dense mode (counted exactly via")
    print("the insert buffer), so later batches from it look normal.")


if __name__ == "__main__":
    main()
