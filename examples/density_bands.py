"""Nested density bands and dual-tree batch classification.

Two extensions built on top of the paper's algorithm:

1. **Band classification** — one traversal per query assigns it to a
   ladder of quantile level sets (the 20%/50%/80% contours at once),
   instead of re-running tKDC per threshold.
2. **Dual-tree batching** — classifying a dense grid of the plane (the
   paper's region-visualization workload) shares traversal work between
   neighbouring queries via a second k-d tree over the queries.

Run:  python examples/density_bands.py
"""

import time

import numpy as np

from repro import BandClassifier, TKDCClassifier, TKDCConfig
from repro.datasets.generators import make_galaxy_like


def main() -> None:
    sky = make_galaxy_like(12_000, seed=1)
    clf = TKDCClassifier(TKDCConfig(p=0.2, seed=1)).fit(sky)

    # --- nested bands: galaxy density strata in one pass -------------
    bands = BandClassifier(clf, quantiles=(0.2, 0.5, 0.8))
    print("=== galaxy sky survey: density strata (bands) ===")
    names = ["void", "field", "filament", "cluster"]
    training = bands.training_bands()
    for band, name in enumerate(names):
        fraction = float(np.mean(training == band))
        print(f"  band {band} ({name:8s}): {fraction:6.1%} of galaxies")

    # Band map of the sky rendered as ASCII density strata.
    grid_n = 44
    xs = np.linspace(sky[:, 0].min(), sky[:, 0].max(), grid_n)
    ys = np.linspace(sky[:, 1].min(), sky[:, 1].max(), grid_n // 2)
    grid_x, grid_y = np.meshgrid(xs, ys, indexing="ij")
    cells = np.column_stack([grid_x.ravel(), grid_y.ravel()])
    cell_bands = bands.classify_bands(cells).reshape(grid_n, grid_n // 2)
    glyphs = " .+#"
    print("\nsky band map ('.'=field, '+'=filament, '#'=cluster):")
    for j in range(cell_bands.shape[1] - 1, -1, -1):
        print("".join(glyphs[cell_bands[i, j]] for i in range(grid_n)))

    # --- dual-tree batching on a dense classification grid -----------
    dense_n = 100
    xs = np.linspace(sky[:, 0].min(), sky[:, 0].max(), dense_n)
    ys = np.linspace(sky[:, 1].min(), sky[:, 1].max(), dense_n)
    grid_x, grid_y = np.meshgrid(xs, ys, indexing="ij")
    queries = np.column_stack([grid_x.ravel(), grid_y.ravel()])

    start = time.perf_counter()
    single = clf.classify(queries)
    single_seconds = time.perf_counter() - start
    start = time.perf_counter()
    dual = clf.classify_batch(queries)
    dual_seconds = time.perf_counter() - start

    agreement = float(np.mean([int(a) == int(b) for a, b in zip(single, dual)]))
    print(f"\n=== dual-tree batch: {queries.shape[0]} grid queries ===")
    print(f"per-query classify : {single_seconds:.2f}s")
    print(f"dual-tree batch    : {dual_seconds:.2f}s "
          f"({single_seconds / dual_seconds:.1f}x)")
    print(f"label agreement    : {agreement:.4f}")
    print(f"block settlements  : {int(clf.stats.extras.get('dual_block_hits', 0))}")


if __name__ == "__main__":
    main()
