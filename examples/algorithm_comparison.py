"""Head-to-head comparison of every Table 2 algorithm on one workload.

A miniature of the paper's Figure 7: train each algorithm on the tmy3
energy-profile simulator and classify every point, reporting amortized
throughput, kernel evaluations per point, and agreement with the exact
classifier.

Run:  python examples/algorithm_comparison.py [n]
"""

import sys

import numpy as np

from repro.bench.algorithms import AMORTIZED_ALGORITHMS, run_amortized
from repro.bench.reporting import ConsoleTable
from repro.datasets.registry import load


def main(n: int = 6000) -> None:
    data = load("tmy3", n=n, d=4, seed=0)
    print(f"=== algorithm comparison: tmy3 simulator, n={n}, d=4, p=0.01 ===")

    runs = {}
    for name in AMORTIZED_ALGORITHMS:
        runs[name] = run_amortized(name, data, p=0.01, seed=0)

    exact = runs["simple"].labels
    table = ConsoleTable(
        ["algorithm", "throughput", "train_s", "kernels_per_pt", "agreement"]
    )
    for name, run in runs.items():
        table.add_row({
            "algorithm": name,
            "throughput": run.amortized_throughput,
            "train_s": run.total_seconds,
            "kernels_per_pt": run.kernels_per_item,
            "agreement": float(np.mean(run.labels == exact)),
        })
    table.print()

    tkdc, simple = runs["tkdc"], runs["simple"]
    print(f"\ntKDC evaluated {tkdc.kernels_per_item:.1f} kernels/point vs "
          f"{simple.kernels_per_item:.0f} for exact KDE "
          f"({simple.kernels_per_item / tkdc.kernels_per_item:.0f}x fewer), "
          f"with {np.mean(tkdc.labels == exact):.1%} label agreement.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6000)
