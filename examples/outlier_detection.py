"""Density-based outlier detection on the shuttle sensor simulator.

The paper's motivating scenario (Section 2.1): a production engineer
looks for unusual operating modes in shuttle telemetry. Points in
low-density filaments between the main operating-mode clusters are the
natural outlier candidates. This example plants rare "anomalous mode"
readings, runs tKDC, and reports how well the density classifier
recovers them — plus the cost savings versus exact KDE.

Run:  python examples/outlier_detection.py
"""

import numpy as np

from repro import TKDCClassifier, TKDCConfig
from repro.analysis.accuracy import f1_score, precision_recall
from repro.datasets.generators import make_shuttle


def main() -> None:
    rng = np.random.default_rng(7)

    # Normal telemetry: the 2 informative shuttle measurement columns.
    normal = make_shuttle(12_000, seed=7)[:, [3, 5]]

    # Planted anomalies: isolated readings from operating modes the
    # shuttle never enters — scattered far outside every cluster and
    # filament, each one alone in its region of measurement space.
    angles = rng.uniform(0.0, 2.0 * np.pi, size=40)
    radii = rng.uniform(400.0, 600.0, size=40)
    anomalies = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    data = np.concatenate([normal, anomalies])
    truth = np.concatenate([np.zeros(len(normal)), np.ones(len(anomalies))])

    # Classify the lowest-density 2% as outliers.
    clf = TKDCClassifier(TKDCConfig(p=0.02, seed=7)).fit(data)
    predicted_outlier = (np.asarray(clf.training_labels_) == 0).astype(int)

    precision, recall = precision_recall(truth, predicted_outlier)
    print("=== density-based outlier detection (shuttle telemetry) ===")
    print(f"points: {len(data)} ({len(anomalies)} planted anomalies)")
    print(f"threshold t(0.02) = {clf.threshold.value:.4g}")
    print(f"flagged as outliers: {int(predicted_outlier.sum())}")
    print(f"anomaly recall:    {recall:.3f}")
    print(f"anomaly precision: {precision:.3f}  "
          "(low-density filament points are legitimate flags too)")
    print(f"F1 on planted anomalies: {f1_score(truth, predicted_outlier):.3f}")

    stats = clf.stats
    saved = 1.0 - stats.kernels_per_query / len(data)
    print(f"\nkernel evaluations per point: {stats.kernels_per_query:.1f} "
          f"of {len(data)} ({saved:.1%} pruned)")

    # Rank the most anomalous observations for triage.
    scores = np.asarray(clf.training_scores_)
    worst = np.argsort(scores)[:5]
    print("\nmost anomalous readings (lowest density first):")
    for idx in worst:
        kind = "planted" if truth[idx] else "natural"
        print(f"  A={data[idx, 0]:8.2f}  B={data[idx, 1]:8.2f}  "
              f"density={scores[idx]:.3g}  [{kind}]")


if __name__ == "__main__":
    main()
