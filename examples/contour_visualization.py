"""Region-boundary visualization: density contours of iris-like data.

Reproduces the paper's Figure 2a use case — understanding the contour
lines that separate distinct modes of a distribution (here, the two
iris sepal clusters). Renders the classified HIGH-density region as
ASCII art at several quantile levels and extracts the exact iso-lines
with marching squares.

Run:  python examples/contour_visualization.py
"""

import numpy as np

from repro import TKDCClassifier, TKDCConfig
from repro.analysis.contours import (
    classification_mask,
    density_grid,
    marching_squares,
    render_ascii,
)
from repro.datasets.generators import make_iris_like


def main() -> None:
    data = make_iris_like(3000, seed=0)
    xlim = (float(data[:, 0].min()) - 0.3, float(data[:, 0].max()) + 0.3)
    ylim = (float(data[:, 1].min()) - 0.3, float(data[:, 1].max()) + 0.3)

    print("=== density regions of iris-like sepal measurements ===")
    print("x: sepal width, y: sepal length; '#' marks density above t(p)\n")

    for p in (0.1, 0.5):
        clf = TKDCClassifier(TKDCConfig(p=p, seed=0)).fit(data)
        __, __, mask = classification_mask(clf.classify, xlim, ylim, 56, 22)
        print(f"--- p = {p}: the densest {1 - p:.0%} of the distribution ---")
        print(render_ascii(mask))
        print()

    # Extract the exact contour line at p = 0.5 with marching squares —
    # what a plotting library would draw as the level-set boundary.
    clf = TKDCClassifier(TKDCConfig(p=0.5, seed=0)).fit(data)
    xs, ys, values = density_grid(clf.estimate_density, xlim, ylim, 48, 48)
    segments = marching_squares(xs, ys, values, clf.threshold.value)
    total_length = sum(
        float(np.hypot(x1 - x0, y1 - y0)) for (x0, y0), (x1, y1) in segments
    )
    print(f"marching-squares contour at t(0.5): {len(segments)} segments, "
          f"total length {total_length:.2f}")
    print("(two separate closed curves — one per sepal cluster — as in Fig 2a)")


if __name__ == "__main__":
    main()
