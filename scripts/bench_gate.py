"""Thin launcher for the bench regression gate.

Re-runs the smoke-size benchmarks and compares key metrics against the
committed ``BENCH_*.json`` baselines; exits non-zero on regression.
All logic lives in :mod:`repro.bench.gate` so tests can drive it with a
doctored baseline directory. Run via ``make bench-gate``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.gate import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
