"""End-to-end smoke of the serving daemon as a real OS process.

Fits a tiny model, launches ``python -m repro serve`` as a subprocess,
waits for readiness, exercises the health/classify/statz endpoints,
then sends SIGTERM and requires a clean drain (exit code 0). Run via
``make serve-smoke``; CI wraps it in a hard ``timeout`` so a daemon
that fails to drain turns into a job failure, not a stuck runner.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.core.classifier import TKDCClassifier  # noqa: E402
from repro.core.config import TKDCConfig  # noqa: E402
from repro.io.models import save_model  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402

PORT = 7399


def fail(message: str, process: subprocess.Popen | None = None) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    if process is not None and process.poll() is None:
        process.kill()
    return 1


def main() -> int:
    rng = np.random.default_rng(11)
    data = np.concatenate([
        rng.normal(size=(500, 2)) * 0.5 + np.array([-2.0, 0.0]),
        rng.normal(size=(500, 2)) * 0.5 + np.array([2.0, 0.0]),
    ])
    clf = TKDCClassifier(TKDCConfig(p=0.05, seed=1)).fit(data)

    with tempfile.TemporaryDirectory() as tmp:
        model_path = save_model(Path(tmp) / "smoke", clf)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--model", str(model_path),
                "--port", str(PORT),
                "--default-deadline-ms", "2000",
            ],
            env={**os.environ, "PYTHONPATH": str(SRC)},
            cwd=REPO,
        )
        client = ServeClient("127.0.0.1", PORT, timeout=30.0)
        try:
            if not client.wait_ready(30.0):
                return fail("daemon never became ready", process)

            status, payload = client.healthz()
            if status != 200 or payload.get("status") != "ok":
                return fail(f"healthz: {status} {payload}", process)

            status, payload = client.classify(
                [[-2.0, 0.0], [0.0, 9.0]], deadline_ms=2000
            )
            if status != 200:
                return fail(f"classify: {status} {payload}", process)
            if payload["labels"][0] != 1 or payload["labels"][1] != 0:
                return fail(f"unexpected labels: {payload['labels']}", process)

            status, payload = client.classify([[1.0]], deadline_ms=2000)
            if status != 400:
                return fail(f"bad request not rejected: {status}", process)

            status, statz = client.statz()
            if status != 200 or statz["submitted"] != 2:
                return fail(f"statz: {status} {statz}", process)
            if statz["completed"] != 1 or statz["rejected"] != 1:
                return fail(f"statz counters off: {statz}", process)

            status, text = client.metrics()
            if status != 200:
                return fail(f"metrics: {status}", process)
            # /metrics and /statz read the same registry cells, so the
            # exposition must agree with the JSON counters exactly.
            for needle in (
                'tkdc_serve_events_total{event="submitted"} 2',
                'tkdc_serve_events_total{event="completed"} 1',
                'tkdc_serve_events_total{event="rejected"} 1',
                "tkdc_serve_request_latency_seconds_bucket",
                "# TYPE tkdc_serve_request_latency_seconds histogram",
            ):
                if needle not in text:
                    return fail(f"metrics missing {needle!r}:\n{text}", process)
        except OSError as exc:
            return fail(f"daemon connection failed: {exc}", process)

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            return fail("daemon did not drain within 30s of SIGTERM", process)
        if code != 0:
            return fail(f"daemon exited {code} after SIGTERM")

    print(
        "serve smoke OK: ready -> classify -> statz -> metrics -> "
        "SIGTERM drain"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
