"""End-to-end smoke of the serving daemon as a real OS process.

Fits a tiny model, then runs two phases:

1. **Single process** — launches ``python -m repro serve``, waits for
   readiness, exercises the health/classify/statz endpoints, then sends
   SIGTERM and requires a clean drain (exit code 0).
2. **Fleet** — relaunches with ``--workers 2`` (router + shared-memory
   workers), SIGKILLs one worker mid-load, and requires zero dropped
   requests, a respawned worker, a balanced accounting invariant, and
   no leaked ``/dev/shm`` segments after shutdown.

Run via ``make serve-smoke``; CI wraps it in a hard ``timeout`` so a
daemon that fails to drain turns into a job failure, not a stuck runner.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.core.classifier import TKDCClassifier  # noqa: E402
from repro.core.config import TKDCConfig  # noqa: E402
from repro.io.models import save_model  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.stats import TERMINAL_OUTCOMES  # noqa: E402

PORT = 7399
FLEET_PORT = 7398


def fail(message: str, process: subprocess.Popen | None = None) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    if process is not None and process.poll() is None:
        process.kill()
    return 1


def shm_segments(prefix: str = "tkdc-") -> set[str]:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # non-Linux: nothing to leak-check
        return set()
    return {name for name in os.listdir(shm_dir) if name.startswith(prefix)}


def launch(model_path: Path, port: int, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--model", str(model_path),
            "--port", str(port),
            "--default-deadline-ms", "2000",
            *extra,
        ],
        env={**os.environ, "PYTHONPATH": str(SRC)},
        cwd=REPO,
    )


def terminate_cleanly(process: subprocess.Popen, what: str) -> int | None:
    """SIGTERM + wait; returns an exit code on failure, None on success."""
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=30.0)
    except subprocess.TimeoutExpired:
        return fail(f"{what} did not drain within 30s of SIGTERM", process)
    if code != 0:
        return fail(f"{what} exited {code} after SIGTERM")
    return None


def single_process_phase(model_path: Path) -> int:
    process = launch(model_path, PORT)
    client = ServeClient("127.0.0.1", PORT, timeout=30.0)
    try:
        if not client.wait_ready(30.0):
            return fail("daemon never became ready", process)

        status, payload = client.healthz()
        if status != 200 or payload.get("status") != "ok":
            return fail(f"healthz: {status} {payload}", process)

        status, payload = client.classify(
            [[-2.0, 0.0], [0.0, 9.0]], deadline_ms=2000
        )
        if status != 200:
            return fail(f"classify: {status} {payload}", process)
        if payload["labels"][0] != 1 or payload["labels"][1] != 0:
            return fail(f"unexpected labels: {payload['labels']}", process)

        status, payload = client.classify([[1.0]], deadline_ms=2000)
        if status != 400:
            return fail(f"bad request not rejected: {status}", process)

        status, statz = client.statz()
        if status != 200 or statz["submitted"] != 2:
            return fail(f"statz: {status} {statz}", process)
        if statz["completed"] != 1 or statz["rejected"] != 1:
            return fail(f"statz counters off: {statz}", process)
        # The smoke model is 1-dimensional with a concretely configured
        # engine, so serving calibration must have pinned batch.
        if statz.get("engine") != "batch":
            return fail(f"statz engine off: {statz}", process)

        status, text = client.metrics()
        if status != 200:
            return fail(f"metrics: {status}", process)
        # /metrics and /statz read the same registry cells, so the
        # exposition must agree with the JSON counters exactly.
        for needle in (
            'tkdc_serve_events_total{event="submitted"} 2',
            'tkdc_serve_events_total{event="completed"} 1',
            'tkdc_serve_events_total{event="rejected"} 1',
            "tkdc_serve_request_latency_seconds_bucket",
            "# TYPE tkdc_serve_request_latency_seconds histogram",
            'tkdc_engine_selected_total{engine="batch",reason="configured"}',
        ):
            if needle not in text:
                return fail(f"metrics missing {needle!r}:\n{text}", process)
    except OSError as exc:
        return fail(f"daemon connection failed: {exc}", process)

    code = terminate_cleanly(process, "daemon")
    if code is not None:
        return code
    print("serve smoke phase 1 OK: ready -> classify -> statz -> metrics "
          "-> SIGTERM drain")
    return 0


def fleet_phase(model_path: Path) -> int:
    segments_before = shm_segments()
    process = launch(model_path, FLEET_PORT, "--workers", "2")
    client = ServeClient("127.0.0.1", FLEET_PORT, timeout=30.0)
    try:
        # Fleet startup forks and calibrates workers: allow more time.
        if not client.wait_ready(90.0):
            return fail("fleet never became ready", process)

        status, statz = client.statz()
        if status != 200 or statz["fleet"]["workers_healthy"] != 2:
            return fail(f"fleet not fully healthy: {status} {statz}", process)

        # Drive load from 4 threads while one worker is SIGKILLed.
        stop = threading.Event()
        statuses: list[int] = []
        drops: list[str] = []
        lock = threading.Lock()

        def drive() -> None:
            local = ServeClient("127.0.0.1", FLEET_PORT, timeout=30.0)
            while not stop.is_set():
                try:
                    code, __ = local.classify([[-2.0, 0.0]], deadline_ms=5000)
                except OSError as exc:
                    with lock:
                        drops.append(repr(exc))
                    continue
                with lock:
                    statuses.append(code)

        threads = [threading.Thread(target=drive, daemon=True) for __ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        victim = statz["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        time.sleep(3.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

        if drops:
            return fail(f"requests dropped during worker kill: {drops}", process)
        bad = [code for code in statuses if code not in (200, 429, 503)]
        if bad:
            return fail(f"unexpected statuses during kill: {bad}", process)
        if statuses.count(200) == 0:
            return fail("no request succeeded during the kill window", process)

        # Supervision must respawn the victim and the fleet must settle.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, statz = client.statz()
            pids = [worker["pid"] for worker in statz["workers"]]
            if (
                statz["fleet"]["workers_healthy"] == 2
                and victim not in pids
                and statz["in_flight"] == 0
            ):
                break
            time.sleep(0.2)
        else:
            return fail(f"worker never respawned: {statz}", process)

        terminal = sum(statz[name] for name in TERMINAL_OUTCOMES)
        if statz["submitted"] != terminal:
            return fail(
                f"fleet accounting broken: submitted={statz['submitted']} "
                f"terminal={terminal}", process,
            )
        if sum(worker["restarts"] for worker in statz["workers"]) < 1:
            return fail(f"no restart recorded: {statz['workers']}", process)
    except OSError as exc:
        return fail(f"fleet connection failed: {exc}", process)

    code = terminate_cleanly(process, "fleet")
    if code is not None:
        return code
    leaked = shm_segments() - segments_before
    if leaked:
        return fail(f"leaked /dev/shm segments: {sorted(leaked)}")
    print(
        f"serve smoke phase 2 OK: fleet of 2 -> kill pid {victim} -> "
        f"{statuses.count(200)} ok / {len(statuses)} answered, 0 dropped "
        "-> respawn -> SIGTERM drain, no shm leaks"
    )
    return 0


def main() -> int:
    rng = np.random.default_rng(11)
    data = np.concatenate([
        rng.normal(size=(500, 2)) * 0.5 + np.array([-2.0, 0.0]),
        rng.normal(size=(500, 2)) * 0.5 + np.array([2.0, 0.0]),
    ])
    clf = TKDCClassifier(TKDCConfig(p=0.05, seed=1)).fit(data)

    with tempfile.TemporaryDirectory() as tmp:
        model_path = save_model(Path(tmp) / "smoke", clf)
        code = single_process_phase(model_path)
        if code != 0:
            return code
        code = fleet_phase(model_path)
        if code != 0:
            return code

    print("serve smoke OK: single-process + fleet phases passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
