"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` (PEP 660) requires ``wheel``; fully offline
machines without it can fall back to the legacy develop install:

    python setup.py develop

Configuration lives in ``pyproject.toml``; this file adds nothing.
"""

from setuptools import setup

setup()
